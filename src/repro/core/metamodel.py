"""Meta-model and exchange format.

"The AUTOSAR meta model precisely defines the concepts used to describe a
self-contained system … A direct derivation of the meta model are the
exchange formats (based on templates), which are thus inherently
consistent" (paper, Section 2).

This module is that derivation for our model: every model element exports
to a plain-dict *template*; a full document round-trips through
:func:`export_system` / :func:`import_system` (behaviour functions are
referenced by name and rebound through a registry at import).
:func:`check_consistency` validates a document without instantiating it —
the cross-supplier exchange scenario, where the integrator checks a
supplier's description before accepting it.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.core.component import SwComponent
from repro.core.composition import Composition, CompositionInstance
from repro.core.interface import (ClientServerInterface, Operation,
                                  SenderReceiverInterface)
from repro.core.runnable import (DataReceivedEvent, InitEvent,
                                 OperationInvokedEvent, TimingEvent)
from repro.core.system import SystemModel
from repro.core.types import DataType

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
def _export_trigger(trigger) -> dict:
    if isinstance(trigger, TimingEvent):
        return {"kind": "timing", "period": trigger.period,
                "offset": trigger.offset}
    if isinstance(trigger, DataReceivedEvent):
        return {"kind": "data-received", "port": trigger.port,
                "element": trigger.element}
    if isinstance(trigger, OperationInvokedEvent):
        return {"kind": "operation-invoked", "port": trigger.port,
                "operation": trigger.operation}
    if isinstance(trigger, InitEvent):
        return {"kind": "init"}
    raise ConfigurationError(f"cannot export trigger {trigger!r}")


def export_system(system: SystemModel) -> dict:
    """Serialize a system model (structure only; behaviours by name)."""
    if system.root is None:
        raise ConfigurationError("system has no root composition")
    types: dict[str, dict] = {}
    interfaces: dict[str, dict] = {}
    components: dict[str, dict] = {}
    compositions: dict[str, dict] = {}

    def note_type(dtype: DataType) -> str:
        types[dtype.name] = {"width_bits": dtype.width_bits,
                             "initial": dtype.initial,
                             "scale": dtype.scale, "offset": dtype.offset,
                             "unit": dtype.unit}
        return dtype.name

    def note_interface(interface) -> str:
        if isinstance(interface, SenderReceiverInterface):
            interfaces[interface.name] = {
                "kind": "sender-receiver",
                "elements": {el: note_type(t)
                             for el, t in interface.elements.items()},
                "queued": sorted(interface.queued)}
        else:
            interfaces[interface.name] = {
                "kind": "client-server",
                "operations": {
                    op.name: {
                        "args": {a: note_type(t)
                                 for a, t in op.args.items()},
                        "returns": (note_type(op.returns)
                                    if op.returns else None)}
                    for op in interface.operations.values()}}
        return interface.name

    def note_component(component: SwComponent) -> str:
        if component.name in components:
            return component.name
        components[component.name] = {
            "ports": {p.name: {"direction": p.direction,
                               "interface": note_interface(p.interface)}
                      for p in component.ports.values()},
            "runnables": [
                {"name": r.name, "trigger": _export_trigger(r.trigger),
                 "wcet": r.wcet,
                 "writes": [list(w) for w in r.writes],
                 "behavior": f"{component.name}.{r.name}"}
                for r in component.runnables]}
        return component.name

    def note_composition(composition: Composition) -> str:
        if composition.name in compositions:
            return composition.name
        instances = {}
        for name, instance in composition.instances.items():
            if isinstance(instance, CompositionInstance):
                instances[name] = {
                    "kind": "composition",
                    "type": note_composition(instance.composition)}
            else:
                instances[name] = {
                    "kind": "component",
                    "type": note_component(instance.component)}
        compositions[composition.name] = {
            "instances": instances,
            "connectors": [
                {"source": [c.source.instance, c.source.port],
                 "target": [c.target.instance, c.target.port]}
                for c in composition.connectors],
            "delegations": {
                d.name: {"instance": d.inner.instance,
                         "port": d.inner.port}
                for d in composition.delegations.values()}}
        return composition.name

    root_name = note_composition(system.root)
    return {
        "format_version": FORMAT_VERSION,
        "types": types,
        "interfaces": interfaces,
        "components": components,
        "compositions": compositions,
        "system": {
            "name": system.name,
            "root": root_name,
            "ecus": sorted(system.ecus),
            "mapping": dict(system.mapping),
            "bus": {"kind": system.bus_kind,
                    "params": dict(system.bus_params)},
            "can_ids": dict(system.can_ids),
        },
    }


# ----------------------------------------------------------------------
# Consistency checks
# ----------------------------------------------------------------------
def check_consistency(document: dict) -> list[str]:
    """Validate a document's internal references; returns issues."""
    issues: list[str] = []
    if document.get("format_version") != FORMAT_VERSION:
        issues.append(f"unsupported format_version "
                      f"{document.get('format_version')!r}")
    types = document.get("types", {})
    interfaces = document.get("interfaces", {})
    components = document.get("components", {})
    compositions = document.get("compositions", {})

    for name, interface in interfaces.items():
        kind = interface.get("kind")
        if kind == "sender-receiver":
            for element, type_name in interface.get("elements", {}).items():
                if type_name not in types:
                    issues.append(f"interface {name}: element {element} "
                                  f"references unknown type {type_name!r}")
        elif kind == "client-server":
            for op_name, op in interface.get("operations", {}).items():
                for arg, type_name in op.get("args", {}).items():
                    if type_name not in types:
                        issues.append(
                            f"interface {name}.{op_name}: arg {arg} "
                            f"references unknown type {type_name!r}")
                returns = op.get("returns")
                if returns is not None and returns not in types:
                    issues.append(f"interface {name}.{op_name}: unknown "
                                  f"return type {returns!r}")
        else:
            issues.append(f"interface {name}: unknown kind {kind!r}")

    for name, component in components.items():
        for port_name, port in component.get("ports", {}).items():
            if port.get("interface") not in interfaces:
                issues.append(f"component {name}: port {port_name} "
                              f"references unknown interface "
                              f"{port.get('interface')!r}")
        for runnable in component.get("runnables", []):
            trigger = runnable.get("trigger", {})
            if trigger.get("kind") in ("data-received",
                                       "operation-invoked"):
                if trigger.get("port") not in component.get("ports", {}):
                    issues.append(
                        f"component {name}: runnable "
                        f"{runnable.get('name')} triggers on unknown "
                        f"port {trigger.get('port')!r}")

    for name, composition in compositions.items():
        instance_decls = composition.get("instances", {})
        for iname, decl in instance_decls.items():
            registry = (components if decl.get("kind") == "component"
                        else compositions)
            if decl.get("type") not in registry:
                issues.append(f"composition {name}: instance {iname} has "
                              f"unknown type {decl.get('type')!r}")
        for connector in composition.get("connectors", []):
            for role in ("source", "target"):
                inst = connector.get(role, [None, None])[0]
                if inst not in instance_decls:
                    issues.append(f"composition {name}: connector {role} "
                                  f"references unknown instance {inst!r}")

    system = document.get("system", {})
    root = system.get("root")
    if root not in compositions:
        issues.append(f"system root {root!r} is not an exported "
                      f"composition")
    ecus = set(system.get("ecus", []))
    for instance, ecu in system.get("mapping", {}).items():
        if ecu not in ecus:
            issues.append(f"mapping: instance {instance!r} mapped to "
                          f"unknown ECU {ecu!r}")
    return issues


# ----------------------------------------------------------------------
# Import
# ----------------------------------------------------------------------
def import_system(document: dict,
                  behaviors: dict[str, Callable]) -> SystemModel:
    """Rebuild a system model from a document.

    ``behaviors`` maps the exported behaviour references
    (``"Component.runnable"``) back to Python callables.
    """
    issues = check_consistency(document)
    if issues:
        raise ConfigurationError(
            "document fails consistency checks:\n  " + "\n  ".join(issues))
    types = {name: DataType(name, **spec)
             for name, spec in document["types"].items()}
    interfaces = {}
    for name, spec in document["interfaces"].items():
        if spec["kind"] == "sender-receiver":
            interfaces[name] = SenderReceiverInterface(
                name, {el: types[t] for el, t in spec["elements"].items()},
                queued=set(spec.get("queued", [])))
        else:
            interfaces[name] = ClientServerInterface(
                name,
                {op_name: Operation(
                    op_name,
                    {a: types[t] for a, t in op["args"].items()},
                    types[op["returns"]] if op["returns"] else None)
                 for op_name, op in spec["operations"].items()})
    components = {}
    for name, spec in document["components"].items():
        component = SwComponent(name)
        for port_name, port in spec["ports"].items():
            if port["direction"] == "provided":
                component.provide(port_name, interfaces[port["interface"]])
            else:
                component.require(port_name, interfaces[port["interface"]])
        for runnable in spec["runnables"]:
            behavior = behaviors.get(runnable["behavior"])
            if behavior is None:
                raise ConfigurationError(
                    f"no behaviour registered for "
                    f"{runnable['behavior']!r}")
            component.runnable(runnable["name"],
                               _import_trigger(runnable["trigger"]),
                               behavior, wcet=runnable["wcet"],
                               writes=runnable.get("writes"))
        components[name] = component

    compositions: dict[str, Composition] = {}

    def build_composition(name: str) -> Composition:
        if name in compositions:
            return compositions[name]
        spec = document["compositions"][name]
        composition = Composition(name)
        compositions[name] = composition
        for iname, decl in spec["instances"].items():
            if decl["kind"] == "component":
                composition.add(components[decl["type"]].instantiate(iname))
            else:
                composition.add(
                    build_composition(decl["type"]).instantiate(iname))
        for delegation_name, d in spec["delegations"].items():
            composition.delegate(delegation_name, d["instance"], d["port"])
        for connector in spec["connectors"]:
            composition.connect(connector["source"][0],
                                connector["source"][1],
                                connector["target"][0],
                                connector["target"][1])
        return composition

    system_spec = document["system"]
    system = SystemModel(system_spec["name"])
    system.set_root(build_composition(system_spec["root"]))
    for ecu in system_spec["ecus"]:
        system.add_ecu(ecu)
    for instance, ecu in system_spec["mapping"].items():
        system.map(instance, ecu)
    bus = system_spec["bus"]
    if bus["kind"] is not None:
        system.configure_bus(bus["kind"], **bus["params"])
    for pdu, can_id in system_spec.get("can_ids", {}).items():
        system.set_can_id(pdu, can_id)
    return system


def _import_trigger(spec: dict):
    kind = spec["kind"]
    if kind == "timing":
        return TimingEvent(spec["period"], spec["offset"])
    if kind == "data-received":
        return DataReceivedEvent(spec["port"], spec["element"])
    if kind == "operation-invoked":
        return OperationInvokedEvent(spec["port"], spec["operation"])
    if kind == "init":
        return InitEvent()
    raise ConfigurationError(f"unknown trigger kind {kind!r}")
