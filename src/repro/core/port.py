"""Ports: typed connection points of software components."""

from __future__ import annotations

PROVIDED = "provided"
REQUIRED = "required"


class Port:
    """One port of a component type.

    ``direction`` is ``provided`` (P-port: data sender / operation server)
    or ``required`` (R-port: data receiver / operation client).
    """

    def __init__(self, name: str, interface, direction: str):
        self.name = name
        self.interface = interface
        self.direction = direction

    @property
    def is_provided(self) -> bool:
        """True for P-ports (data sender / operation server)."""
        return self.direction == PROVIDED

    @property
    def is_required(self) -> bool:
        """True for R-ports (data receiver / operation client)."""
        return self.direction == REQUIRED

    def compatible_with(self, other: "Port") -> bool:
        """Whether a connector from this (provided) port to ``other``
        (required) is type-correct."""
        return (self.is_provided and other.is_required
                and self.interface.compatible_with(other.interface))

    def __repr__(self) -> str:
        tag = "P" if self.is_provided else "R"
        return f"<{tag}Port {self.name}:{self.interface.name}>"
