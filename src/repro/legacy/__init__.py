"""Legacy middleware: CAN overlay on time-triggered platforms."""

from repro.legacy.can_overlay import (CanOverlay, FRAME_OVERHEAD_BYTES,
                                      VirtualCanController)

__all__ = ["CanOverlay", "FRAME_OVERHEAD_BYTES", "VirtualCanController"]
