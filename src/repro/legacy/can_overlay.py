"""CAN overlay network on a time-triggered platform.

Section 4: "higher-level application specific services can be implemented
in middleware such that the APIs that are visible to the application
software conform with the requirements of existing legacy applications
(e.g., a CAN overlay network) and support the seamless integration of
this existing legacy software into the new integrated architecture."

The overlay gives legacy code the familiar controller API —
``send(CanFrameSpec, payload)`` / ``on_receive(callback)`` — while the
wire is a TDMA round: each node owns one slot per round and ships its
queued virtual frames (capacity-bounded) in that slot; receivers see
frames in identifier order, emulating CAN's priority-ordered delivery
within a batch.  Latency semantics change from arbitration-based to
slot-based — experiment E9 measures that overhead.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.network.can import CanFrameSpec
from repro.network.message import Message
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace

#: bytes one virtual frame occupies in a slot: payload + id/len header.
FRAME_OVERHEAD_BYTES = 3


class VirtualCanController:
    """Drop-in replacement for the legacy controller API."""

    def __init__(self, overlay: "CanOverlay", node: str):
        self.overlay = overlay
        self.node = node
        self._queue: list[tuple[int, int, CanFrameSpec, Message]] = []
        self._rx_callbacks: list[Callable] = []
        self.tx_count = 0

    def send(self, spec: CanFrameSpec, payload=None) -> Message:
        """Queue a frame; it leaves in this node's next TDMA slot."""
        msg = Message(spec.name, self.node, payload, spec.dlc,
                      enqueue_time=self.overlay.sim.now)
        self._queue.append((spec.can_id, msg.seq, spec, msg))
        self._queue.sort()
        return msg

    def on_receive(self, callback: Callable) -> None:
        """Register a frame-reception callback (legacy controller API)."""
        self._rx_callbacks.append(callback)

    @property
    def pending(self) -> int:
        """Frames queued and not yet shipped in a slot."""
        return len(self._queue)

    def _deliver(self, spec: CanFrameSpec, msg: Message) -> None:
        for callback in self._rx_callbacks:
            callback(spec, msg)

    def __repr__(self) -> str:
        return f"<VirtualCanController {self.node} pending={self.pending}>"


class CanOverlay:
    """The TDMA engine carrying virtual CAN frames."""

    def __init__(self, sim: Simulator, node_names: list[str],
                 slot_length: int, slot_capacity_bytes: int = 32,
                 trace: Optional[Trace] = None, name: str = "CAN-OVERLAY"):
        if not node_names or len(set(node_names)) != len(node_names):
            raise ConfigurationError("need unique, non-empty node names")
        if slot_length <= 0 or slot_capacity_bytes <= 0:
            raise ConfigurationError(
                "slot_length and slot_capacity_bytes must be > 0")
        self.sim = sim
        self.trace = trace if trace is not None else Trace()
        self.name = name
        self.slot_length = slot_length
        self.slot_capacity_bytes = slot_capacity_bytes
        self.controllers = {n: VirtualCanController(self, n)
                            for n in node_names}
        self._order = list(node_names)
        self.frames_delivered = 0
        self._started = False

    @property
    def round_length(self) -> int:
        """Duration of one TDMA round over all nodes."""
        return self.slot_length * len(self._order)

    def attach(self, node: str) -> VirtualCanController:
        """Controller of a configured node (legacy bus API)."""
        controller = self.controllers.get(node)
        if controller is None:
            raise ConfigurationError(f"{self.name}: unknown node {node!r}")
        return controller

    def start(self) -> None:
        """Begin the TDMA rounds at the current time."""
        if self._started:
            raise ConfigurationError(f"{self.name} already started")
        self._started = True
        self._schedule_slot(0)

    def worst_case_latency(self) -> int:
        """Uncongested bound: miss your slot, wait a round, transmit."""
        return self.round_length + self.slot_length

    # ------------------------------------------------------------------
    def _schedule_slot(self, index: int) -> None:
        self.sim.schedule(self.slot_length, lambda: self._slot_end(index))

    def _slot_end(self, index: int) -> None:
        owner = self.controllers[self._order[index]]
        budget = self.slot_capacity_bytes
        batch = []
        while owner._queue:
            can_id, seq, spec, msg = owner._queue[0]
            cost = spec.dlc + FRAME_OVERHEAD_BYTES
            if cost > budget:
                break
            owner._queue.pop(0)
            budget -= cost
            batch.append((spec, msg))
        now = self.sim.now
        for spec, msg in batch:
            msg.tx_start = now - self.slot_length
            msg.rx_time = now
            owner.tx_count += 1
            self.frames_delivered += 1
            self.trace.log(now, "overlay.rx", spec.name, node=owner.node,
                           latency=msg.latency)
            for node, peer in self.controllers.items():
                if peer is not owner:
                    peer._deliver(spec, msg)
        self._schedule_slot((index + 1) % len(self._order))

    def latencies(self, frame_name: Optional[str] = None) -> list[int]:
        """Observed enqueue-to-delivery latencies (optionally per frame)."""
        return [r.data["latency"]
                for r in self.trace.records("overlay.rx", frame_name)]

    def __repr__(self) -> str:
        return f"<CanOverlay {self.name} nodes={len(self.controllers)}>"
