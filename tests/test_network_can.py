"""Tests for the CAN bus model: arbitration, timing, errors."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.network import CanBus, CanFrameSpec, frame_bits, frame_time
from repro.sim import Simulator
from repro.units import bit_time, ms, us


BITRATE = 500_000
TBIT = bit_time(BITRATE)  # 2000 ns


def test_frame_bits_standard_8_bytes():
    # g=34, s=8: 34+64+13 + floor(97/4) = 111 + 24 = 135 bits.
    assert frame_bits(8) == 135


def test_frame_bits_standard_0_bytes():
    # 34+0+13 + floor(33/4) = 47 + 8 = 55 bits.
    assert frame_bits(0) == 55


def test_frame_bits_extended():
    # g=54, s=8: 54+64+13 + floor(117/4) = 131 + 29 = 160 bits.
    assert frame_bits(8, extended=True) == 160


def test_frame_bits_no_stuffing():
    assert frame_bits(8, worst_case_stuffing=False) == 111


@given(st.integers(min_value=0, max_value=8))
def test_frame_bits_monotone_in_dlc(dlc):
    if dlc > 0:
        assert frame_bits(dlc) > frame_bits(dlc - 1)


def test_frame_time_at_500k():
    assert frame_time(8, BITRATE) == 135 * TBIT == 270_000


def test_dlc_out_of_range():
    with pytest.raises(ConfigurationError):
        frame_bits(9)
    with pytest.raises(ConfigurationError):
        CanFrameSpec("X", 1, dlc=9)


def test_can_id_range_checked():
    with pytest.raises(ConfigurationError):
        CanFrameSpec("X", 0x800)
    CanFrameSpec("X", 0x800, extended=True)  # fine when extended


def test_single_frame_latency_is_wire_time():
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    tx = bus.attach("A")
    bus.attach("B")
    spec = CanFrameSpec("F", can_id=0x100, dlc=8)
    tx.send(spec)
    sim.run()
    assert bus.latencies("F") == [frame_time(8, BITRATE)]


def test_broadcast_reaches_all_other_nodes_not_sender():
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    tx = bus.attach("A")
    received = {"B": [], "C": []}
    for node in ("B", "C"):
        bus.attach(node).on_receive(
            lambda spec, msg, node=node: received[node].append(msg.name))
    got_own = []
    tx.on_receive(lambda spec, msg: got_own.append(msg.name))
    tx.send(CanFrameSpec("F", 0x10))
    sim.run()
    assert received == {"B": ["F"], "C": ["F"]}
    assert got_own == []


def test_lowest_id_wins_arbitration():
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    a = bus.attach("A")
    b = bus.attach("B")
    # Both enqueue at t=0; lower id must be on the wire first.
    a.send(CanFrameSpec("HIGH_ID", 0x300, dlc=8))
    b.send(CanFrameSpec("LOW_ID", 0x050, dlc=8))
    sim.run()
    starts = bus.trace.records("can.tx_start")
    assert [r.subject for r in starts] == ["LOW_ID", "HIGH_ID"]


def test_transmission_is_non_preemptive():
    """A higher-priority frame arriving mid-transmission waits."""
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    a = bus.attach("A")
    b = bus.attach("B")
    a.send(CanFrameSpec("LOW_PRIO", 0x400, dlc=8))
    dur = frame_time(8, BITRATE)
    sim.schedule(dur // 2,
                 lambda: b.send(CanFrameSpec("URGENT", 0x001, dlc=8)))
    sim.run()
    starts = bus.trace.records("can.tx_start")
    assert [r.subject for r in starts] == ["LOW_PRIO", "URGENT"]
    assert starts[1].time == dur  # waits for bus idle


def test_queueing_delay_grows_with_lower_priority():
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    node = bus.attach("A")
    bus.attach("B")
    msgs = [node.send(CanFrameSpec(f"F{i}", 0x100 + i, dlc=8))
            for i in range(3)]
    sim.run()
    dur = frame_time(8, BITRATE)
    assert [m.queueing_delay for m in msgs] == [0, dur, 2 * dur]
    assert [m.latency for m in msgs] == [dur, 2 * dur, 3 * dur]


def test_error_model_triggers_retransmission():
    sim = Simulator()
    fail_first = {"left": 1}

    def error_model(spec, msg):
        if fail_first["left"] > 0:
            fail_first["left"] -= 1
            return True
        return False

    bus = CanBus(sim, BITRATE, error_model=error_model)
    tx = bus.attach("A")
    bus.attach("B")
    tx.send(CanFrameSpec("F", 0x10, dlc=8))
    sim.run()
    assert bus.error_count == 1
    assert len(bus.trace.records("can.error")) == 1
    # Retransmission succeeds after the 31-bit error recovery.
    lat = bus.latencies("F")
    assert lat == [31 * TBIT + frame_time(8, BITRATE)]


def test_bus_off_controller_sends_nothing():
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    tx = bus.attach("A")
    bus.attach("B")
    tx.send(CanFrameSpec("BEFORE", 0x10))
    tx.set_bus_off()
    tx.send(CanFrameSpec("AFTER", 0x11))
    sim.run()
    # Pending queue flushed at bus-off: nothing is delivered.
    assert bus.frames_delivered == 0
    assert len(bus.trace.records("can.tx_rejected")) == 1


def test_duplicate_node_rejected():
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    bus.attach("A")
    with pytest.raises(ConfigurationError):
        bus.attach("A")


def test_utilization_reflects_load():
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    tx = bus.attach("A")
    bus.attach("B")
    spec = CanFrameSpec("P", 0x10, dlc=8)

    def periodic():
        tx.send(spec)
        sim.schedule(ms(1), periodic)

    periodic()
    sim.run_until(ms(100))
    expected = frame_time(8, BITRATE) / ms(1)
    assert bus.utilization() == pytest.approx(expected, rel=0.05)


def test_back_to_back_frames_from_competing_nodes_interleave_by_id():
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    nodes = [bus.attach(f"N{i}") for i in range(3)]
    for i, node in enumerate(nodes):
        node.send(CanFrameSpec(f"F{i}", 0x100 - i, dlc=1))
    sim.run()
    order = [r.subject for r in bus.trace.records("can.tx_start")]
    assert order == ["F2", "F1", "F0"]
