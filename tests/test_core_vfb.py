"""Tests for Virtual Functional Bus execution."""

import pytest

from repro.errors import CompositionError, ConfigurationError
from repro.core.component import SwComponent
from repro.core.composition import Composition
from repro.core.interface import (ClientServerInterface, Operation,
                                  SenderReceiverInterface)
from repro.core.runnable import (DataReceivedEvent, InitEvent,
                                 OperationInvokedEvent, TimingEvent)
from repro.core.types import UINT8, UINT16
from repro.core.vfb import VfbSimulation
from repro.sim import Simulator
from repro.units import ms

SPEED_IF = SenderReceiverInterface("speed_if", {"value": UINT16})


def sensor_component(period=ms(10)):
    sensor = SwComponent("Sensor")
    sensor.provide("out", SPEED_IF)

    def sample(ctx):
        ctx.state.setdefault("count", 0)
        ctx.state["count"] += 1
        ctx.write("out", "value", ctx.state["count"] * 10)

    sensor.runnable("sample", TimingEvent(period), sample)
    return sensor


def controller_component():
    controller = SwComponent("Controller")
    controller.require("in", SPEED_IF)
    controller.provide("cmd", SenderReceiverInterface(
        "cmd_if", {"value": UINT16}))

    def on_speed(ctx):
        ctx.write("cmd", "value", ctx.read("in", "value") + 1)

    controller.runnable("on_speed", DataReceivedEvent("in", "value"),
                        on_speed)
    return controller


def test_timing_runnable_period_and_state():
    comp = Composition("Sys")
    comp.add(sensor_component().instantiate("s"))
    sim = Simulator()
    vfb = VfbSimulation(sim, comp)
    vfb.start()
    sim.run_until(ms(35))
    # TimingEvent fires at its offset (t=0) then every period: 0,10,20,30.
    assert vfb.value_of("s", "out", "value") == 40  # 4 samples


def test_data_received_chain_executes_immediately():
    comp = Composition("Sys")
    comp.add(sensor_component().instantiate("s"))
    comp.add(controller_component().instantiate("c"))
    comp.connect("s", "out", "c", "in")
    sim = Simulator()
    vfb = VfbSimulation(sim, comp)
    vfb.start()
    sim.run_until(ms(10))
    assert vfb.value_of("c", "in", "value") == 20
    assert vfb.value_of("c", "cmd", "value") == 21


def test_fan_out_delivers_to_all_receivers():
    comp = Composition("Sys")
    comp.add(sensor_component().instantiate("s"))
    comp.add(controller_component().instantiate("c1"))
    comp.add(controller_component().instantiate("c2"))
    comp.connect("s", "out", "c1", "in")
    comp.connect("s", "out", "c2", "in")
    sim = Simulator()
    vfb = VfbSimulation(sim, comp)
    vfb.start()
    sim.run_until(ms(10))
    assert vfb.value_of("c1", "cmd", "value") == 21
    assert vfb.value_of("c2", "cmd", "value") == 21


def test_unconnected_receiver_keeps_initial_value():
    comp = Composition("Sys")
    comp.add(controller_component().instantiate("c"))
    sim = Simulator()
    vfb = VfbSimulation(sim, comp)
    vfb.start()
    sim.run_until(ms(50))
    assert vfb.value_of("c", "in", "value") == 0


def test_init_runnable_runs_once_at_start():
    comp = SwComponent("C")
    comp.provide("out", SPEED_IF)
    runs = []
    comp.runnable("init", InitEvent(), lambda ctx: runs.append(ctx.now))
    c = Composition("Sys")
    c.add(comp.instantiate("i"))
    sim = Simulator()
    vfb = VfbSimulation(sim, c)
    vfb.start()
    sim.run_until(ms(100))
    assert runs == [0]


def test_client_server_synchronous_call():
    server = SwComponent("CalibServer")
    calib_if = ClientServerInterface(
        "calib", {"get": Operation("get", {"index": UINT8},
                                   returns=UINT16)})
    server.provide("srv", calib_if)
    server.runnable("get_handler", OperationInvokedEvent("srv", "get"),
                    lambda ctx, index: 100 + index)

    client = SwComponent("Client")
    client.require("cal", calib_if)
    results = []
    client.runnable("tick", TimingEvent(ms(10)),
                    lambda ctx: results.append(ctx.call("cal", "get",
                                                        index=3)))
    comp = Composition("Sys")
    comp.add(server.instantiate("srv"))
    comp.add(client.instantiate("cli"))
    comp.connect("srv", "srv", "cli", "cal")
    sim = Simulator()
    vfb = VfbSimulation(sim, comp)
    vfb.start()
    sim.run_until(ms(25))
    assert results == [103, 103, 103]  # ticks at 0, 10, 20


def test_call_with_wrong_args_rejected():
    server = SwComponent("S")
    calib_if = ClientServerInterface(
        "calib", {"get": Operation("get", {"index": UINT8},
                                   returns=UINT16)})
    server.provide("srv", calib_if)
    server.runnable("h", OperationInvokedEvent("srv", "get"),
                    lambda ctx, index: index)
    client = SwComponent("C")
    client.require("cal", calib_if)
    errors = []

    def tick(ctx):
        try:
            ctx.call("cal", "get", wrong=1)
        except ConfigurationError as exc:
            errors.append(str(exc))

    client.runnable("tick", TimingEvent(ms(10)), tick)
    comp = Composition("Sys")
    comp.add(server.instantiate("s"))
    comp.add(client.instantiate("c"))
    comp.connect("s", "srv", "c", "cal")
    sim = Simulator()
    vfb = VfbSimulation(sim, comp)
    vfb.start()
    sim.run_until(ms(9))
    assert len(errors) == 1  # single tick at t=0


def test_call_without_server_raises():
    calib_if = ClientServerInterface(
        "calib", {"get": Operation("get", returns=UINT16)})
    client = SwComponent("C")
    client.require("cal", calib_if)
    failures = []

    def tick(ctx):
        try:
            ctx.call("cal", "get")
        except CompositionError:
            failures.append(ctx.now)

    client.runnable("tick", TimingEvent(ms(5)), tick)
    comp = Composition("Sys")
    comp.add(client.instantiate("c"))
    sim = Simulator()
    vfb = VfbSimulation(sim, comp)
    vfb.start()
    sim.run_until(ms(5))
    assert failures == [0, ms(5)]


def test_write_to_required_port_rejected():
    comp = SwComponent("C")
    comp.require("in", SPEED_IF)
    errors = []

    def tick(ctx):
        try:
            ctx.write("in", "value", 1)
        except ConfigurationError:
            errors.append(True)

    comp.runnable("tick", TimingEvent(ms(5)), tick)
    c = Composition("Sys")
    c.add(comp.instantiate("i"))
    sim = Simulator()
    vfb = VfbSimulation(sim, c)
    vfb.start()
    sim.run_until(ms(4))
    assert errors == [True]


def test_value_range_enforced_on_write():
    comp = SwComponent("C")
    comp.provide("out", SenderReceiverInterface("narrow", {"v": UINT8}))
    errors = []

    def tick(ctx):
        try:
            ctx.write("out", "v", 256)
        except ConfigurationError:
            errors.append(True)

    comp.runnable("tick", TimingEvent(ms(5)), tick)
    c = Composition("Sys")
    c.add(comp.instantiate("i"))
    sim = Simulator()
    vfb = VfbSimulation(sim, c)
    vfb.start()
    sim.run_until(ms(4))
    assert errors == [True]


def test_instance_states_are_independent():
    comp = Composition("Sys")
    comp.add(sensor_component().instantiate("s1"))
    comp.add(sensor_component(period=ms(20)).instantiate("s2"))
    sim = Simulator()
    vfb = VfbSimulation(sim, comp)
    vfb.start()
    sim.run_until(ms(40))
    assert vfb.value_of("s1", "out", "value") == 50  # 0..40, 5 samples
    assert vfb.value_of("s2", "out", "value") == 30  # 0,20,40


def test_trace_records_runnable_executions():
    comp = Composition("Sys")
    comp.add(sensor_component().instantiate("s"))
    sim = Simulator()
    vfb = VfbSimulation(sim, comp)
    vfb.start()
    sim.run_until(ms(30))
    assert len(vfb.trace.records("vfb.runnable", "s.sample")) == 4
    assert vfb.runnable_executions == 4
