"""Tests for the MPSoC/NoC platform and the four composability
requirements of the paper's Section 4."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError, ProtocolError
from repro.noc import (MeshTopology, Mpsoc, SharedBusInterconnect, TdmaNoc)
from repro.sim import Simulator
from repro.units import ms, us


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
def test_mesh_indexing_roundtrip():
    mesh = MeshTopology(3, 2)
    assert mesh.size == 6
    for index in range(mesh.size):
        x, y = mesh.position(index)
        assert mesh.index(x, y) == index


def test_mesh_hops_manhattan():
    mesh = MeshTopology(3, 3)
    assert mesh.hops(0, 8) == 4  # (0,0) -> (2,2)
    assert mesh.hops(4, 4) == 0


def test_xy_route_x_then_y():
    mesh = MeshTopology(3, 3)
    route = mesh.xy_route(0, 8)
    assert route == [1, 2, 5, 8]


def test_mesh_validation():
    with pytest.raises(ConfigurationError):
        MeshTopology(0, 3)
    mesh = MeshTopology(2, 2)
    with pytest.raises(ConfigurationError):
        mesh.position(4)
    with pytest.raises(ConfigurationError):
        mesh.index(2, 0)


@given(st.integers(min_value=2, max_value=5),
       st.integers(min_value=2, max_value=5), st.data())
def test_route_length_equals_hops(w, h, data):
    mesh = MeshTopology(w, h)
    src = data.draw(st.integers(min_value=0, max_value=mesh.size - 1))
    dst = data.draw(st.integers(min_value=0, max_value=mesh.size - 1))
    assert len(mesh.xy_route(src, dst)) == mesh.hops(src, dst)


# ----------------------------------------------------------------------
# Shared bus
# ----------------------------------------------------------------------
def shared_bus_mpsoc(arbitration="priority"):
    sim = Simulator()
    bus = SharedBusInterconnect(sim, MeshTopology(2, 2),
                                bandwidth_bps=1_000_000_000,
                                arbitration=arbitration)
    mpsoc = Mpsoc(sim, bus)
    return sim, bus, mpsoc


def test_shared_bus_delivers_message():
    sim, bus, mpsoc = shared_bus_mpsoc()
    got = []
    mpsoc.cores[1].on_receive(lambda msg: got.append(msg.payload))
    mpsoc.cores[0].send(mpsoc.cores[1], payload="hi", size_bytes=125)
    sim.run()
    assert got == ["hi"]
    # 125 bytes at 1 Gbit/s = 1000 ns + 50 ns overhead.
    assert bus.latencies("noc.rx_bus") == [1050]


def test_shared_bus_serializes_transactions():
    sim, bus, mpsoc = shared_bus_mpsoc()
    mpsoc.cores[0].send(mpsoc.cores[1], size_bytes=125)
    mpsoc.cores[2].send(mpsoc.cores[3], size_bytes=125)
    sim.run()
    lats = bus.latencies("noc.rx_bus")
    assert lats == [1050, 2100]  # second waits for the first


def test_shared_bus_priority_arbitration():
    sim, bus, mpsoc = shared_bus_mpsoc("priority")
    # Fill the bus, then enqueue low before high.
    mpsoc.cores[0].send(mpsoc.cores[1], size_bytes=125, priority=0)
    mpsoc.cores[2].send(mpsoc.cores[1], payload="low", size_bytes=125,
                        priority=1)
    mpsoc.cores[3].send(mpsoc.cores[1], payload="high", size_bytes=125,
                        priority=9)
    order = []
    mpsoc.cores[1].on_receive(lambda msg: order.append(msg.payload))
    sim.run()
    assert order == [None, "high", "low"]


def test_shared_bus_interference():
    """A hot sender inflates a victim's latency (the federated failure
    mode the TT NoC exists to remove)."""

    def victim_latency(with_aggressor):
        sim, bus, mpsoc = shared_bus_mpsoc()
        if with_aggressor:
            # ~81% bus load at higher priority than the victim.
            mpsoc.cores[2].send_periodic(mpsoc.cores[3], period=us(5),
                                         size_bytes=500, priority=9)
        mpsoc.cores[0].send_periodic(mpsoc.cores[1], period=us(100),
                                     size_bytes=32, priority=1)
        sim.run_until(ms(1))
        lats = [r.data["latency"] for r in bus.trace.records("noc.rx_bus")
                if r.subject == "core0->core1"]
        return max(lats)

    assert victim_latency(True) > victim_latency(False)


def test_interface_violations_rejected():
    sim, bus, mpsoc = shared_bus_mpsoc()
    with pytest.raises(ProtocolError):
        bus.send(0, 0)  # self-send
    with pytest.raises(ProtocolError):
        bus.send(0, 1, size_bytes=0)
    with pytest.raises(ProtocolError):
        bus.send(0, 1, size_bytes=10_000)
    with pytest.raises(ConfigurationError):
        bus.send(0, 99)


# ----------------------------------------------------------------------
# TDMA NoC
# ----------------------------------------------------------------------
def tt_mpsoc():
    sim = Simulator()
    noc = TdmaNoc(sim, MeshTopology(2, 2), slot_length=us(1),
                  hop_latency=100)
    mpsoc = Mpsoc(sim, noc)
    mpsoc.start()
    return sim, noc, mpsoc


def test_tt_noc_delivers_in_own_slot():
    sim, noc, mpsoc = tt_mpsoc()
    got = []
    mpsoc.cores[1].on_receive(lambda msg: got.append(sim.now))
    mpsoc.cores[0].send(mpsoc.cores[1], size_bytes=32)
    sim.run_until(ms(1))
    # Core 0's slot ends at 1 us; 1 hop of 100 ns.
    assert got == [us(1) + 100]


def test_tt_noc_latency_bound_holds():
    sim, noc, mpsoc = tt_mpsoc()
    bound = noc.worst_case_latency(3, 0)
    mpsoc.cores[3].send_periodic(mpsoc.cores[0], period=us(7),
                                 size_bytes=32)
    sim.run_until(ms(1))
    lats = noc.latencies("noc.rx_tt", "core3->core0")
    assert lats and max(lats) <= bound


def test_tt_noc_non_interference():
    """Requirement 3: the victim's latency series is identical with and
    without aggressor traffic."""

    def run(with_aggressor):
        sim, noc, mpsoc = tt_mpsoc()
        mpsoc.cores[0].send_periodic(mpsoc.cores[1], period=us(16),
                                     size_bytes=32)
        if with_aggressor:
            mpsoc.cores[2].start_babbling(mpsoc.cores[1], interval=us(1))
        sim.run_until(ms(1))
        return noc.latencies("noc.rx_tt", "core0->core1")

    assert run(False) == run(True)


def test_tt_noc_gate_contains_faulty_core():
    """Requirement 4: gating a babbler stops its traffic entirely while
    others continue unaffected."""
    sim, noc, mpsoc = tt_mpsoc()
    mpsoc.cores[2].start_babbling(mpsoc.cores[1], interval=us(1))
    mpsoc.cores[0].send_periodic(mpsoc.cores[1], period=us(16),
                                 size_bytes=32)
    sim.schedule(us(100), lambda: noc.gate(2))
    sim.run_until(ms(1))
    babble_rx = [r for r in noc.trace.records("noc.rx_tt", "core2->core1")]
    assert all(r.time <= us(110) for r in babble_rx)  # none after gating
    assert noc.gated_drops > 0
    victim_rx = noc.latencies("noc.rx_tt", "core0->core1")
    assert len(victim_rx) >= 50  # victim service continued


def test_tt_noc_stability_of_prior_services():
    """Requirement 2: integrating a new sender leaves existing cores'
    delivery times bit-identical."""

    def run(extra_core_active):
        sim, noc, mpsoc = tt_mpsoc()
        mpsoc.cores[0].send_periodic(mpsoc.cores[3], period=us(20),
                                     size_bytes=64)
        if extra_core_active:
            mpsoc.cores[1].send_periodic(mpsoc.cores[2], period=us(5),
                                         size_bytes=64)
        sim.run_until(ms(1))
        return noc.trace.times("noc.rx_tt", "core0->core3")

    assert run(False) == run(True)


def test_tt_noc_queue_drains_fifo():
    sim, noc, mpsoc = tt_mpsoc()
    order = []
    mpsoc.cores[1].on_receive(lambda msg: order.append(msg.payload))
    for i in range(3):
        mpsoc.cores[0].send(mpsoc.cores[1], payload=i)
    sim.run_until(ms(1))
    assert order == [0, 1, 2]
    # One message per round: deliveries a round apart.
    times = noc.trace.times("noc.rx_tt", "core0->core1")
    assert times[1] - times[0] == noc.round_length


def test_mpsoc_core_lookup_and_validation():
    sim = Simulator()
    noc = TdmaNoc(sim, MeshTopology(2, 2))
    mpsoc = Mpsoc(sim, noc, core_names=["a", "b", "c", "d"])
    assert mpsoc.core("c").index == 2
    with pytest.raises(ConfigurationError):
        mpsoc.core("nope")
    with pytest.raises(ConfigurationError):
        Mpsoc(sim, noc, core_names=["x"])
