"""Tests for the FlexRay<->CAN migration gateway."""

import pytest

from repro.errors import ConfigurationError
from repro.bsw import FlexRayCanGateway
from repro.network import (CanBus, CanFrameSpec, FlexRayBus, FlexRayConfig,
                           StaticSlotAssignment)
from repro.sim import Simulator
from repro.units import ms, us


def make_buses():
    sim = Simulator()
    can = CanBus(sim, 500_000, name="LEGACY")
    config = FlexRayConfig(slot_length=us(200), n_static_slots=4)
    flexray = FlexRayBus(sim, config, name="BACKBONE")
    return sim, can, flexray


def test_can_frame_forwarded_into_static_slot():
    sim, can, flexray = make_buses()
    legacy = can.attach("legacy_node")
    backbone_rx = flexray.attach("backbone_node")
    gw = FlexRayCanGateway(sim, "GW", can, flexray,
                           processing_delay=us(50))
    flexray.assign_slot(StaticSlotAssignment(2, "GW.fr", "wheel_speed"))
    gw.route_to_flexray("wheel_speed", slot=2)
    got = []
    backbone_rx.on_receive(
        lambda name, msg, slot: got.append((sim.now, name, msg.payload)))
    flexray.start()
    legacy.send(CanFrameSpec("wheel_speed", 0x120, dlc=8), payload=88)
    sim.run_until(ms(5))
    assert got, "frame must reach the backbone"
    t, name, payload = got[0]
    assert name == "wheel_speed" and payload == 88
    # CAN wire time + gateway delay, then the next slot-2 occurrence.
    assert t % flexray.config.cycle_length == 2 * us(200)
    assert gw.forwarded == 1


def test_flexray_frame_forwarded_onto_can():
    sim, can, flexray = make_buses()
    backbone_tx = flexray.attach("backbone_node")
    legacy_rx = can.attach("legacy_node")
    gw = FlexRayCanGateway(sim, "GW", can, flexray,
                           processing_delay=us(50))
    flexray.assign_slot(StaticSlotAssignment(1, "backbone_node",
                                             "torque_cmd"))
    out_spec = CanFrameSpec("torque_cmd", 0x210, dlc=8)
    gw.route_to_can("torque_cmd", out_spec)
    got = []
    legacy_rx.on_receive(lambda spec, msg: got.append(msg.payload))
    flexray.start()

    def refill():
        backbone_tx.send_static(1, payload=42)
        sim.schedule(flexray.config.cycle_length, refill)

    refill()
    sim.run_until(3 * flexray.config.cycle_length)
    assert got and all(v == 42 for v in got)
    assert gw.forwarded == len(got)


def test_round_trip_can_to_backbone_to_can():
    """Two legacy CAN islands joined by the TT backbone."""
    sim = Simulator()
    can_a = CanBus(sim, 500_000, name="ISLAND_A")
    can_b = CanBus(sim, 500_000, name="ISLAND_B")
    config = FlexRayConfig(slot_length=us(200), n_static_slots=4)
    backbone = FlexRayBus(sim, config, name="BACKBONE")
    gw_a = FlexRayCanGateway(sim, "GWA", can_a, backbone,
                             processing_delay=us(50))
    gw_b = FlexRayCanGateway(sim, "GWB", can_b, backbone,
                             processing_delay=us(50))
    backbone.assign_slot(StaticSlotAssignment(1, "GWA.fr", "sig"))
    gw_a.route_to_flexray("sig", slot=1)
    gw_b.route_to_can("sig", CanFrameSpec("sig", 0x300, dlc=8))
    sender = can_a.attach("src")
    receiver = can_b.attach("dst")
    got = []
    receiver.on_receive(lambda spec, msg: got.append(msg.payload))
    backbone.start()
    sender.send(CanFrameSpec("sig", 0x100, dlc=8), payload=123)
    sim.run_until(ms(10))
    assert got == [123]


def test_unrouted_traffic_ignored_both_ways():
    sim, can, flexray = make_buses()
    legacy = can.attach("n")
    tx = flexray.attach("m")
    flexray.assign_slot(StaticSlotAssignment(1, "m", "other"))
    gw = FlexRayCanGateway(sim, "GW", can, flexray)
    flexray.start()
    legacy.send(CanFrameSpec("noise", 0x100, dlc=8))
    tx.send_static(1, payload=1)
    sim.run_until(ms(5))
    assert gw.forwarded == 0


def test_duplicate_routes_rejected():
    sim, can, flexray = make_buses()
    gw = FlexRayCanGateway(sim, "GW", can, flexray)
    gw.route_to_flexray("f", slot=1)
    with pytest.raises(ConfigurationError):
        gw.route_to_flexray("f", slot=2)
    gw.route_to_can("g", CanFrameSpec("g", 0x1))
    with pytest.raises(ConfigurationError):
        gw.route_to_can("g", CanFrameSpec("g", 0x2))
    with pytest.raises(ConfigurationError):
        FlexRayCanGateway(sim, "BAD", can, flexray, processing_delay=-1)
