"""Tests for signal-to-frame packing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.com import (PackableSignal, SignalSpec, pack_signals,
                       packing_bandwidth_bps, unpacked_bandwidth_bps)
from repro.units import ms


def sig(name, bits, period, sender="N"):
    return PackableSignal(SignalSpec(name, bits), period, sender)


def test_same_period_same_sender_signals_share_frame():
    frames = pack_signals([sig("a", 16, ms(10)), sig("b", 16, ms(10)),
                           sig("c", 16, ms(10))])
    assert len(frames) == 1
    assert sorted(frames[0].ipdu.signal_names()) == ["a", "b", "c"]
    assert frames[0].period == ms(10)


def test_different_periods_never_share():
    frames = pack_signals([sig("fast", 8, ms(5)), sig("slow", 8, ms(100))])
    assert len(frames) == 2
    periods = sorted(f.period for f in frames)
    assert periods == [ms(5), ms(100)]


def test_different_senders_never_share():
    frames = pack_signals([sig("a", 8, ms(10), "N1"),
                           sig("b", 8, ms(10), "N2")])
    assert len(frames) == 2
    assert {f.sender for f in frames} == {"N1", "N2"}


def test_overflowing_group_splits_into_multiple_frames():
    signals = [sig(f"s{i}", 32, ms(10)) for i in range(5)]  # 160 bits
    frames = pack_signals(signals, frame_bytes=8)
    assert len(frames) == 3  # 64+64+32 bits
    packed = [name for f in frames for name in f.ipdu.signal_names()]
    assert sorted(packed) == sorted(s.spec.name for s in signals)


def test_first_fit_decreasing_fills_gaps():
    # 40+30 bits and 30+20 bits fit in two 8-byte frames; naive order
    # would need three.
    signals = [sig("a", 40, ms(10)), sig("b", 20, ms(10)),
               sig("c", 30, ms(10)), sig("d", 30, ms(10))]
    frames = pack_signals(signals, frame_bytes=8)
    assert len(frames) == 2


def test_signal_wider_than_frame_rejected():
    with pytest.raises(ConfigurationError):
        pack_signals([sig("big", 64, ms(10))], frame_bytes=4)


def test_zero_period_rejected():
    with pytest.raises(ConfigurationError):
        PackableSignal(SignalSpec("a", 8), 0, "N")


def test_packing_reduces_bandwidth():
    signals = [sig(f"s{i}", 8, ms(10)) for i in range(8)]
    frames = pack_signals(signals)
    assert packing_bandwidth_bps(frames) < unpacked_bandwidth_bps(signals)
    # 8 signals of 8 bits share one 8-byte frame: 8x overhead saving.
    assert len(frames) == 1


def test_deterministic_output():
    signals = [sig(f"s{i}", 8 + i, ms(10)) for i in range(6)]
    first = pack_signals(signals)
    second = pack_signals(list(signals))
    assert [f.ipdu.signal_names() for f in first] == \
        [f.ipdu.signal_names() for f in second]


@given(st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                max_size=30))
def test_every_signal_packed_exactly_once(widths):
    signals = [sig(f"s{i}", w, ms(10)) for i, w in enumerate(widths)]
    frames = pack_signals(signals)
    packed = [name for f in frames for name in f.ipdu.signal_names()]
    assert sorted(packed) == sorted(s.spec.name for s in signals)
    # No frame overfilled.
    for frame in frames:
        used = sum(m.spec.width_bits for m in frame.ipdu.mappings)
        assert used <= 64


# ----------------------------------------------------------------------
# Seeded round-trip properties
# ----------------------------------------------------------------------
@given(st.data())
def test_pack_unpack_roundtrip_identity(data):
    widths = data.draw(st.lists(st.integers(min_value=1, max_value=16),
                                min_size=1, max_size=8))
    signals = [sig(f"s{i}", w, ms(10)) for i, w in enumerate(widths)]
    values = {s.spec.name: data.draw(
        st.integers(min_value=0, max_value=s.spec.max_value))
        for s in signals}
    for frame in pack_signals(signals):
        decoded = frame.ipdu.unpack(frame.ipdu.pack(values))
        for name in frame.ipdu.signal_names():
            assert decoded[name]["value"] == values[name]


def test_packed_payload_is_little_endian_lsb_first():
    frames = pack_signals([sig("a", 16, ms(10))])
    ipdu = frames[0].ipdu
    mapping = ipdu.mapping_of("a")
    payload = ipdu.pack({"a": 0x1234})
    # The value sits at its start bit, LSB first within the payload int.
    assert (payload >> mapping.start_bit) & 0xFFFF == 0x1234
    low = ipdu.size_bytes * 8
    as_bytes = payload.to_bytes(ipdu.size_bytes, "little")
    assert as_bytes[mapping.start_bit // 8] == 0x34
    assert as_bytes[mapping.start_bit // 8 + 1] == 0x12


@given(st.integers(min_value=1, max_value=7),
       st.integers(min_value=9, max_value=16),
       st.data())
def test_byte_boundary_crossing_signal_roundtrips(offset, width, data):
    # A signal starting mid-byte and wider than the remaining byte
    # always straddles a byte boundary; packing must still be lossless.
    from repro.com import IPdu, SignalMapping

    assert offset + width > 8
    pad = SignalSpec("pad", offset)
    crossing = SignalSpec("x", width)
    ipdu = IPdu("B", 4, [SignalMapping(pad, 0),
                         SignalMapping(crossing, offset)])
    value = data.draw(st.integers(min_value=0,
                                  max_value=crossing.max_value))
    decoded = ipdu.unpack(ipdu.pack({"pad": 0, "x": value}))
    assert decoded["x"]["value"] == value
