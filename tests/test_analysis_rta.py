"""Tests for fixed-priority response-time analysis, including
cross-validation against the simulated kernel."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.analysis.rta import (analyze, blocking_time, liu_layland_bound,
                                response_time, utilization)
from repro.osek import (EcuKernel, FixedPriorityScheduler, OsekResource,
                        TaskSpec)
from repro.sim import Simulator
from repro.units import ms, us


def textbook_set():
    """Classic example: three tasks, priorities rate-monotonic."""
    return [
        TaskSpec("T1", wcet=ms(1), period=ms(4), priority=3),
        TaskSpec("T2", wcet=ms(2), period=ms(8), priority=2),
        TaskSpec("T3", wcet=ms(3), period=ms(16), priority=1),
    ]


def test_highest_priority_wcrt_is_its_wcet():
    tasks = textbook_set()
    assert response_time(tasks[0], tasks) == ms(1)


def test_textbook_wcrt_values():
    tasks = textbook_set()
    # T2: w = 2 + ceil(w/4)*1 -> w = 3.
    assert response_time(tasks[1], tasks) == ms(3)
    # T3: w = 3 + ceil(w/4)*1 + ceil(w/8)*2 -> w = 9... iterate:
    # w0=3 -> 3+1+2=6 -> 3+2+2=7 -> 3+2+2=7. R=7? check: ceil(7/4)=2,
    # ceil(7/8)=1 -> 3+2+2=7. Converged at 7 ms.
    assert response_time(tasks[2], tasks) == ms(7)


def test_jitter_extends_interference_and_response():
    tasks = [
        TaskSpec("HI", wcet=ms(1), period=ms(4), priority=2,
                 jitter=us(500)),
        TaskSpec("LO", wcet=ms(2), period=ms(20), priority=1),
    ]
    # LO: w = 2 + ceil((w + 0.5)/4)*1 -> w0=2: ceil(2.5/4)=1 -> 3;
    # ceil(3.5/4)=1 -> 3. R = 3 ms.
    assert response_time(tasks[1], tasks) == ms(3)
    # HI's own jitter is added to its response.
    assert response_time(tasks[0], tasks) == ms(1) + us(500)


def test_blocking_term_added():
    tasks = textbook_set()
    assert response_time(tasks[0], tasks, blocking=us(400)) == \
        ms(1) + us(400)


def test_blocking_time_from_critical_sections():
    res = OsekResource("R", ceiling=3)
    tasks = textbook_set()
    cs = {"T3": [(res, us(700))], "T2": [(res, us(200))]}
    # T1 (prio 3) can be blocked by T3's or T2's section: max 700us.
    assert blocking_time(tasks[0], tasks, cs) == us(700)
    # T3 is the lowest: nobody blocks it.
    assert blocking_time(tasks[2], tasks, cs) == 0


def test_unschedulable_detected():
    tasks = [
        TaskSpec("A", wcet=ms(5), period=ms(8), priority=2),
        TaskSpec("B", wcet=ms(4), period=ms(10), priority=1),
    ]
    result = analyze(tasks)
    assert not result.schedulable
    assert "B" in result.unschedulable_tasks


def test_analyze_reports_slack():
    tasks = textbook_set()
    result = analyze(tasks)
    assert result.schedulable
    assert result.slack(tasks[0]) == ms(3)
    assert result.slack(tasks[2]) == ms(9)


def test_sporadic_without_period_rejected():
    sporadic = TaskSpec("S", wcet=ms(1), priority=1, deadline=ms(10))
    with pytest.raises(AnalysisError):
        response_time(sporadic, [sporadic])


def test_utilization_and_liu_layland():
    tasks = textbook_set()
    assert utilization(tasks) == pytest.approx(1 / 4 + 2 / 8 + 3 / 16)
    assert liu_layland_bound(1) == pytest.approx(1.0)
    assert liu_layland_bound(3) == pytest.approx(3 * (2 ** (1 / 3) - 1))
    with pytest.raises(AnalysisError):
        liu_layland_bound(0)


def simulate_max_response(tasks, horizon):
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    for spec in tasks:
        kernel.add_task(spec)
    sim.run_until(horizon)
    return {spec.name: max(kernel.response_times(spec.name), default=0)
            for spec in tasks}


def test_simulation_matches_analysis_synchronous_release():
    """Synchronous release is the critical instant: the simulated first
    job response must equal the analytic WCRT exactly."""
    tasks = textbook_set()
    observed = simulate_max_response(tasks, ms(64))
    result = analyze(tasks)
    for spec in tasks:
        assert observed[spec.name] == result.wcrt[spec.name]


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(min_value=1, max_value=4),   # wcet (ms)
              st.sampled_from([8, 16, 20, 40, 80])),    # period (ms)
    min_size=1, max_size=5))
def test_analysis_is_safe_upper_bound(params):
    """Property: for any schedulable set, simulated responses never
    exceed the analytic WCRT."""
    tasks = []
    for i, (wcet, period) in enumerate(params):
        tasks.append(TaskSpec(f"T{i}", wcet=ms(wcet), period=ms(period),
                              priority=100 - i))
    if utilization(tasks) > 0.95:
        return  # keep to clearly schedulable sets
    result = analyze(tasks)
    if not result.schedulable:
        return
    observed = simulate_max_response(tasks, ms(400))
    for spec in tasks:
        assert observed[spec.name] <= result.wcrt[spec.name]


# ----------------------------------------------------------------------
# Fixpoint telemetry: iterations are recorded on every exit path
# ----------------------------------------------------------------------
def counters_during(fn):
    from repro import obs

    with obs.capture() as scope:
        outcome = None
        try:
            fn()
        except AnalysisError as error:
            outcome = error
    return scope.snapshot()["metrics"]["counters"], outcome


def test_convergence_records_iterations_and_success():
    tasks = textbook_set()
    counters, error = counters_during(
        lambda: response_time(tasks[2], tasks))
    assert error is None
    assert counters["rta.fixpoint_iterations"] >= 1
    assert counters["rta.tasks_analyzed"] == 1
    assert "rta.divergences" not in counters


def test_divergence_over_period_records_iterations():
    """An unschedulable task's recurrence walks several iterations
    before crossing its period — those iterations must be counted, and
    the exit tagged as a divergence, not a success."""
    tasks = [
        TaskSpec("HOG", wcet=ms(3), period=ms(4), priority=2),
        TaskSpec("LOW", wcet=ms(2), period=ms(6), priority=1),
    ]
    counters, error = counters_during(
        lambda: response_time(tasks[1], tasks))
    assert error is not None
    assert counters["rta.fixpoint_iterations"] >= 1
    assert counters["rta.divergences"] == 1
    assert "rta.tasks_analyzed" not in counters


def test_nonconvergence_exhaustion_records_max_iterations(monkeypatch):
    """The iteration-budget exit (recurrence still descending when the
    budget runs out) also records its cost."""
    import repro.analysis.rta as rta_module

    monkeypatch.setattr(rta_module, "MAX_ITERATIONS", 3)
    # High utilization makes the recurrence climb one step per
    # iteration (1, 3, 4, 5, ... before settling), so a 3-iteration
    # budget runs out while w is still moving — yet far below LOW's
    # huge period, so the over-ceiling branch never triggers first.
    tasks = [
        TaskSpec("H1", wcet=ms(1), period=ms(2), priority=3),
        TaskSpec("H2", wcet=ms(1), period=ms(3), priority=2),
        TaskSpec("LOW", wcet=ms(1), period=ms(1000), priority=1),
    ]
    counters, error = counters_during(
        lambda: response_time(tasks[2], tasks))
    assert error is not None and "did not converge" in str(error)
    assert counters["rta.fixpoint_iterations"] == 3
    assert counters["rta.divergences"] == 1


def test_precondition_failures_emit_no_fixpoint_telemetry():
    """Raises before the loop starts (missing period) are configuration
    errors, not fixpoint outcomes: no iteration count, no divergence."""
    tasks = [TaskSpec("APERIODIC", wcet=ms(1), priority=1)]
    counters, error = counters_during(
        lambda: response_time(tasks[0], tasks))
    assert error is not None
    assert "rta.fixpoint_iterations" not in counters
    assert "rta.divergences" not in counters
