"""Tests for the fault-campaign runner and its reference scenario."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (BABBLING, CORRUPTION, CRASH, CampaignCell,
                          OMISSION, ReferenceWorld, TIMING_OVERRUN, grid,
                          reference_cells, run_campaign, run_cell)
from repro.analysis import format_robustness, robustness_report
from repro.units import ms

HORIZON = ms(300)


def run_reference(cells=None):
    return run_campaign(ReferenceWorld, cells or reference_cells(),
                        horizon=HORIZON)


# Run the full 5-kind matrix once and share the report across tests.
@pytest.fixture(scope="module")
def report():
    return run_reference()


def by_kind(report, kind):
    (result,) = [r for r in report.results if r.cell.kind == kind]
    return result


def test_grid_builds_cartesian_matrix_with_pruning():
    cells = grid([CORRUPTION, CRASH], ["speed", "producer"], [ms(10)],
                 [ms(20)],
                 supported=lambda kind, target:
                 not (kind == CRASH and target == "speed"))
    labels = [c.label for c in cells]
    assert len(cells) == 3
    assert f"{CRASH}@speed+{ms(10)}" not in labels
    assert cells[0].end == ms(30)


def test_run_cell_rejects_window_beyond_horizon():
    cell = CampaignCell(CORRUPTION, "speed", onset=ms(50), duration=ms(400),
                        params={"value": 0xFFFF})
    with pytest.raises(ConfigurationError):
        run_cell(ReferenceWorld, cell, horizon=HORIZON)


def test_every_fault_kind_is_detected(report):
    assert report.cells == 5
    assert report.detection_rate == 1.0
    assert not report.summary()["undetected"]


def test_detection_latency_within_supervision_budget(report):
    # Every detector must fire within the slowest supervision budget
    # (the 30 ms E2E reception timeout).
    for result in report.results:
        assert result.detection_latency is not None
        assert result.detection_latency <= ReferenceWorld.E2E_TIMEOUT, \
            result.cell.label


def test_expected_detectors_fire(report):
    from repro.faults.campaign import DTC_PRODUCER_ALIVE, DTC_SPEED_E2E
    expectations = {
        CORRUPTION: ("e2e.crc_error", DTC_SPEED_E2E),
        OMISSION: ("e2e.timeout", DTC_SPEED_E2E),
        BABBLING: ("e2e.timeout", DTC_SPEED_E2E),
        CRASH: ("wdg.violation", DTC_PRODUCER_ALIVE),
        TIMING_OVERRUN: ("task.budget_overrun", DTC_PRODUCER_ALIVE),
    }
    for kind, (source, dtc) in expectations.items():
        result = by_kind(report, kind)
        assert result.detection_source == source, kind
        assert dtc in result.confirmed_dtcs, kind


def test_every_cell_degrades_then_recovers(report):
    assert report.recovery_rate == 1.0
    for result in report.results:
        assert result.degraded, result.cell.label
        assert result.recovered, result.cell.label
        assert result.recovery_time is not None
        assert result.cell.end <= result.recovery_time <= HORIZON


def test_zero_undetected_corrupted_deliveries(report):
    for result in report.results:
        assert result.extra["undetected_corrupted"] == 0, result.cell.label
        assert result.extra["app_deliveries"] > 0, result.cell.label


def test_containment_matches_the_paper(report):
    # CAN cannot contain a babbling idiot (paper Section 4); every
    # other fault stays inside its region.
    for result in report.results:
        expected = result.cell.kind != BABBLING
        assert result.contained == expected, result.cell.label
    assert report.containment_rate == pytest.approx(4 / 5)


def test_corruption_cell_substitutes_while_faulty():
    cell = reference_cells()[0]
    assert cell.kind == CORRUPTION
    world = ReferenceWorld()
    world.injector.inject(world.adapter_for(cell), cell.fault())
    # Stop mid-window (fault runs 50..150 ms): the orchestrator must be
    # holding the substitute in place while the error stays confirmed.
    world.sim.run_until(ms(120))
    assert world.rx.substituted_signals() == ["speed"]
    assert world.errors.confirmed_events()


def test_report_rows_are_flat_dicts(report):
    rows = report.to_dicts()
    assert len(rows) == 5
    for row in rows:
        assert row["detected"] is True
        assert "undetected_corrupted" in row
        assert isinstance(row["dtcs"], list)


def test_robustness_report_and_formatting(report):
    analysis = robustness_report(report)
    assert analysis["summary"]["detection_rate"] == 1.0
    assert set(analysis["by_kind"]) == {CORRUPTION, OMISSION, BABBLING,
                                        CRASH, TIMING_OVERRUN}
    text = format_robustness(analysis)
    assert "detection" in text and "recovery" in text
    assert BABBLING in text  # the escaped-containment cell is named


def test_cells_are_independent_and_deterministic():
    cell = reference_cells()[0]
    first = run_cell(ReferenceWorld, cell, horizon=HORIZON)
    second = run_cell(ReferenceWorld, cell, horizon=HORIZON)
    assert first.to_dict() == second.to_dict()


def test_cli_campaign_smoke(capsys):
    from repro.__main__ import main
    assert main(["repro", "campaign", "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "verdict: PASS" in out
    assert "undetected corrupted deliveries: 0" in out


def test_identical_scenario_yields_byte_identical_report():
    # Determinism gate: the same cells against fresh worlds must produce
    # a byte-identical robustness report, down to every latency sample.
    import json

    first = run_reference(reference_cells()[:2])
    second = run_reference(reference_cells()[:2])
    assert json.dumps(first.to_dicts(), sort_keys=True) == \
        json.dumps(second.to_dicts(), sort_keys=True)
    assert format_robustness(robustness_report(first)) == \
        format_robustness(robustness_report(second))


def test_robustness_report_carries_the_campaign_digest():
    cells = reference_cells()[:1]
    report = run_campaign(ReferenceWorld, cells, horizon=HORIZON)
    assert robustness_report(report)["digest"] == report.digest()


def test_parallel_campaign_matches_serial_digest():
    # The repro.exec scaling guarantee at campaign level: any job count
    # merges back to the byte-identical report.
    cells = reference_cells()[:3]
    serial = run_campaign(ReferenceWorld, cells, horizon=HORIZON)
    parallel = run_campaign(ReferenceWorld, cells, horizon=HORIZON, jobs=2)
    assert serial.digest() == parallel.digest()
    assert serial.to_dicts() == parallel.to_dicts()


def test_campaign_digest_is_order_independent():
    from repro.faults.campaign import CampaignReport

    cells = reference_cells()[:2]
    report = run_campaign(ReferenceWorld, cells, horizon=HORIZON)
    shuffled = CampaignReport(list(reversed(report.results)),
                              report.horizon)
    assert shuffled.digest() == report.digest()


def test_interrupted_campaign_resumes_to_identical_digest(tmp_path):
    from repro.errors import ExecutionInterrupted

    path = tmp_path / "campaign.jsonl"
    cells = reference_cells()[:3]
    uninterrupted = run_campaign(ReferenceWorld, cells, horizon=HORIZON)
    with pytest.raises(ExecutionInterrupted):
        run_campaign(ReferenceWorld, cells, horizon=HORIZON,
                     checkpoint=path, interrupt_after=1)
    resumed = run_campaign(ReferenceWorld, cells, horizon=HORIZON,
                           checkpoint=path, resume=True)
    assert resumed.digest() == uninterrupted.digest()


def test_campaign_seed_reaches_seed_aware_factories():
    from repro.faults.campaign import _make_world

    class SeedAware(ReferenceWorld):
        def __init__(self, seed=None):
            super().__init__()
            self.seen_seed = seed

    assert _make_world(SeedAware, 1234).seen_seed == 1234
    assert _make_world(ReferenceWorld, 1234) is not None  # not passed
    assert _make_world(SeedAware, None).seen_seed is None
