"""Tests for I-PDU groups (mode-dependent COM) and watchdog task
supervision."""

import pytest

from repro.errors import ConfigurationError
from repro.bsw import ModeMachine, WatchdogManager
from repro.com import (CanComAdapter, ComStack, PERIODIC, SignalSpec,
                       pack_sequentially)
from repro.faults import CRASH, Fault, FaultInjector, TaskAdapter
from repro.network import CanBus, CanFrameSpec
from repro.osek import EcuKernel, FixedPriorityScheduler, TaskSpec
from repro.sim import Simulator
from repro.units import ms, us


def com_node():
    sim = Simulator()
    bus = CanBus(sim, 500_000)
    tx = ComStack(sim, CanComAdapter(bus.attach("A"), {
        "CRITICAL": CanFrameSpec("CRITICAL", 0x100),
        "COMFORT": CanFrameSpec("COMFORT", 0x300),
    }), "A")
    bus.attach("B")
    tx.add_tx_pdu(pack_sequentially("CRITICAL", 8,
                                    [SignalSpec("brake", 16)]),
                  mode=PERIODIC, period=ms(10), group="safety")
    tx.add_tx_pdu(pack_sequentially("COMFORT", 8,
                                    [SignalSpec("seat", 8)]),
                  mode=PERIODIC, period=ms(10), group="comfort")
    return sim, bus, tx


def test_disabled_group_stops_transmitting():
    sim, bus, tx = com_node()
    assert tx.set_group_enabled("comfort", False) == 1
    sim.run_until(ms(55))
    critical = len(bus.trace.records("can.rx", "CRITICAL"))
    comfort = len(bus.trace.records("can.rx", "COMFORT"))
    assert critical == 5
    assert comfort == 0
    suppressed = tx.trace.records("com.tx_suppressed", "COMFORT")
    assert len(suppressed) == 5


def test_reenabled_group_resumes_on_schedule():
    sim, bus, tx = com_node()
    tx.set_group_enabled("comfort", False)
    sim.schedule(ms(25), lambda: tx.set_group_enabled("comfort", True))
    sim.run_until(ms(55))
    times = bus.trace.times("can.rx", "COMFORT")
    # Resumes on the original 10 ms grid (timers kept running).
    assert len(times) == 3
    assert all(t % ms(10) < ms(1) for t in times)


def test_unknown_group_rejected():
    sim, bus, tx = com_node()
    with pytest.raises(ConfigurationError):
        tx.set_group_enabled("ghost", False)


def test_mode_machine_drives_pdu_groups():
    sim, bus, tx = com_node()
    modes = ModeMachine("vehicle", ["normal", "limp"], "normal")
    modes.allow("normal", "limp")
    modes.on_entry("limp",
                   lambda: tx.set_group_enabled("comfort", False))
    sim.schedule(ms(22), lambda: modes.request("limp"))
    sim.run_until(ms(55))
    comfort_times = bus.trace.times("can.rx", "COMFORT")
    # COMFORT loses arbitration to CRITICAL each cycle: 2 frame times.
    assert comfort_times == [ms(10) + 540_000, ms(20) + 540_000]
    assert len(bus.trace.times("can.rx", "CRITICAL")) == 5


# ----------------------------------------------------------------------
# Watchdog task supervision
# ----------------------------------------------------------------------
def test_supervised_task_healthy_never_violates():
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    kernel.add_task(TaskSpec("T", wcet=us(200), period=ms(10)))
    wdg = WatchdogManager(sim)
    wdg.supervise_task(kernel, "T", window=ms(25))
    sim.run_until(ms(200))
    assert wdg.status("T") == {"violated": False, "missed_windows": 0}


def test_crashed_task_detected_by_watchdog():
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    task = kernel.add_task(TaskSpec("T", wcet=us(200), period=ms(10)))
    violations = []
    wdg = WatchdogManager(sim, on_violation=violations.append)
    wdg.supervise_task(kernel, "T", window=ms(25), tolerance=1)
    injector = FaultInjector(sim)
    injector.inject(TaskAdapter(kernel, task),
                    Fault(CRASH, "T", start=ms(50)))
    sim.run_until(ms(200))
    assert violations == ["T"]
    # Violation after 2 consecutive empty windows past the crash.
    violation_time = wdg.trace.records("wdg.violation")[0].time
    assert ms(75) <= violation_time <= ms(125)


def test_supervise_task_preserves_existing_hook():
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    completions = []
    kernel.add_task(TaskSpec("T", wcet=us(100), period=ms(10)),
                    on_complete=lambda job: completions.append(job.seq))
    wdg = WatchdogManager(sim)
    wdg.supervise_task(kernel, "T", window=ms(25))
    sim.run_until(ms(45))
    assert len(completions) == 5  # original hook still runs
    assert wdg.status("T")["violated"] is False


def test_supervise_unknown_task_rejected():
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    wdg = WatchdogManager(sim)
    with pytest.raises(ConfigurationError):
        wdg.supervise_task(kernel, "ghost", window=ms(10))
