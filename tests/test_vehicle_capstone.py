"""Capstone integration test: a small vehicle built end to end.

Four DASes (powertrain, chassis, body, ADAS) with eleven component
instances deployed on three ECUs over CAN, exercising in one scenario:
hierarchical compositions, the RTE (periodic + data-triggered tasks,
intra- and inter-ECU flows, remote void calls), timing protection,
fault injection, error handling, mode degradation, diagnostics, and the
configuration checks.
"""

import pytest

from repro.bsw import (DiagnosticServer, ErrorEvent, ErrorManager, FAILED,
                       ModeMachine, PASSED, READ_DTC)
from repro.core import (ClientServerInterface, Composition,
                        DataReceivedEvent, Operation,
                        OperationInvokedEvent, SenderReceiverInterface,
                        SwComponent, SystemModel, TimingEvent, UINT8,
                        UINT16)
from repro.faults import Fault, FaultInjector, TIMING_OVERRUN, TaskAdapter
from repro.sim import Simulator
from repro.units import ms, us

SPEED_IF = SenderReceiverInterface("speed", {"kmh": UINT16})
PEDAL_IF = SenderReceiverInterface("pedal", {"pos": UINT8})
TORQUE_IF = SenderReceiverInterface("torque", {"nm": UINT16})
BRAKE_IF = SenderReceiverInterface("brake", {"force": UINT16})
LIGHT_IF = ClientServerInterface(
    "lights", {"set": Operation("set", {"level": UINT8})})


def build_vehicle(shared):
    """Returns (composition, wiring notes).  ``shared`` collects probes."""
    # --- powertrain DAS (hierarchical composition) ---------------------
    pedal = SwComponent("PedalSensor")
    pedal.provide("out", PEDAL_IF)

    def sample_pedal(ctx):
        ctx.state["n"] = (ctx.state.get("n", 0) + 7) % 100
        ctx.write("out", "pos", ctx.state["n"])

    pedal.runnable("sample", TimingEvent(ms(10)), sample_pedal,
                   wcet=us(200))

    engine = SwComponent("EngineController")
    engine.require("pedal", PEDAL_IF)
    engine.provide("torque", TORQUE_IF)
    engine.runnable("control", DataReceivedEvent("pedal", "pos"),
                    lambda ctx: ctx.write("torque", "nm",
                                          ctx.read("pedal", "pos") * 4),
                    wcet=us(500))
    powertrain = Composition("Powertrain")
    powertrain.add(pedal.instantiate("pedal"))
    powertrain.add(engine.instantiate("engine"))
    powertrain.connect("pedal", "out", "engine", "pedal")
    powertrain.delegate("torque_out", "engine", "torque")

    # --- chassis DAS ----------------------------------------------------
    wheel = SwComponent("WheelSpeed")
    wheel.provide("out", SPEED_IF)

    def sample_wheel(ctx):
        ctx.state["v"] = (ctx.state.get("v", 40) + 1) % 200
        ctx.write("out", "kmh", ctx.state["v"])

    wheel.runnable("sample", TimingEvent(ms(5)), sample_wheel,
                   wcet=us(150))

    abs_ctrl = SwComponent("AbsController")
    abs_ctrl.require("speed", SPEED_IF)
    abs_ctrl.provide("brake", BRAKE_IF)
    abs_ctrl.runnable("control", DataReceivedEvent("speed", "kmh"),
                      lambda ctx: ctx.write("brake", "force",
                                            ctx.read("speed", "kmh") * 2),
                      wcet=us(400))

    # --- ADAS DAS --------------------------------------------------------
    acc = SwComponent("AdaptiveCruise")
    acc.require("speed", SPEED_IF)
    acc.require("torque", TORQUE_IF)

    def fuse(ctx):
        shared["acc_runs"] = shared.get("acc_runs", 0) + 1
        shared["last_fusion"] = (ctx.read("speed", "kmh"),
                                 ctx.read("torque", "nm"))

    acc.runnable("fuse", TimingEvent(ms(20)), fuse, wcet=ms(1))

    # --- body DAS --------------------------------------------------------
    light_server = SwComponent("LightActuator")
    light_server.provide("srv", LIGHT_IF)
    light_server.runnable(
        "apply", OperationInvokedEvent("srv", "set"),
        lambda ctx, level: shared.setdefault("light_levels",
                                             []).append(level),
        wcet=us(100))
    body_ctrl = SwComponent("BodyController")
    body_ctrl.require("speed", SPEED_IF)
    body_ctrl.require("lights", LIGHT_IF)

    def body_logic(ctx):
        level = 2 if ctx.read("speed", "kmh") > 100 else 1
        ctx.call("lights", "set", level=level)

    body_ctrl.runnable("logic", TimingEvent(ms(50)), body_logic,
                       wcet=us(300))

    vehicle = Composition("Vehicle")
    vehicle.add(powertrain.instantiate("pt"))
    vehicle.add(wheel.instantiate("wheel"))
    vehicle.add(abs_ctrl.instantiate("abs"))
    vehicle.add(acc.instantiate("acc"))
    vehicle.add(light_server.instantiate("lights"))
    vehicle.add(body_ctrl.instantiate("body"))
    vehicle.connect("wheel", "out", "abs", "speed")
    vehicle.connect("wheel", "out", "acc", "speed")
    vehicle.connect("wheel", "out", "body", "speed")
    vehicle.connect("pt", "torque_out", "acc", "torque")
    vehicle.connect("lights", "srv", "body", "lights")
    return vehicle


def deploy_vehicle(vehicle):
    system = SystemModel("vehicle")
    system.add_ecu("PT_ECU")
    system.add_ecu("CHASSIS_ECU")
    system.add_ecu("BODY_ECU")
    system.set_root(vehicle)
    system.map("pt.pedal", "PT_ECU")
    system.map("pt.engine", "PT_ECU")
    system.map("wheel", "CHASSIS_ECU")
    system.map("abs", "CHASSIS_ECU")
    system.map("acc", "CHASSIS_ECU")
    system.map("lights", "BODY_ECU")
    system.map("body", "BODY_ECU")
    system.configure_bus("can", bitrate_bps=500_000)
    return system


def test_vehicle_passes_configuration_checks():
    shared = {}
    system = deploy_vehicle(build_vehicle(shared))
    assert system.validate() == []


def test_vehicle_runs_all_flows():
    shared = {}
    system = deploy_vehicle(build_vehicle(shared))
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(500))
    # Intra-ECU chain: pedal -> engine on PT_ECU.
    assert runtime.value_of("pt.engine", "torque", "nm") > 0
    # Cross-ECU data: wheel (CHASSIS) -> body (BODY) over CAN.
    assert runtime.value_of("body", "speed", "kmh") > 0
    # Periodic fusion ran and saw remote torque data.
    assert shared["acc_runs"] >= 24
    assert shared["last_fusion"][1] > 0
    # Remote void call: body (BODY_ECU) -> ... wait, lights are local.
    assert len(shared["light_levels"]) >= 9
    # Platform health.
    assert runtime.deadline_misses() == 0
    assert runtime.bus.frames_delivered > 100


def test_vehicle_degrades_gracefully_under_task_overrun():
    """An injected ADAS overrun is caught by timing protection; the
    error chain confirms a DTC and degrades the vehicle mode, while the
    chassis DAS stays deadline-clean."""
    shared = {}
    system = deploy_vehicle(build_vehicle(shared))
    system.ecus["CHASSIS_ECU"].set_budget("acc.fuse", ms(2))
    sim = Simulator()
    runtime = system.build(sim)

    dem = ErrorManager("CHASSIS_ECU", now=lambda: sim.now)
    dem.register(ErrorEvent("acc_overrun", dtc=0xACC, threshold=2))
    modes = ModeMachine("vehicle", ["normal", "acc_off"], "normal")
    modes.allow("normal", "acc_off")
    modes.bind_clock(lambda: sim.now)
    dem.on_status_change(
        lambda event, confirmed: confirmed and modes.request("acc_off"))
    diag = DiagnosticServer(dem)

    def monitor():
        overruns = len(runtime.trace.records("task.budget_overrun",
                                             "acc.fuse"))
        previous = monitor.seen
        monitor.seen = overruns
        dem.report("acc_overrun",
                   FAILED if overruns > previous else PASSED)
        sim.schedule(ms(20), monitor)

    monitor.seen = 0
    monitor()

    injector = FaultInjector(sim, runtime.trace)
    injector.inject(
        TaskAdapter(runtime.kernels["CHASSIS_ECU"],
                    runtime.kernels["CHASSIS_ECU"].tasks["acc.fuse"]),
        Fault(TIMING_OVERRUN, "acc.fuse", start=ms(100), duration=ms(100),
              params={"factor": 10.0}))
    sim.run_until(ms(400))

    assert len(runtime.trace.records("task.budget_overrun",
                                     "acc.fuse")) >= 4
    assert modes.current == "acc_off"
    assert diag.handle(READ_DTC)["dtcs"] == [0xACC]
    # The safety-relevant chassis tasks never suffered.
    assert runtime.deadline_misses("wheel.sample") == 0
    assert runtime.deadline_misses("abs.control") == 0
    # After the fault window, ACC resumed completing jobs.
    completions = runtime.trace.times("task.complete", "acc.fuse")
    assert any(t > ms(220) for t in completions)
