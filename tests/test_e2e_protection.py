"""Tests for end-to-end signal protection (repro.com.e2e)."""

import pytest

from repro.com import (CanComAdapter, ComStack, E2E_CRC_ERROR, E2E_OK,
                       E2E_REPEATED, E2E_TIMEOUT, E2E_WRONG_SEQUENCE,
                       E2eProfile, E2eReceiver, E2eSender, PERIODIC,
                       SignalSpec, crc8, e2e_protected_pdu, protect_link)
from repro.errors import ConfigurationError
from repro.faults import (ComSignalAdapter, CORRUPTION, Fault,
                          FaultInjector, OMISSION)
from repro.network import CanBus, CanFrameSpec
from repro.sim import Simulator, Trace
from repro.units import ms, us


def test_crc8_known_properties():
    assert crc8(b"") == crc8(b"")           # deterministic
    assert crc8(b"\x00") != crc8(b"\x01")   # value-sensitive
    assert crc8(b"\x01\x00") != crc8(b"\x00\x01")  # order-sensitive
    assert 0 <= crc8(b"automotive") <= 0xFF


def test_profile_validation():
    with pytest.raises(ConfigurationError):
        E2eProfile(-1)
    with pytest.raises(ConfigurationError):
        E2eProfile(1, counter_bits=0)
    with pytest.raises(ConfigurationError):
        E2eProfile(1, max_delta_counter=15)  # must leave room for REPEATED
    with pytest.raises(ConfigurationError):
        E2eProfile(1, timeout=0)


def test_protected_pdu_carries_protection_fields():
    profile = E2eProfile(0x77)
    pdu = e2e_protected_pdu("P", 8, [SignalSpec("a", 8),
                                     SignalSpec("b", 4)], profile)
    assert "P.e2e_cnt" in pdu.signal_names()
    assert "P.e2e_crc" in pdu.signal_names()
    with pytest.raises(ConfigurationError):
        # An unprotected PDU cannot back a sender.
        from repro.com import pack_sequentially
        E2eSender(pack_sequentially("Q", 8, [SignalSpec("x", 8)]), profile)


def checker_pair(profile=None):
    profile = profile or E2eProfile(0x1234)
    pdu = e2e_protected_pdu("P", 8, [SignalSpec("v", 16)], profile)
    sim = Simulator()
    sender = E2eSender(pdu, profile)
    receiver = E2eReceiver(sim, pdu, profile)
    return sim, pdu, sender, receiver


def protected_payload(pdu, sender, value):
    values = {"v": value}
    sender.protect(values, set())
    return pdu.pack(values, set())


def test_sender_receiver_ok_sequence():
    sim, pdu, sender, receiver = checker_pair()
    for value in (1, 2, 3):
        assert receiver.check(protected_payload(pdu, sender, value)) \
            == E2E_OK
    assert receiver.counts[E2E_OK] == 3
    assert receiver.error_count == 0


def test_receiver_flags_corruption_as_crc_error():
    sim, pdu, sender, receiver = checker_pair()
    payload = protected_payload(pdu, sender, 42)
    mapping = pdu.mapping_of("v")
    corrupted = payload ^ (1 << mapping.start_bit)  # flip one data bit
    assert receiver.check(corrupted) == E2E_CRC_ERROR


def test_receiver_flags_repeated_counter():
    sim, pdu, sender, receiver = checker_pair()
    payload = protected_payload(pdu, sender, 42)
    assert receiver.check(payload) == E2E_OK
    assert receiver.check(payload) == E2E_REPEATED


def test_receiver_flags_counter_jump_then_resyncs():
    sim, pdu, sender, receiver = checker_pair()
    assert receiver.check(protected_payload(pdu, sender, 1)) == E2E_OK
    for _ in range(3):  # three transmissions lost in the network
        protected_payload(pdu, sender, 0)
    assert receiver.check(protected_payload(pdu, sender, 2)) \
        == E2E_WRONG_SEQUENCE
    # The CRC-valid frame resynchronised the sequence.
    assert receiver.check(protected_payload(pdu, sender, 3)) == E2E_OK


def test_data_id_salts_the_crc():
    _, pdu_a, sender_a, _ = checker_pair(E2eProfile(0x0001))
    profile_b = E2eProfile(0x0002)
    pdu_b = e2e_protected_pdu("P", 8, [SignalSpec("v", 16)], profile_b)
    sim = Simulator()
    receiver_b = E2eReceiver(sim, pdu_b, profile_b)
    # A frame protected for group 1 must not pass group 2's check.
    assert receiver_b.check(protected_payload(pdu_a, sender_a, 7)) \
        == E2E_CRC_ERROR


def test_timeout_supervision_fires_on_drought():
    profile = E2eProfile(0x55, timeout=ms(5))
    sim, pdu, sender, receiver = checker_pair(profile)
    receiver2 = E2eReceiver(sim, pdu, profile)
    verdicts = []
    receiver2.on_verdict(verdicts.append)
    sim.run_until(ms(12))
    # No reception at all: one TIMEOUT per supervision window.
    assert verdicts == [E2E_TIMEOUT, E2E_TIMEOUT]
    assert receiver2.state == E2E_TIMEOUT


def test_timeout_rearmed_by_valid_reception_only():
    profile = E2eProfile(0x55, timeout=ms(5))
    sim, pdu, sender, receiver = checker_pair(profile)
    payload = protected_payload(pdu, sender, 9)
    sim.run_until(ms(3))
    receiver.check(payload)                  # valid: re-arms
    sim.run_until(ms(6))
    assert receiver.counts[E2E_TIMEOUT] == 0
    receiver.check(payload ^ 1)              # corrupt: must NOT re-arm
    sim.run_until(ms(9))
    assert receiver.counts[E2E_TIMEOUT] == 1


def protected_com_pair():
    sim = Simulator()
    trace = Trace()
    bus = CanBus(sim, 500_000, trace=trace)
    profile = E2eProfile(0x2A5A, timeout=ms(25))
    tx = ComStack(sim, CanComAdapter(
        bus.attach("A"), {"P": CanFrameSpec("P", 0x100)}), "A",
        trace=trace)
    rx = ComStack(sim, CanComAdapter(bus.attach("B"), {}), "B",
                  trace=trace)
    tx.add_tx_pdu(e2e_protected_pdu("P", 8, [SignalSpec("speed", 16)],
                                    profile),
                  mode=PERIODIC, period=ms(10))
    rx.add_rx_pdu(e2e_protected_pdu("P", 8, [SignalSpec("speed", 16)],
                                    profile))
    receiver = protect_link(tx, rx, "P", profile)
    return sim, trace, tx, rx, receiver


def test_corruption_is_contained_from_the_application():
    sim, trace, tx, rx, receiver = protected_com_pair()
    tx.write_signal("speed", 7)
    delivered = []
    rx.on_signal("speed", lambda v: delivered.append(v))
    injector = FaultInjector(sim)
    injector.inject(ComSignalAdapter(rx, "speed"),
                    Fault(CORRUPTION, "speed", start=ms(35),
                          duration=ms(30), params={"value": 0xFFFF}))
    sim.run_until(ms(100))
    # Zero corrupted deliveries reached the application.
    assert delivered and all(v == 7 for v in delivered)
    assert rx.read_signal("speed") == 7
    assert receiver.counts[E2E_CRC_ERROR] == 3  # rx at 40, 50, 60 ms
    assert trace.records("com.rx_blocked", "P")


def test_corruption_detected_within_timeout_budget():
    sim, trace, tx, rx, receiver = protected_com_pair()
    tx.write_signal("speed", 7)
    injector = FaultInjector(sim)
    onset = ms(35)
    injector.inject(ComSignalAdapter(rx, "speed"),
                    Fault(CORRUPTION, "speed", start=onset,
                          duration=ms(30), params={"value": 0xFFFF}))
    sim.run_until(ms(100))
    first_error = min(r.time for r in trace.records("e2e.crc_error"))
    assert onset <= first_error <= onset + ms(25)  # the timeout budget


def test_omission_detected_by_timeout_within_budget():
    sim, trace, tx, rx, receiver = protected_com_pair()
    tx.write_signal("speed", 7)
    injector = FaultInjector(sim)
    onset = ms(35)
    injector.inject(ComSignalAdapter(rx, "speed"),
                    Fault(OMISSION, "speed", start=onset,
                          duration=ms(40)))
    sim.run_until(ms(120))
    first_timeout = min(r.time for r in trace.records("e2e.timeout"))
    assert onset <= first_timeout <= onset + ms(25)
    # Reception resumes after the window: resync then OK again.
    assert receiver.counts[E2E_WRONG_SEQUENCE] == 1
    assert receiver.state == E2E_OK


def test_signal_substitution_masks_and_clears():
    sim, trace, tx, rx, receiver = protected_com_pair()
    tx.write_signal("speed", 88)
    sim.run_until(ms(15))
    assert rx.read_signal("speed") == 88
    rx.substitute_signal("speed", 30)
    assert rx.read_signal("speed") == 30
    assert rx.substituted_signals() == ["speed"]
    # Live data keeps flowing underneath and returns on clear.
    tx.write_signal("speed", 90)
    sim.run_until(ms(30))
    assert rx.read_signal("speed") == 30
    rx.clear_substitution("speed")
    assert rx.read_signal("speed") == 90
    assert rx.substituted_signals() == []


def test_double_protection_rejected():
    sim, trace, tx, rx, receiver = protected_com_pair()
    profile = E2eProfile(0x2A5A)
    with pytest.raises(ConfigurationError):
        protect_link(tx, rx, "P", profile)


def test_unfaulted_protected_link_stays_clean():
    sim, trace, tx, rx, receiver = protected_com_pair()
    tx.write_signal("speed", 3)
    sim.run_until(ms(200))
    assert receiver.error_count == 0
    assert receiver.counts[E2E_OK] >= 19
