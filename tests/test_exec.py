"""Tests for repro.exec — deterministic parallel execution engine."""

import json
import os
import pickle
from functools import partial

import pytest

from repro.errors import (ConfigurationError, ExecutionError,
                          ExecutionInterrupted)
from repro.exec import (Chunk, Journal, Plan, ProgressMeter, derive_seed,
                        execute, shard)


# ---------------------------------------------------------------------------
# module-level workers (must be picklable by reference for the pool)
# ---------------------------------------------------------------------------
def square_worker(item, seed):
    return {"item": item, "square": item * item, "seed": seed}


def faulty_worker(bad_item, item, seed):
    if item == bad_item:
        raise ValueError(f"poisoned item {item}")
    return item + 1


def crash_worker(marker_dir, crash_item, item, seed):
    """Dies (no exception, no cleanup) the first time it sees
    ``crash_item``; succeeds on any retry thanks to the marker file."""
    if item == crash_item:
        marker = os.path.join(marker_dir, f"crashed-{item}")
        if not os.path.exists(marker):
            open(marker, "w").close()
            os._exit(3)
    return item * 10


def always_crash_worker(crash_item, item, seed):
    if item == crash_item:
        os._exit(3)
    return item * 10


def hang_once_worker(marker_dir, hang_item, item, seed):
    """Hangs (hot sleep, no exception) the first time it sees
    ``hang_item``; succeeds on any retry thanks to the marker file."""
    import time as _time
    if item == hang_item:
        marker = os.path.join(marker_dir, f"hung-{item}")
        if not os.path.exists(marker):
            open(marker, "w").close()
            _time.sleep(60)
    return item * 10


def always_hang_worker(hang_item, item, seed):
    import time as _time
    if item == hang_item:
        _time.sleep(60)
    return item * 10


# ---------------------------------------------------------------------------
# seed derivation
# ---------------------------------------------------------------------------
def test_derived_seeds_are_deterministic_and_order_free():
    assert derive_seed(7, 3) == derive_seed(7, 3)
    forward = [derive_seed(7, i) for i in range(20)]
    backward = [derive_seed(7, i) for i in reversed(range(20))]
    assert forward == list(reversed(backward))


def test_derived_seeds_are_distinct_across_index_and_base():
    seeds = {derive_seed(base, i) for base in range(10) for i in range(50)}
    assert len(seeds) == 500
    assert all(s >= 0 for s in seeds)


def test_derived_seed_is_not_sequential():
    # Spawn-style hashing: neighbouring indices share no arithmetic
    # relationship (a shared sequential stream would).
    deltas = {derive_seed(1, i + 1) - derive_seed(1, i) for i in range(8)}
    assert len(deltas) == 8


# ---------------------------------------------------------------------------
# sharding
# ---------------------------------------------------------------------------
def test_shard_partitions_all_items_in_order():
    chunks = shard(list(range(10)), chunk_size=3)
    assert [c.index for c in chunks] == [0, 1, 2, 3]
    assert [c.start for c in chunks] == [0, 3, 6, 9]
    assert [item for c in chunks for item in c.items] == list(range(10))
    assert all(len(c.seeds) == len(c.items) for c in chunks)


def test_shard_seeds_match_global_item_index():
    chunks = shard(list(range(10)), chunk_size=4, base_seed=5)
    flat = [seed for c in chunks for seed in c.seeds]
    assert flat == [derive_seed(5, i) for i in range(10)]


def test_shard_is_independent_of_worker_count():
    # Chunking depends only on (items, chunk_size): nothing else to vary.
    assert shard(list(range(7)), 2) == shard(tuple(range(7)), 2)


def test_shard_rejects_bad_chunk_size():
    with pytest.raises(ConfigurationError):
        shard([1, 2], 0)


# ---------------------------------------------------------------------------
# plans
# ---------------------------------------------------------------------------
def test_plan_fingerprint_identifies_the_work():
    plan = Plan("t", square_worker, (1, 2, 3), base_seed=4)
    same = Plan("t", square_worker, (1, 2, 3), base_seed=4)
    assert plan.fingerprint() == same.fingerprint()
    assert plan.fingerprint() != Plan("t", square_worker, (1, 2, 4),
                                      base_seed=4).fingerprint()
    assert plan.fingerprint() != Plan("t", square_worker, (1, 2, 3),
                                      base_seed=5).fingerprint()
    assert plan.fingerprint() != Plan("u", square_worker, (1, 2, 3),
                                      base_seed=4).fingerprint()


def test_plan_round_trips_through_pickle():
    plan = Plan("t", partial(faulty_worker, 99), tuple(range(6)),
                chunk_size=2)
    clone = pickle.loads(pickle.dumps(plan))
    assert clone.label == plan.label
    assert clone.items == plan.items
    assert clone.fingerprint() == plan.fingerprint()


# ---------------------------------------------------------------------------
# execution: determinism
# ---------------------------------------------------------------------------
def test_serial_and_parallel_results_are_identical():
    plan = Plan("sq", square_worker, tuple(range(11)), base_seed=3,
                chunk_size=2)
    serial = execute(plan, jobs=1)
    parallel = execute(plan, jobs=3)
    assert serial.ok and parallel.ok
    assert serial.results == parallel.results
    assert [r["item"] for r in serial.results] == list(range(11))
    assert [r["seed"] for r in serial.results] \
        == [derive_seed(3, i) for i in range(11)]


def test_empty_plan_executes_to_empty_results():
    outcome = execute(Plan("empty", square_worker, ()))
    assert outcome.ok and outcome.results == []


def test_execute_rejects_bad_arguments():
    plan = Plan("sq", square_worker, (1,))
    with pytest.raises(ExecutionError):
        execute(plan, jobs=0)
    with pytest.raises(ExecutionError):
        execute(plan, resume=True)  # resume without a checkpoint


# ---------------------------------------------------------------------------
# execution: failure handling
# ---------------------------------------------------------------------------
def test_raising_worker_is_retried_then_marked_failed():
    plan = Plan("faulty", partial(faulty_worker, 4), tuple(range(6)))
    outcome = execute(plan, jobs=1, retries=2)
    assert not outcome.ok
    assert list(outcome.failures) == [4]
    assert "poisoned item 4" in outcome.failures[4]
    # Every healthy item still completed, in plan order.
    assert outcome.results == [1, 2, 3, 4, 6]
    with pytest.raises(ExecutionError, match="chunk 4"):
        outcome.raise_on_failure()


def test_failed_attempts_are_journaled(tmp_path):
    path = tmp_path / "journal.jsonl"
    plan = Plan("faulty", partial(faulty_worker, 1), (0, 1, 2))
    execute(plan, retries=1, checkpoint=path)
    records = [json.loads(line) for line in open(path)]
    failed = [r for r in records if r["type"] == "failed"]
    assert len(failed) == 1 and failed[0]["chunk"] == 1
    assert failed[0]["attempts"] == 2  # retries=1 -> two attempts


def test_crashed_worker_is_isolated_and_retried(tmp_path):
    # Item 5's worker dies mid-chunk on its first attempt, taking the
    # shared pool down; isolation re-runs it and the sweep completes.
    plan = Plan("crashy",
                partial(crash_worker, str(tmp_path), 5),
                tuple(range(8)), chunk_size=2)
    outcome = execute(plan, jobs=2, retries=1)
    assert outcome.ok
    assert outcome.results == [i * 10 for i in range(8)]


def test_permanently_crashing_chunk_is_marked_failed():
    plan = Plan("crashy", partial(always_crash_worker, 2),
                tuple(range(4)))
    outcome = execute(plan, jobs=2, retries=1)
    assert not outcome.ok
    assert list(outcome.failures) == [2]
    assert outcome.results == [0, 10, 30]


# ---------------------------------------------------------------------------
# execution: watchdog timeout + fixed backoff
# ---------------------------------------------------------------------------
def test_hung_worker_is_killed_and_rerun_deterministically(tmp_path):
    # Item 2's worker hangs on its first attempt; the watchdog kills
    # the pool, isolation re-runs every unresolved chunk, and the
    # merged results match an untroubled run exactly.
    plan = Plan("hangy", partial(hang_once_worker, str(tmp_path), 2),
                tuple(range(6)), chunk_size=2)
    outcome = execute(plan, jobs=2, retries=1, timeout=1.0)
    assert outcome.ok
    assert outcome.results == [i * 10 for i in range(6)]
    assert outcome.results == execute(plan, jobs=1).results


def test_permanently_hung_chunk_exhausts_retries_and_fails():
    plan = Plan("hangy", partial(always_hang_worker, 1),
                tuple(range(3)))
    outcome = execute(plan, jobs=2, retries=0, timeout=0.5)
    assert not outcome.ok
    assert list(outcome.failures) == [1]
    assert "watchdog" in outcome.failures[1]
    # innocent chunks still completed in isolation
    assert outcome.results == [0, 20]


def test_watchdog_does_not_fire_on_healthy_parallel_runs():
    plan = Plan("sq", square_worker, tuple(range(8)), chunk_size=2)
    timed = execute(plan, jobs=2, timeout=30.0)
    assert timed.ok
    assert timed.results == execute(plan, jobs=1).results


def test_invalid_timeout_is_rejected():
    plan = Plan("sq", square_worker, (1,))
    with pytest.raises(ExecutionError, match="timeout"):
        execute(plan, jobs=2, timeout=0)


def test_retries_wait_out_the_fixed_backoff_schedule(monkeypatch):
    from repro.exec import pool

    slept = []
    monkeypatch.setattr(pool, "_sleep", slept.append)
    plan = Plan("faulty", partial(faulty_worker, 0), (0,))
    outcome = execute(plan, jobs=1, retries=3)
    assert not outcome.ok
    # attempt 1 -> 0.0 (skipped), attempts 2..3 -> schedule tail
    assert slept == [0.05, 0.2]
    # the schedule is fixed, never randomised: a second identical run
    # waits out the identical delays
    slept.clear()
    execute(plan, jobs=1, retries=3)
    assert slept == [0.05, 0.2]


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------
def test_interrupt_then_resume_matches_uninterrupted_run(tmp_path):
    path = tmp_path / "journal.jsonl"
    plan = Plan("sq", square_worker, tuple(range(9)), chunk_size=2)
    uninterrupted = execute(plan, jobs=1)
    with pytest.raises(ExecutionInterrupted):
        execute(plan, jobs=1, checkpoint=path, interrupt_after=2)
    resumed = execute(plan, jobs=1, checkpoint=path, resume=True)
    assert resumed.ok
    assert resumed.results == uninterrupted.results
    assert resumed.chunks_resumed == 2
    assert resumed.chunks_executed == 3


def test_parallel_resume_of_serial_journal(tmp_path):
    # Chunking never depends on the job count, so a journal written by
    # one executor is resumable by any other.
    path = tmp_path / "journal.jsonl"
    plan = Plan("sq", square_worker, tuple(range(9)), chunk_size=2)
    with pytest.raises(ExecutionInterrupted):
        execute(plan, jobs=1, checkpoint=path, interrupt_after=3)
    resumed = execute(plan, jobs=2, checkpoint=path, resume=True)
    assert resumed.results == execute(plan, jobs=1).results


def test_resume_refuses_a_mismatched_journal(tmp_path):
    path = tmp_path / "journal.jsonl"
    execute(Plan("sq", square_worker, (1, 2, 3)), checkpoint=path)
    other = Plan("sq", square_worker, (1, 2, 3, 4))
    with pytest.raises(ExecutionError, match="different plan"):
        execute(other, checkpoint=path, resume=True)


def test_resume_without_journal_raises(tmp_path):
    plan = Plan("sq", square_worker, (1,))
    with pytest.raises(ExecutionError, match="no checkpoint journal"):
        execute(plan, checkpoint=tmp_path / "missing.jsonl", resume=True)


def test_journal_replay_classifies_chunk_states(tmp_path):
    path = tmp_path / "journal.jsonl"
    plan = Plan("sq", square_worker, (1, 2, 3))
    journal = Journal(path)
    journal.begin(plan)
    journal.record_start(0)
    journal.record_done(0, [41], 0.1, worker=1234)
    journal.record_start(1)  # in flight when the run died
    journal.record_start(2)
    journal.record_failed(2, "boom", attempts=2)
    journal.close()
    state = Journal(path).load(plan)
    assert state.completed == {0: [41]}
    assert state.pending == {1, 2}


def test_fully_journaled_run_resumes_without_executing(tmp_path):
    path = tmp_path / "journal.jsonl"
    plan = Plan("sq", square_worker, tuple(range(4)))
    first = execute(plan, checkpoint=path)
    resumed = execute(plan, checkpoint=path, resume=True)
    assert resumed.results == first.results
    assert resumed.chunks_executed == 0
    assert resumed.chunks_resumed == 4


# ---------------------------------------------------------------------------
# checkpoint: journal corruption tolerance
# ---------------------------------------------------------------------------
def _truncate_last_line(path):
    lines = open(path, encoding="utf-8").read().splitlines()
    lines[-1] = lines[-1][:len(lines[-1]) // 2]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines))  # no trailing newline: mid-write


def test_truncated_trailing_line_is_skipped_with_warning(tmp_path):
    from repro.exec.checkpoint import JournalCorruptionWarning

    path = tmp_path / "journal.jsonl"
    plan = Plan("sq", square_worker, tuple(range(4)))
    full = execute(plan, checkpoint=path)
    _truncate_last_line(path)
    with pytest.warns(JournalCorruptionWarning, match="trailing line"):
        state = Journal(path).load(plan)
    # the damaged chunk dropped out of `completed`, so it re-runs
    assert len(state.completed) == 3
    with pytest.warns(JournalCorruptionWarning):
        resumed = execute(plan, checkpoint=path, resume=True)
    assert resumed.ok
    assert resumed.results == full.results
    assert resumed.chunks_resumed == 3
    assert resumed.chunks_executed == 1


def test_garbled_trailing_payload_is_skipped_with_warning(tmp_path):
    from repro.exec.checkpoint import JournalCorruptionWarning

    path = tmp_path / "journal.jsonl"
    plan = Plan("sq", square_worker, (1, 2))
    execute(plan, checkpoint=path)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "done", "chunk": 1, "payload": "!bad!"')
    with pytest.warns(JournalCorruptionWarning):
        state = Journal(path).load(plan)
    assert sorted(state.completed) == [0, 1]  # the valid records stand


def test_mid_file_corruption_refuses_to_resume(tmp_path):
    path = tmp_path / "journal.jsonl"
    plan = Plan("sq", square_worker, tuple(range(4)))
    execute(plan, checkpoint=path)
    lines = open(path, encoding="utf-8").read().splitlines()
    lines[2] = lines[2][: len(lines[2]) // 2]  # damage BEFORE the tail
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(ExecutionError, match="before the trailing line"):
        Journal(path).load(plan)


def test_corrupt_header_refuses_to_resume(tmp_path):
    path = tmp_path / "journal.jsonl"
    plan = Plan("sq", square_worker, (1,))
    execute(plan, checkpoint=path)
    lines = open(path, encoding="utf-8").read().splitlines()
    lines[0] = lines[0][:10]
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")
    with pytest.raises(ExecutionError, match="header"):
        Journal(path).load(plan)


# ---------------------------------------------------------------------------
# progress metrics
# ---------------------------------------------------------------------------
def test_progress_meter_rates_and_eta():
    now = [0.0]
    meter = ProgressMeter(4, 40, clock=lambda: now[0])
    now[0] = 10.0
    meter.chunk_resumed(10)
    meter.chunk_done(10, elapsed=4.0, worker=111)
    meter.chunk_done(10, elapsed=6.0, worker=222)
    snap = meter.snapshot()
    assert snap["chunks_done"] == 2 and snap["chunks_resumed"] == 1
    assert snap["items_done"] == 20 and snap["items_resumed"] == 10
    assert snap["items_per_s"] == pytest.approx(2.0)
    assert snap["eta_s"] == pytest.approx(5.0)  # 10 items left at 2/s
    assert snap["workers"] == {
        111: {"chunks": 1, "wall_s": 4.0},
        222: {"chunks": 1, "wall_s": 6.0},
    }


def test_progress_meter_emits_lines():
    lines = []
    now = [0.0]
    meter = ProgressMeter(2, 4, clock=lambda: now[0], emit=lines.append)
    now[0] = 1.0
    meter.chunk_done(2, elapsed=1.0, worker=1)
    now[0] = 2.0
    meter.chunk_done(2, elapsed=1.0, worker=1)
    assert len(lines) == 2
    assert lines[-1].startswith("[2/2 chunks] 4/4 items")


def test_execution_metrics_flow_through(tmp_path):
    plan = Plan("sq", square_worker, tuple(range(6)), chunk_size=2)
    outcome = execute(plan, jobs=2)
    assert outcome.metrics["chunks_done"] == 3
    assert outcome.metrics["items_done"] == 6
    assert outcome.metrics["workers"]  # at least one worker accounted


# ---------------------------------------------------------------------------
# picklability regressions (the engine's transport requirement)
# ---------------------------------------------------------------------------
def test_campaign_cell_and_result_round_trip_pickle():
    from repro.faults.campaign import (ReferenceWorld, reference_cells,
                                       run_cell)
    from repro.units import ms

    cell = reference_cells()[0]
    clone = pickle.loads(pickle.dumps(cell))
    assert clone == cell and clone.params == cell.params
    result = run_cell(ReferenceWorld, cell, ms(300))
    copy = pickle.loads(pickle.dumps(result))
    assert copy.cell == result.cell
    assert copy.to_dict() == result.to_dict()


def _can_layout(plan):
    return (plan.bitrate_bps,
            [(f.period, f.sender, f.ipdu.name, f.ipdu.size_bytes,
              [(m.spec.name, m.spec.width_bits, m.start_bit, m.update_bit)
               for m in f.ipdu.mappings])
             for f in plan.frames],
            [(s.name, s.can_id, s.dlc, s.period) for s in plan.frame_specs])


def _flexray_layout(plan):
    config = plan.config
    return ((config.slot_length, config.n_static_slots,
             config.minislot_length, config.n_minislots,
             config.nit_length, config.bitrate_bps),
            plan.nodes,
            [(w.assignment.slot, w.assignment.node,
              w.assignment.frame_name, w.assignment.base_cycle,
              w.assignment.repetition, w.period, w.offset)
             for w in plan.static_writers],
            [(w.spec.name, w.spec.frame_id, w.spec.size_bytes, w.node,
              w.period, w.offset) for w in plan.dynamic_writers])


def test_generated_system_round_trips_pickle():
    from repro.verify import generate

    system = generate(7, "small")
    clone = pickle.loads(pickle.dumps(system))
    assert clone.name == system.name and clone.seed == system.seed
    assert clone.tasksets == system.tasksets
    assert clone.resources == system.resources
    assert clone.critical_sections == system.critical_sections
    assert clone.chain == system.chain
    assert clone.tdma == system.tdma
    # The CAN/FlexRay plans hold spec objects without __eq__; compare
    # their full structural layout instead.
    assert _can_layout(clone.can) == _can_layout(system.can)
    assert _flexray_layout(clone.flexray) == _flexray_layout(system.flexray)
