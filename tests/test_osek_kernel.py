"""Unit tests for the ECU kernel with fixed-priority scheduling."""

import pytest

from repro.errors import SimulationError
from repro.osek import (Acquire, EcuKernel, Execute, FixedPriorityScheduler,
                        OsekResource, Release, TaskSpec, WaitEvent)
from repro.sim import Simulator
from repro.units import ms, us


def make_kernel(preemptive=True, **kw):
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler(preemptive=preemptive),
                       **kw)
    return sim, kernel


def test_single_periodic_task_runs_every_period():
    sim, kernel = make_kernel()
    kernel.add_task(TaskSpec("T", wcet=ms(1), period=ms(10)))
    sim.run_until(ms(50))
    assert kernel.tasks["T"].jobs_completed == 5
    assert kernel.response_times("T") == [ms(1)] * 5


def test_offset_delays_first_activation():
    sim, kernel = make_kernel()
    kernel.add_task(TaskSpec("T", wcet=ms(1), period=ms(10), offset=ms(3)))
    sim.run_until(ms(25))
    assert kernel.trace.times("task.activate", "T") == [ms(3), ms(13), ms(23)]


def test_high_priority_preempts_low():
    sim, kernel = make_kernel()
    kernel.add_task(TaskSpec("LO", wcet=ms(5), period=ms(20), priority=1))
    kernel.add_task(TaskSpec("HI", wcet=ms(1), period=ms(20), priority=2,
                             offset=ms(2)))
    sim.run_until(ms(20))
    # LO runs [0,2), is preempted, HI runs [2,3), LO finishes at 6.
    assert kernel.response_times("HI") == [ms(1)]
    assert kernel.response_times("LO") == [ms(6)]
    assert kernel.trace.times("task.preempt", "LO") == [ms(2)]
    assert kernel.trace.times("task.resume", "LO") == [ms(3)]


def test_non_preemptive_blocks_high_priority():
    sim, kernel = make_kernel(preemptive=False)
    kernel.add_task(TaskSpec("LO", wcet=ms(5), period=ms(20), priority=1))
    kernel.add_task(TaskSpec("HI", wcet=ms(1), period=ms(20), priority=2,
                             offset=ms(2)))
    sim.run_until(ms(20))
    # HI must wait for LO to finish at 5, completes at 6 -> response 4 ms.
    assert kernel.response_times("HI") == [ms(4)]
    assert kernel.deadline_misses() == 0
    assert kernel.trace.records("task.preempt") == []


def test_equal_priority_fifo():
    sim, kernel = make_kernel()
    kernel.add_task(TaskSpec("A", wcet=ms(2), period=ms(20), priority=1))
    kernel.add_task(TaskSpec("B", wcet=ms(2), period=ms(20), priority=1))
    sim.run_until(ms(10))
    assert kernel.trace.times("task.start", "A") == [0]
    assert kernel.trace.times("task.start", "B") == [ms(2)]


def test_deadline_miss_detected_at_deadline_instant():
    sim, kernel = make_kernel()
    # Utilization 1.5: the low-priority task must miss.
    kernel.add_task(TaskSpec("HI", wcet=ms(5), period=ms(10), priority=2))
    kernel.add_task(TaskSpec("LO", wcet=ms(10), period=ms(10), priority=1))
    sim.run_until(ms(30))
    assert kernel.deadline_misses("LO") >= 1
    assert kernel.deadline_misses("HI") == 0


def test_activation_limit_drops_extra_activations():
    sim, kernel = make_kernel()
    # Task can never finish before its next activation.
    kernel.add_task(TaskSpec("HOG", wcet=ms(25), period=ms(10), priority=1,
                             deadline=ms(100)))
    sim.run_until(ms(40))
    assert kernel.tasks["HOG"].activations_lost >= 2
    lost = kernel.trace.records("task.activation_lost", "HOG")
    assert len(lost) == kernel.tasks["HOG"].activations_lost


def test_sporadic_activation_via_activate():
    sim, kernel = make_kernel()
    task = kernel.add_task(TaskSpec("S", wcet=us(500), priority=3,
                                    deadline=ms(5)))
    sim.schedule(ms(7), lambda: kernel.activate(task))
    sim.run_until(ms(20))
    assert kernel.trace.times("task.complete", "S") == [ms(7) + us(500)]


def test_budget_overrun_kills_job():
    sim, kernel = make_kernel()
    kernel.add_task(TaskSpec("BAD", wcet=ms(4), period=ms(10), priority=1,
                             budget=ms(2)))
    sim.run_until(ms(10))
    task = kernel.tasks["BAD"]
    assert task.jobs_completed == 0
    overruns = kernel.trace.records("task.budget_overrun", "BAD")
    assert len(overruns) == 1
    assert overruns[0].time == ms(2)


def test_budget_enforcement_off_lets_job_finish():
    sim, kernel = make_kernel(budget_enforcement="off")
    kernel.add_task(TaskSpec("BAD", wcet=ms(4), period=ms(10), priority=1,
                             budget=ms(2)))
    sim.run_until(ms(10))
    assert kernel.tasks["BAD"].jobs_completed == 1


def test_budget_protects_lower_priority_task():
    """Timing protection bounds a runaway high-priority task's interference."""
    sim, kernel = make_kernel()
    kernel.add_task(TaskSpec("RUNAWAY", wcet=ms(9), period=ms(10), priority=2,
                             budget=ms(2)))
    kernel.add_task(TaskSpec("VICTIM", wcet=ms(3), period=ms(10), priority=1))
    sim.run_until(ms(50))
    assert kernel.deadline_misses("VICTIM") == 0
    assert max(kernel.response_times("VICTIM")) == ms(5)


def test_duplicate_task_name_rejected():
    sim, kernel = make_kernel()
    kernel.add_task(TaskSpec("T", wcet=1, period=100))
    with pytest.raises(SimulationError):
        kernel.add_task(TaskSpec("T", wcet=1, period=100))


def test_execution_time_sampler_used():
    sim, kernel = make_kernel()
    demands = iter([ms(1), ms(3), ms(2)])
    kernel.add_task(TaskSpec("V", wcet=ms(3), period=ms(10)),
                    execution_time=lambda: next(demands))
    sim.run_until(ms(30) - 1)
    assert kernel.response_times("V") == [ms(1), ms(3), ms(2)]


def test_on_start_and_on_complete_hooks():
    sim, kernel = make_kernel()
    calls = []
    kernel.add_task(TaskSpec("T", wcet=ms(1), period=ms(10)),
                    on_start=lambda job: calls.append(("start", sim.now)),
                    on_complete=lambda job: calls.append(("end", sim.now)))
    sim.run_until(ms(10) - 1)
    assert calls == [("start", 0), ("end", ms(1))]


def test_custom_body_with_resource_icpp():
    sim, kernel = make_kernel()
    res = OsekResource("R")
    res.register_user(2)

    def lo_body(job):
        yield Execute(ms(1))
        yield Acquire(res)
        yield Execute(ms(2))
        yield Release(res)
        yield Execute(ms(1))

    kernel.add_task(TaskSpec("LO", wcet=ms(4), period=ms(50), priority=1),
                    body=lo_body)
    kernel.add_task(TaskSpec("HI", wcet=ms(1), period=ms(50), priority=2,
                             offset=ms(2)))
    sim.run_until(ms(50))
    # LO's critical section spans [1,3) at ceiling priority 2, so HI
    # (arriving at 2) is blocked until the release at 3, runs [3,4),
    # and LO finishes its last ms at 5.
    assert kernel.response_times("HI") == [ms(2)]
    assert kernel.response_times("LO") == [ms(5)]
    assert res.acquisitions == 1


def test_resource_leak_released_and_logged():
    sim, kernel = make_kernel()
    res = OsekResource("R", ceiling=5)

    def leaky(job):
        yield Acquire(res)
        yield Execute(ms(1))
        # forgets Release

    kernel.add_task(TaskSpec("L", wcet=ms(1), period=ms(10)), body=leaky)
    sim.run_until(ms(5))
    assert res.holder is None
    assert len(kernel.trace.records("task.resource_leak", "L")) == 1


def test_release_jitter_shifts_release_not_period_grid():
    sim, kernel = make_kernel()
    jitters = iter([us(100), us(300), 0, 0])
    kernel.add_task(TaskSpec("J", wcet=us(10), period=ms(10)),
                    release_jitter=lambda: next(jitters))
    sim.run_until(ms(25))
    acts = kernel.trace.times("task.activate", "J")
    assert acts == [us(100), ms(10) + us(300), ms(20)]


def test_cpu_utilization_accounting():
    sim, kernel = make_kernel()
    kernel.add_task(TaskSpec("T", wcet=ms(2), period=ms(10)))
    sim.run_until(ms(100))
    assert kernel.utilization() == pytest.approx(0.2)
