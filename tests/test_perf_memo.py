"""Unit tests for the analysis memo cache (:mod:`repro.perf.memo`) and
the content-addressed layer keys (:mod:`repro.perf.keys`).

The memo's contract has three legs: a hit returns a value structurally
identical to what the solver produced, a hit replays the solver's obs
counters so cached and uncached telemetry agree, and the disk tier
tolerates anything the filesystem can throw at it (missing, corrupt,
truncated files read as misses, never as errors).
"""

import json
import os

import pytest

from repro import obs, perf
from repro.errors import ConfigurationError
from repro.perf.keys import layer_inputs, layer_keys
from repro.perf.memo import AnalysisMemo, CacheConfig
from repro.verify.generator import generate


@pytest.fixture(autouse=True)
def cache_off():
    """Every test starts and ends with the process-wide memo off."""
    perf.configure(None)
    yield
    perf.configure(None)


def make_solver(value, counters=()):
    """A solver that emits obs counters and counts its invocations."""
    calls = []

    def solver():
        calls.append(1)
        for name, amount in counters:
            obs.count(name, amount)
        return value

    return solver, calls


# ----------------------------------------------------------------------
# CacheConfig
# ----------------------------------------------------------------------
def test_config_rejects_nonpositive_capacity():
    with pytest.raises(ConfigurationError):
        CacheConfig(True, 0)


def test_config_from_mode_vocabulary(tmp_path):
    assert CacheConfig.from_mode("off").enabled is False
    memory = CacheConfig.from_mode("memory", capacity=7)
    assert memory.enabled and memory.capacity == 7 \
        and memory.disk_dir is None
    disk = CacheConfig.from_mode("disk", str(tmp_path))
    assert disk.enabled and disk.disk_dir == str(tmp_path)
    with pytest.raises(ConfigurationError):
        CacheConfig.from_mode("disk")
    with pytest.raises(ConfigurationError):
        CacheConfig.from_mode("sideways")


# ----------------------------------------------------------------------
# Miss / hit behaviour
# ----------------------------------------------------------------------
def test_solve_runs_solver_once_then_hits():
    memo = AnalysisMemo(CacheConfig(True, 16))
    solver, calls = make_solver({"rows": [["t", 5]]})
    first = memo.solve("rta:E1", "k1", solver)
    second = memo.solve("rta:E1", "k1", solver)
    assert first == second == {"rows": [["t", 5]]}
    assert len(calls) == 1
    assert memo.stats()["hits"] == 1 and memo.stats()["misses"] == 1


def test_hit_value_is_json_identical_not_the_same_object():
    """Entries round-trip through JSON at store time, so a hit cannot
    leak mutable state between callers."""
    memo = AnalysisMemo(CacheConfig(True, 16))
    solver, _ = make_solver({"rows": [["t", 5]]})
    first = memo.solve("can", "k", solver)
    first["rows"].append(["mutated", 0])
    second = memo.solve("can", "k", solver)
    assert second == {"rows": [["t", 5]]}


def test_hit_replays_solver_counters_identically():
    memo = AnalysisMemo(CacheConfig(True, 16))
    solver, calls = make_solver(
        {"rows": []}, counters=(("rta.fixpoint_iterations", 9),
                                ("rta.tasks_analyzed", 3)))
    with obs.capture() as miss_scope:
        memo.solve("rta:E1", "k", solver)
    with obs.capture() as hit_scope:
        memo.solve("rta:E1", "k", solver)
    assert len(calls) == 1
    miss = miss_scope.snapshot()["metrics"]["counters"]
    hit = hit_scope.snapshot()["metrics"]["counters"]
    # Identical except for the cache's own bookkeeping counter.
    assert miss.pop("perf.cache.misses") == 1
    assert hit.pop("perf.cache.hits") == 1
    assert miss == hit
    assert hit["rta.fixpoint_iterations"] == 9
    assert hit["rta.tasks_analyzed"] == 3


def test_distinct_layers_do_not_collide_on_equal_keys():
    memo = AnalysisMemo(CacheConfig(True, 16))
    a, _ = make_solver({"rows": [["a", 1]]})
    b, _ = make_solver({"rows": [["b", 2]]})
    assert memo.solve("can", "same-key", a) != \
        memo.solve("tdma", "same-key", b)


# ----------------------------------------------------------------------
# LRU eviction
# ----------------------------------------------------------------------
def test_lru_evicts_least_recently_used_at_capacity():
    memo = AnalysisMemo(CacheConfig(True, 2))
    s1, c1 = make_solver({"rows": [[1]]})
    s2, c2 = make_solver({"rows": [[2]]})
    s3, c3 = make_solver({"rows": [[3]]})
    memo.solve("can", "k1", s1)
    memo.solve("can", "k2", s2)
    memo.solve("can", "k1", s1)      # refresh k1: k2 is now oldest
    memo.solve("can", "k3", s3)      # evicts k2
    assert memo.stats()["evictions"] == 1
    memo.solve("can", "k1", s1)
    assert len(c1) == 1              # still cached
    memo.solve("can", "k2", s2)
    assert len(c2) == 2              # was evicted: re-solved


# ----------------------------------------------------------------------
# Disk tier
# ----------------------------------------------------------------------
def test_disk_roundtrip_survives_memory_clear(tmp_path):
    memo = AnalysisMemo(CacheConfig(True, 16, str(tmp_path)))
    solver, calls = make_solver({"rows": [["t", 5]]},
                                counters=(("rta.tasks_analyzed", 1),))
    memo.solve("rta:E1", "deadbeef", solver)
    memo.clear()
    with obs.capture() as scope:
        value = memo.solve("rta:E1", "deadbeef", solver)
    assert value == {"rows": [["t", 5]]}
    assert len(calls) == 1
    assert memo.disk_hits == 1
    counters = scope.snapshot()["metrics"]["counters"]
    assert counters["rta.tasks_analyzed"] == 1  # replayed from disk


def test_disk_files_are_canonical_json(tmp_path):
    memo = AnalysisMemo(CacheConfig(True, 16, str(tmp_path)))
    solver, _ = make_solver({"rows": [["t", 5]]})
    memo.solve("rta:E1", "cafe", solver)
    names = os.listdir(tmp_path)
    assert names == ["rta_E1-cafe.json"]
    with open(tmp_path / names[0], encoding="utf-8") as handle:
        body = handle.read()
    entry = json.loads(body)
    assert body == json.dumps(entry, sort_keys=True,
                              separators=(",", ":"))


@pytest.mark.parametrize("body", ["", "{truncated", '"a string"',
                                  '{"value": 1}', '{"counters": {}}'])
def test_corrupt_or_partial_disk_entry_reads_as_miss(tmp_path, body):
    memo = AnalysisMemo(CacheConfig(True, 16, str(tmp_path)))
    path = tmp_path / "can-feed.json"
    path.write_text(body, encoding="utf-8")
    solver, calls = make_solver({"rows": [["ok", 1]]})
    assert memo.solve("can", "feed", solver) == {"rows": [["ok", 1]]}
    assert len(calls) == 1           # the solver ran: corrupt = miss
    # ... and the solve rewrote the file whole.
    assert json.loads(path.read_text())["value"] == {"rows": [["ok", 1]]}


# ----------------------------------------------------------------------
# Process-wide configuration seam
# ----------------------------------------------------------------------
def test_configure_none_and_disabled_mean_off():
    assert perf.configure(None) is None
    assert perf.get_memo() is None and perf.stats() is None
    assert perf.configure(CacheConfig(False)) is None
    memo = perf.configure(CacheConfig(True, 8))
    assert perf.get_memo() is memo


def test_ensure_is_idempotent_and_keeps_warm_memo():
    config = CacheConfig(True, 8)
    perf.configure(config)
    memo = perf.get_memo()
    solver, _ = make_solver({"rows": []})
    memo.solve("can", "k", solver)
    perf.ensure(config)              # equal config: memo survives warm
    assert perf.get_memo() is memo
    assert perf.get_memo().stats()["entries"] == 1
    perf.ensure(None)                # no preference: no-op
    assert perf.get_memo() is memo
    perf.ensure(CacheConfig(True, 9))  # different config: fresh memo
    assert perf.get_memo() is not memo


# ----------------------------------------------------------------------
# Layer keys
# ----------------------------------------------------------------------
def test_layer_keys_are_deterministic_and_hex():
    system = generate(3, "small")
    keys_a = layer_keys(system)
    keys_b = layer_keys(generate(3, "small"))
    assert keys_a == keys_b
    assert keys_a
    for key in keys_a.values():
        assert len(key) == 64 and int(key, 16) >= 0


def test_layer_keys_cover_every_analyzed_layer():
    system = generate(3, "small")
    keys = layer_keys(system)
    for ecu in system.fp_ecus:
        assert f"rta:{ecu}" in keys
    if system.can is not None:
        assert "can" in keys
    if system.flexray is not None:
        assert "flexray_static" in keys and "flexray_dynamic" in keys
    if system.tdma is not None:
        assert "tdma" in keys
    if system.chain is not None and system.can is not None:
        assert "e2e" in keys


def test_e2e_key_depends_on_its_producer_rta_key():
    """The composite e2e key embeds its dependency layers' keys, so a
    task change invalidates the chain bound even though the chain plan
    itself is untouched."""
    system = generate(3, "small")
    assert system.chain is not None and system.can is not None
    keys = layer_keys(system)
    producer = system.chain.producer_ecu
    task = system.tasksets[producer][0]
    task.wcet += 1
    bumped = layer_keys(system)
    assert bumped[f"rta:{producer}"] != keys[f"rta:{producer}"]
    assert bumped["e2e"] != keys["e2e"]


def test_layer_inputs_are_json_native():
    system = generate(5, "small")
    inputs = layer_inputs(system)
    assert json.loads(json.dumps(inputs, sort_keys=True)) == inputs
