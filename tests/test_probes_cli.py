"""Tests for the chain probe, trace export and the CLI entry point."""

import pytest

from repro.errors import AnalysisError
from repro.analysis import Chain, ChainProbe, Stage
from repro.sim import Trace
from repro.units import ms, us


# ----------------------------------------------------------------------
# ChainProbe
# ----------------------------------------------------------------------
def test_probe_measures_latency_per_key():
    probe = ChainProbe("p")
    probe.stamp(1, 100)
    probe.stamp(2, 200)
    assert probe.observe(2, 260) == 60
    assert probe.observe(1, 400) == 300
    assert probe.worst == 300
    assert probe.summary()["count"] == 2


def test_probe_unmatched_and_duplicates_counted():
    probe = ChainProbe("p")
    assert probe.observe(99, 50) is None
    assert probe.unmatched == 1
    probe.stamp(1, 10)
    probe.stamp(1, 20)  # overwrite = duplicate
    assert probe.duplicates == 1
    assert probe.observe(1, 30) == 10  # measured from the latest stamp


def test_probe_pending_overflow_guard():
    probe = ChainProbe("p", max_pending=3)
    for key in range(3):
        probe.stamp(key, 0)
    with pytest.raises(AnalysisError):
        probe.stamp(3, 0)


def test_probe_check_against_chain():
    probe = ChainProbe("p")
    probe.stamp("a", 0)
    probe.observe("a", us(500))
    chain = Chain("c", [Stage("only", us(800))])
    verdict = probe.check_against(chain)
    assert verdict["bound_holds"]
    assert verdict["tightness"] == pytest.approx(1.6)
    empty = ChainProbe("empty")
    with pytest.raises(AnalysisError):
        empty.check_against(chain)


# ----------------------------------------------------------------------
# Trace export
# ----------------------------------------------------------------------
def test_trace_to_dicts():
    trace = Trace()
    trace.log(5, "task.start", "T", job=1)
    rows = trace.to_dicts()
    assert rows == [{"time": 5, "category": "task.start", "subject": "T",
                     "job": 1}]


def test_trace_save_csv(tmp_path):
    trace = Trace()
    trace.log(5, "task.start", "T", job=1, response=99)
    trace.log(9, "task.complete", "T")
    path = tmp_path / "trace.csv"
    assert trace.save_csv(str(path)) == 2
    content = path.read_text().splitlines()
    assert content[0] == "time,category,subject,data"
    assert content[1].startswith("5,task.start,T,")
    assert "job=1" in content[1] and "response=99" in content[1]


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_info(capsys):
    from repro.__main__ import main
    assert main(["repro", "info"]) == 0
    out = capsys.readouterr().out
    assert "repro.osek" in out and "DATE 2008" in out


def test_cli_selftest_passes(capsys):
    from repro.__main__ import main
    assert main(["repro", "selftest"]) == 0
    assert capsys.readouterr().out.startswith("PASS")


def test_cli_unknown_command(capsys):
    from repro.__main__ import main
    assert main(["repro", "bogus"]) == 2
