"""Tests for the prior-to-implementation timing report, cross-checked
against the deployed system it predicts."""

import pytest

from repro.analysis import ChainProbe, timing_report
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.sim import Simulator
from repro.units import ms, us

DATA_IF = SenderReceiverInterface("d", {"v": UINT16})


def build_system(probe=None, declare_writes=True):
    sensor = SwComponent("Sensor")
    sensor.provide("out", DATA_IF)

    def sample(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        seq = ctx.state["n"] % 65536
        if probe is not None:
            probe.stamp(seq, ctx.now)
        ctx.write("out", "v", seq)

    sensor.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(500),
                    writes=[("out", "v")] if declare_writes else None)
    # A second runnable so writer inference cannot kick in.
    sensor.runnable("housekeeping", TimingEvent(ms(100)),
                    lambda ctx: None, wcet=us(100))

    consumer = SwComponent("Consumer")
    consumer.require("in", DATA_IF)

    def consume(ctx):
        if probe is not None:
            probe.observe(ctx.read("in", "v"), ctx.now)

    consumer.runnable("consume", DataReceivedEvent("in", "v"), consume,
                      wcet=us(800))
    hog = SwComponent("Hog")
    hog.provide("out", DATA_IF)
    hog.runnable("burn", TimingEvent(ms(5)), lambda ctx: None,
                 wcet=ms(1))

    app = Composition("App")
    app.add(sensor.instantiate("sensor"))
    app.add(consumer.instantiate("consumer"))
    app.add(hog.instantiate("hog"))
    app.connect("sensor", "out", "consumer", "in")
    system = SystemModel("report")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("sensor", "E1")
    system.map("hog", "E1")
    system.map("consumer", "E2")
    system.configure_bus("can", bitrate_bps=500_000)
    return system


def test_report_analyses_unbuilt_system():
    report = timing_report(build_system())
    assert report.analysable and report.schedulable
    assert "sensor.sample" in report.task_wcrt
    assert "sensor.out" in report.frame_wcrt
    chain_name = "sensor.sample -> sensor.out -> consumer.consume"
    assert chain_name in report.chain_latency
    # The chain bound dominates its stages.
    assert report.chain_latency[chain_name] > \
        report.task_wcrt["sensor.sample"]


def test_report_bound_covers_deployed_reality():
    """The report is made before building; the built system must stay
    within its predictions."""
    probe = ChainProbe("check")
    system = build_system(probe)
    report = timing_report(system)
    chain_bound = report.chain_latency[
        "sensor.sample -> sensor.out -> consumer.consume"]
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(1000))
    # Per-task WCRTs hold...
    for task_name in ("sensor.sample", "hog.burn"):
        observed = max(runtime.response_times(task_name))
        assert observed <= report.task_wcrt[task_name]
    # ...and the end-to-end chain bound holds.
    assert probe.latencies
    assert probe.worst <= chain_bound


def test_report_flags_missing_writer_declaration():
    report = timing_report(build_system(declare_writes=False))
    assert report.analysable
    assert any("writes=" in issue for issue in report.issues)
    assert report.chain_latency == {}  # chain not analysable
    assert report.task_wcrt  # tasks still analysed


def test_report_rejects_invalid_configuration():
    system = build_system()
    del system.mapping["consumer"]
    report = timing_report(system)
    assert not report.analysable
    assert any("configuration" in issue for issue in report.issues)


def test_report_rejects_multi_domain():
    system = build_system()
    system.ecus["E2"].domain = "body"
    system.configure_domain_bus("body", "can")
    report = timing_report(system)
    assert not report.analysable
    assert any("single-domain" in issue for issue in report.issues)


def test_report_detects_unschedulable_design():
    # A saturated ECU: sensor (4/10) + hog (4/5) overload E1.
    sensor = SwComponent("Sensor")
    sensor.provide("out", DATA_IF)
    sensor.runnable("sample", TimingEvent(ms(10)), lambda ctx: None,
                    wcet=ms(4), writes=[("out", "v")])
    hog = SwComponent("Hog")
    hog.provide("out", DATA_IF)
    hog.runnable("burn", TimingEvent(ms(5)), lambda ctx: None,
                 wcet=ms(4))
    app = Composition("App")
    app.add(sensor.instantiate("sensor"))
    app.add(hog.instantiate("hog"))
    system = SystemModel("overload")
    system.add_ecu("E1")
    system.set_root(app)
    system.map_all("E1")
    report = timing_report(system)
    assert report.analysable
    assert not report.schedulable
    assert any("sensor.sample" in issue for issue in report.issues)


def test_report_anchors_local_data_triggered_consumers():
    """Same-ECU data-triggered tasks are linked task -> task (no bus
    hop), so mixed local/remote chains are fully analysed."""
    producer = SwComponent("P")
    producer.provide("out", DATA_IF)
    producer.runnable("tick", TimingEvent(ms(10)), lambda ctx: None,
                      wcet=us(200), writes=[("out", "v")])
    local = SwComponent("L")
    local.require("in", DATA_IF)
    local.provide("out", DATA_IF)
    local.runnable("hop", DataReceivedEvent("in", "v"),
                   lambda ctx: None, wcet=us(300),
                   writes=[("out", "v")])
    remote = SwComponent("R")
    remote.require("in", DATA_IF)
    remote.runnable("sink", DataReceivedEvent("in", "v"),
                    lambda ctx: None, wcet=us(400))
    app = Composition("App")
    app.add(producer.instantiate("p"))
    app.add(local.instantiate("l"))
    app.add(remote.instantiate("r"))
    app.connect("p", "out", "l", "in")   # local on E1
    app.connect("l", "out", "r", "in")   # cross to E2
    system = SystemModel("mixed")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("p", "E1")
    system.map("l", "E1")
    system.map("r", "E2")
    system.configure_bus("can")
    report = timing_report(system)
    assert report.analysable and report.schedulable
    assert "p.tick -> l.hop" in report.chain_latency
    full = report.chain_latency["l.hop -> l.out -> r.sink"]
    # The end of the chain dominates every upstream stage.
    assert full > report.chain_latency["p.tick -> l.hop"]
    assert full > report.frame_wcrt["l.out"]
    assert not any("excluded" in issue for issue in report.issues)


def test_report_frame_ids_match_deployed_bus():
    """The report's deterministic id allocation must mirror the RTE's."""
    system = build_system()
    report = timing_report(system)
    assert "sensor.out" in report.frame_wcrt
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(30))
    starts = runtime.trace.records("can.tx_start", "sensor.out")
    assert starts and starts[0].data["can_id"] == 0x100  # FIRST_CAN_ID
