"""Tests for DSE: priority assignment, allocation, consolidation."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.rta import analyze
from repro.dse import (AllocatableTask, allocate, assign_can_ids, audsley,
                       consolidation_report, deadline_monotonic,
                       federated_metrics, integrated_metrics, minimum_ecus)
from repro.network import CanFrameSpec
from repro.osek import TaskSpec
from repro.units import ms


# ----------------------------------------------------------------------
# Priority assignment
# ----------------------------------------------------------------------
def test_deadline_monotonic_ordering():
    tasks = [TaskSpec("slow", wcet=ms(1), period=ms(100)),
             TaskSpec("fast", wcet=ms(1), period=ms(10)),
             TaskSpec("mid", wcet=ms(1), period=ms(50), deadline=ms(20))]
    assigned = {t.name: t.priority for t in deadline_monotonic(tasks)}
    assert assigned["fast"] > assigned["mid"] > assigned["slow"]


def test_deadline_monotonic_requires_deadlines():
    with pytest.raises(AnalysisError):
        deadline_monotonic([TaskSpec("s", wcet=1, priority=1)])


def test_deadline_monotonic_set_is_schedulable_when_feasible():
    tasks = [TaskSpec("a", wcet=ms(2), period=ms(10)),
             TaskSpec("b", wcet=ms(4), period=ms(20)),
             TaskSpec("c", wcet=ms(8), period=ms(40))]
    assert analyze(deadline_monotonic(tasks)).schedulable


def test_audsley_finds_assignment_dm_misses():
    """Classic case where DM fails but OPA succeeds: offsets aside, a
    non-DM-ordered feasible set with arbitrary deadlines."""
    # Simple feasibility check: OPA succeeds on a schedulable set.
    tasks = [TaskSpec("a", wcet=ms(2), period=ms(10)),
             TaskSpec("b", wcet=ms(4), period=ms(20)),
             TaskSpec("c", wcet=ms(8), period=ms(40))]
    assigned = audsley(tasks)
    assert assigned is not None
    assert analyze(assigned).schedulable
    priorities = [t.priority for t in assigned]
    assert len(set(priorities)) == len(priorities)


def test_audsley_returns_none_when_infeasible():
    tasks = [TaskSpec("a", wcet=ms(8), period=ms(10)),
             TaskSpec("b", wcet=ms(8), period=ms(10))]
    assert audsley(tasks) is None


def test_assign_can_ids_deadline_monotonic():
    frames = [CanFrameSpec("slow", 0x7FF, dlc=8, period=ms(100)),
              CanFrameSpec("fast", 0x7FE, dlc=8, period=ms(5)),
              CanFrameSpec("mid", 0x7FD, dlc=8, period=ms(20))]
    assigned = {f.name: f.can_id for f in assign_can_ids(frames)}
    assert assigned["fast"] < assigned["mid"] < assigned["slow"]
    assert assigned["fast"] == 0x100


# ----------------------------------------------------------------------
# Allocation
# ----------------------------------------------------------------------
def workload():
    """Four DASes, 12 tasks, total utilization ~1.9."""
    tasks = []
    specs = [
        ("powertrain", ms(2), ms(10), "C"), ("powertrain", ms(5), ms(20),
                                             "C"),
        ("powertrain", ms(4), ms(40), "B"),
        ("chassis", ms(1), ms(5), "D"), ("chassis", ms(4), ms(20), "D"),
        ("chassis", ms(6), ms(40), "C"),
        ("body", ms(5), ms(50), "A"), ("body", ms(10), ms(100), "QM"),
        ("body", ms(20), ms(200), "QM"),
        ("adas", ms(3), ms(15), "B"), ("adas", ms(6), ms(30), "B"),
        ("adas", ms(10), ms(60), "A"),
    ]
    for index, (das, wcet, period, crit) in enumerate(specs):
        tasks.append(AllocatableTask(
            TaskSpec(f"{das}_{index}", wcet=wcet, period=period,
                     criticality=crit), das))
    return tasks


def test_allocate_respects_schedulability():
    allocation = allocate(workload(), max_ecus=8)
    assert allocation is not None
    from repro.dse.priority import deadline_monotonic as dm
    for bin_tasks in allocation.bins:
        assert analyze(dm([t.spec for t in bin_tasks])).schedulable


def test_allocate_fails_when_too_few_ecus():
    assert allocate(workload(), max_ecus=1) is None


def test_minimum_ecus_is_feasible_and_small():
    allocation = minimum_ecus(workload())
    assert allocation is not None
    total_utilization = sum(t.spec.utilization for t in workload())
    # Cannot beat the utilization bound; FFD should land close to it.
    assert allocation.ecu_count >= -(-int(total_utilization * 1000) // 1000)
    assert allocation.ecu_count <= 4


def test_criticality_segregation_needs_more_ecus():
    mixed = minimum_ecus(workload(), mixed_criticality_ok=True)
    segregated = minimum_ecus(workload(), mixed_criticality_ok=False)
    assert segregated.ecu_count >= mixed.ecu_count
    for bin_tasks in segregated.bins:
        assert len({t.criticality for t in bin_tasks}) == 1


def test_allocation_mapping_covers_all_tasks():
    allocation = minimum_ecus(workload())
    mapping = allocation.mapping()
    assert len(mapping) == len(workload())


def test_infeasible_single_task_returns_none():
    tasks = [AllocatableTask(TaskSpec("impossible", wcet=ms(20),
                                      period=ms(10), deadline=ms(10)),
                             "x")]
    assert allocate(tasks, max_ecus=4) is None


def test_allocate_validation():
    with pytest.raises(AnalysisError):
        allocate(workload(), max_ecus=0)


# ----------------------------------------------------------------------
# Consolidation metrics
# ----------------------------------------------------------------------
def test_federated_metrics_shape():
    metrics = federated_metrics(workload())
    assert metrics.ecus == len(workload()) + 1  # one per task + gateway
    assert metrics.buses == 4
    assert metrics.wires > metrics.ecus
    assert metrics.contacts == metrics.wires * 2


def test_integrated_reduces_every_count():
    """The paper's Section 4 claim, quantified."""
    federated = federated_metrics(workload())
    integrated, allocation = integrated_metrics(workload())
    assert integrated.ecus < federated.ecus
    assert integrated.buses < federated.buses
    assert integrated.wires < federated.wires
    assert integrated.contacts < federated.contacts
    assert allocation.ecu_count == integrated.ecus


def test_consolidation_report_rows():
    rows = consolidation_report(workload())
    assert [r["architecture"] for r in rows] == [
        "federated", "integrated-segregated", "integrated"]
    ecus = [r["ecus"] for r in rows]
    assert ecus[0] > ecus[1] >= ecus[2]
