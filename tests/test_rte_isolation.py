"""RTE deployments on isolation-aware schedulers.

The system model's per-ECU scheduler factory and partition/budget
overrides must carry through RTE generation — this is how the paper's
"multiple Tier-1 suppliers on one ECU" scenario is actually configured.
"""

import pytest

from repro.core import (Composition, SenderReceiverInterface, SwComponent,
                        SystemModel, TimingEvent, UINT16)
from repro.osek import (DeferrableServerScheduler, ServerSpec,
                        TdmaScheduler, Window)
from repro.sim import Simulator
from repro.units import ms, us

OUT_IF = SenderReceiverInterface("out_if", {"v": UINT16})


def supplier_component(name, period, wcet):
    comp = SwComponent(name)
    comp.provide("out", OUT_IF)

    def tick(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        ctx.write("out", "v", ctx.state["n"] % 65536)

    comp.runnable("tick", TimingEvent(period), tick, wcet=wcet)
    return comp


def build_two_supplier_system(scheduler_factory):
    comp = Composition("Suppliers")
    comp.add(supplier_component("SupplierA", ms(10), ms(2)).instantiate("a"))
    comp.add(supplier_component("SupplierB", ms(10), ms(2)).instantiate("b"))
    system = SystemModel("shared-ecu")
    system.add_ecu("ECU", scheduler_factory=scheduler_factory)
    system.set_root(comp)
    system.map_all("ECU")
    return system


def test_tdma_partitions_flow_through_deployment():
    def tdma():
        return TdmaScheduler([Window(0, ms(3), "PA"),
                              Window(ms(3), ms(3), "PB")],
                             major_frame=ms(10))

    system = build_two_supplier_system(tdma)
    system.ecus["ECU"].set_partition("a.tick", "PA")
    system.ecus["ECU"].set_partition("b.tick", "PB")
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(100))
    kernel = runtime.kernels["ECU"]
    assert kernel.tasks["a.tick"].spec.partition == "PA"
    # B only runs in its window starting at 3 ms of each frame.
    b_starts = kernel.trace.times("task.start", "b.tick")
    assert b_starts and all(t % ms(10) == ms(3) for t in b_starts)
    assert runtime.deadline_misses() == 0


def test_tdma_deployment_is_composable():
    """Removing supplier B must not change A's deployed timing."""

    def tdma():
        return TdmaScheduler([Window(0, ms(3), "PA"),
                              Window(ms(3), ms(3), "PB")],
                             major_frame=ms(10))

    def run(with_b):
        comp = Composition("Suppliers")
        comp.add(supplier_component("SupplierA", ms(10),
                                    ms(2)).instantiate("a"))
        if with_b:
            comp.add(supplier_component("SupplierB", ms(10),
                                        ms(2)).instantiate("b"))
        system = SystemModel("shared-ecu")
        ecu = system.add_ecu("ECU", scheduler_factory=tdma)
        ecu.set_partition("a.tick", "PA")
        if with_b:
            ecu.set_partition("b.tick", "PB")
        system.set_root(comp)
        system.map_all("ECU")
        sim = Simulator()
        runtime = system.build(sim)
        sim.run_until(ms(100))
        return runtime.response_times("a.tick")

    assert run(True) == run(False)


def test_server_deployment_bounds_supplier_interference():
    def servers():
        return DeferrableServerScheduler([
            ServerSpec("PA", budget=ms(3), period=ms(10), priority=10),
            ServerSpec("PB", budget=ms(3), period=ms(10), priority=20),
        ])

    system = build_two_supplier_system(servers)
    ecu = system.ecus["ECU"]
    ecu.set_partition("a.tick", "PA")
    ecu.set_partition("b.tick", "PB")
    # Supplier B misbehaves: double its declared demand, but a budget
    # protects the platform.
    ecu.set_budget("b.tick", ms(3))
    sim = Simulator()
    runtime = system.build(sim)
    # Make B actually overrun its WCET.
    runtime.kernels["ECU"].tasks["b.tick"].execution_time = lambda: ms(6)
    sim.run_until(ms(100))
    kernel = runtime.kernels["ECU"]
    # B's jobs get killed by timing protection...
    assert len(kernel.trace.records("task.budget_overrun", "b.tick")) >= 5
    # ...and A stays perfectly periodic and deadline-clean.
    assert kernel.deadline_misses("a.tick") == 0
    assert max(runtime.response_times("a.tick")) <= ms(6)


def test_budget_override_flows_to_taskspec():
    system = build_two_supplier_system(None)  # default FP
    system.ecus["ECU"].set_budget("a.tick", ms(4))
    sim = Simulator()
    runtime = system.build(sim)
    assert runtime.kernels["ECU"].tasks["a.tick"].spec.budget == ms(4)
