"""Fuzz-campaign engine tests: determinism, jobs parity, resume,
signatures, corpus persistence.

The fuzzer's one non-negotiable property is that a campaign is a pure
function of ``(seed, budget, size, seed_batch)`` — the corpus digest
must not depend on ``--jobs``, on checkpoint interruption, or on how
many times the run was resumed.  Budgets here are small (tens of
executions) to keep the suite fast; the CI ``fuzz-smoke`` job runs the
larger acceptance campaign.
"""

import json
import os

import pytest

from repro import obs
from repro.errors import ExecutionInterrupted
from repro.verify.fuzz import (CorpusEntry, Finding, FuzzReport,
                               format_fuzz_report, fuzz, signature_tokens,
                               write_corpus)
from repro.verify.generator import generate
from repro.verify.oracle import verify_system
from repro.verify.serialize import system_from_dict
from repro.verify.shrink import ShrinkResult, failure_keys, shrink

BUDGET = 24  # 16 seed systems + one mutation round


@pytest.fixture(scope="module")
def baseline():
    return fuzz(seed=7, budget=BUDGET, jobs=1)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_repeat_run_is_byte_identical(baseline):
    again = fuzz(seed=7, budget=BUDGET, jobs=1)
    assert again.digest() == baseline.digest()
    assert format_fuzz_report(again) == format_fuzz_report(baseline)


def test_jobs_parity(baseline):
    parallel = fuzz(seed=7, budget=BUDGET, jobs=3)
    assert parallel.digest() == baseline.digest()


def test_different_seed_different_digest(baseline):
    other = fuzz(seed=8, budget=BUDGET, jobs=1)
    assert other.digest() != baseline.digest()


def test_budget_prefix_property(baseline):
    """A shorter campaign is a strict prefix of a longer one: same
    coverage curve, same corpus admissions, for the shared rounds."""
    longer = fuzz(seed=7, budget=BUDGET + 16, jobs=1)
    n = len(baseline.coverage_curve)
    assert longer.coverage_curve[:n] == baseline.coverage_curve
    shared = len(baseline.corpus)
    assert [e.lineage for e in longer.corpus[:shared]] \
        == [e.lineage for e in baseline.corpus]


def test_campaign_makes_progress(baseline):
    assert baseline.executions == BUDGET
    assert baseline.rounds >= 2
    assert len(baseline.corpus) >= 1
    assert len(baseline.coverage) > 10
    # the seed round always contributes coverage
    assert baseline.coverage_curve[0][1] > 0


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
def test_interrupt_and_resume_matches_uninterrupted(baseline, tmp_path):
    checkpoint = str(tmp_path / "fuzz.journal")
    with pytest.raises(ExecutionInterrupted):
        fuzz(seed=7, budget=BUDGET, jobs=1, checkpoint=checkpoint,
             interrupt_after=4)
    # the first round's journal exists and holds the partial progress
    assert os.path.exists(checkpoint + ".round0000")
    resumed = fuzz(seed=7, budget=BUDGET, jobs=1, checkpoint=checkpoint,
                   resume=True)
    assert resumed.digest() == baseline.digest()


def test_full_checkpoint_then_resume_recovers_everything(baseline,
                                                         tmp_path):
    checkpoint = str(tmp_path / "fuzz.journal")
    first = fuzz(seed=7, budget=BUDGET, jobs=1, checkpoint=checkpoint)
    assert first.digest() == baseline.digest()
    # resume with every round journaled: nothing re-runs, same digest
    resumed = fuzz(seed=7, budget=BUDGET, jobs=1, checkpoint=checkpoint,
                   resume=True)
    assert resumed.digest() == baseline.digest()


# ----------------------------------------------------------------------
# Signature
# ----------------------------------------------------------------------
def test_signature_tokens_cover_all_layers():
    system = generate(3, "small")
    with obs.capture() as telemetry:
        verdict = verify_system(system)
        counters = telemetry.snapshot()["metrics"]["counters"]
    tokens = signature_tokens(verdict, counters)
    assert tokens == sorted(tokens)
    prefixes = {t.split(":", 1)[0] for t in tokens}
    assert "tight" in prefixes
    assert "ctr" in prefixes
    layers = {t.split(":")[1] for t in tokens if t.startswith("tight:")}
    assert "rta" in layers
    assert "tdma" in layers


def test_signature_is_deterministic():
    system = generate(4, "small")

    def run():
        with obs.capture() as telemetry:
            verdict = verify_system(system)
            counters = telemetry.snapshot()["metrics"]["counters"]
        return signature_tokens(verdict, counters)

    assert run() == run()


def test_signature_reacts_to_tightness_change():
    """Inflating a TDMA task's demand moves its tightness bucket — the
    exact signal that keeps pressure-increasing mutants alive."""
    from dataclasses import replace
    from repro.units import ms
    from repro.verify.mutate import _retask

    system = generate(3, "small")

    def tokens_of(sys_):
        with obs.capture() as telemetry:
            verdict = verify_system(sys_)
            counters = telemetry.snapshot()["metrics"]["counters"]
        return set(signature_tokens(verdict, counters))

    base = tokens_of(system)
    hp = system.tdma.hp_task("P0")
    hot = generate(3, "small")
    hot.tdma = replace(hot.tdma, tasks=tuple(
        _retask(t, wcet=ms(4), period=ms(20)) if t.name == hp.name else t
        for t in hot.tdma.tasks))
    assert tokens_of(hot) - base  # new tightness bucket reached


# ----------------------------------------------------------------------
# Findings and corpus persistence
# ----------------------------------------------------------------------
def _tdma_finding():
    """A realistic complete finding: the historic TDMA defect, shrunk
    under the pre-fix optimistic bound (see
    :func:`tests.test_verify_shrink.legacy_tdma_bound` — the shipped
    analysis no longer exhibits it)."""
    from tests.test_verify_shrink import (legacy_tdma_bound,
                                          overloaded_tdma_system)

    with legacy_tdma_bound():
        system, key = overloaded_tdma_system()
        result = shrink(system, key)
    return Finding(key, 17, ("seed:3", "m17:tdma-inflate"), 48, result)


def test_write_corpus_roundtrip(tmp_path):
    finding = _tdma_finding()
    report = FuzzReport(7, 100, "small", findings=[finding])
    paths = write_corpus(report, str(tmp_path))
    assert len(paths) == 1
    with open(paths[0], encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["failure"]["kind"] == "soundness"
    assert payload["failure"]["detail"] == "tdma"
    assert payload["shrink"]["complete"] is True
    assert payload["shrink"]["minimal_size"] \
        < payload["shrink"]["original_size"]
    # the persisted system still reproduces the failure at the
    # persisted horizon (under the legacy bound the finding came from)
    from tests.test_verify_shrink import legacy_tdma_bound

    system = system_from_dict(payload["system"])
    key = (payload["failure"]["kind"], payload["failure"]["detail"],
           payload["failure"]["subject"])
    with legacy_tdma_bound():
        assert key in failure_keys(
            verify_system(system, payload["horizon"]))


def test_write_corpus_is_deterministic(tmp_path):
    finding = _tdma_finding()
    report = FuzzReport(7, 100, "small", findings=[finding])
    first = write_corpus(report, str(tmp_path / "a"))
    second = write_corpus(report, str(tmp_path / "b"))
    assert [os.path.basename(p) for p in first] \
        == [os.path.basename(p) for p in second]
    assert open(first[0]).read() == open(second[0]).read()


def test_incomplete_findings_are_not_persisted(tmp_path):
    finding = _tdma_finding()
    finding.shrink = ShrinkResult(
        finding.shrink.system, finding.shrink.key, finding.shrink.horizon,
        probes=3, accepted=1, complete=False)
    report = FuzzReport(7, 100, "small", findings=[finding])
    assert write_corpus(report, str(tmp_path)) == []


def test_unshrunk_property():
    complete = _tdma_finding()
    report = FuzzReport(7, 100, "small", findings=[complete])
    assert report.unshrunk == []
    truncated = _tdma_finding()
    truncated.shrink = ShrinkResult(
        truncated.shrink.system, truncated.shrink.key,
        truncated.shrink.horizon, probes=1, accepted=0, complete=False)
    report.findings.append(truncated)
    assert report.unshrunk == [truncated]


def test_until_dry_is_capped_by_budget(baseline):
    """With an unreachable dryness target the budget still terminates
    the campaign, and the digest matches the plain run (dry-run state
    is bookkeeping, never coverage)."""
    report = fuzz(seed=7, budget=BUDGET, jobs=1, until_dry=99)
    assert not report.terminated_dry
    assert report.executions == BUDGET
    assert report.digest() == baseline.digest()
    assert report.mutator_counts  # at least one mutation round ran
    assert sum(report.mutator_counts.values()) == BUDGET - 16


def test_until_dry_terminates_when_rounds_stop_producing():
    """A generous budget with a dryness target of 1 stops at the first
    round that admits nothing new, well before the budget."""
    report = fuzz(seed=7, budget=400, jobs=1, until_dry=1)
    assert report.terminated_dry
    assert report.dry_rounds >= 1
    assert report.executions < 400
    assert "terminated dry" in format_fuzz_report(report)


def test_dry_state_is_not_part_of_the_digest():
    plain = FuzzReport(7, 100, "small")
    dry = FuzzReport(7, 100, "small", dry_rounds=3, terminated_dry=True,
                     mutator_counts={"util-up": 4})
    assert plain.digest() == dry.digest()


def test_fuzz_metrics_emitted():
    obs.reset()
    obs.enable()
    try:
        fuzz(seed=7, budget=18, jobs=1)
        counters = obs.registry().snapshot()["counters"]
        gauges = obs.registry().snapshot()["gauges"]
    finally:
        obs.disable()
        obs.reset()
    assert counters.get("fuzz.execs") == 18
    assert gauges["fuzz.corpus_size"]["value"] >= 1
    assert gauges["fuzz.coverage_tokens"]["value"] > 10
