"""Shrinker guarantee tests.

Three promises back the regression corpus (see
:mod:`repro.verify.shrink`): the minimized system fails the *same*
check as the input, it is never larger, and shrinking is idempotent —
re-shrinking a minimal system returns it unchanged.

The fixture failure is the *historic* TDMA soundness defect (the
single-demand supply bound under partition overload with queued
activations).  The analysis has since been fixed with a
multi-activation busy window, so the defect no longer reproduces
against the shipped bound — :func:`legacy_tdma_bound` re-installs the
pre-fix optimistic bound for the duration of these tests, turning the
fixed defect into a controlled, realistic failure source for the
shrinking machinery.
"""

import contextlib
import json
from dataclasses import replace

import pytest

from repro.errors import AnalysisError
from repro.units import ms
from repro.verify.generator import generate
from repro.verify.mutate import _retask, validate_system
from repro.verify.oracle import default_horizon, verify_system
from repro.verify.serialize import system_to_dict
from repro.verify.shrink import (failure_keys, shrink, system_size,
                                 _candidates)


@contextlib.contextmanager
def legacy_tdma_bound():
    """Re-install the pre-fix single-demand TDMA supply bound.

    The historic soundness defect the ``soundness-tdma-*`` corpus
    seeds pin is only reproducible under it; with the busy-window fix
    in place it is the controlled failure source for the shrinker and
    corpus-persistence tests."""
    from repro.analysis import tdma_bound as module

    real = module.tdma_response_bound

    def optimistic(scheduler, partition, demand, period=None,
                   max_activations=1):
        return real(scheduler, partition, demand)

    module.tdma_response_bound = optimistic
    try:
        yield
    finally:
        module.tdma_response_bound = real


@pytest.fixture(scope="module", autouse=True)
def _legacy_bound():
    with legacy_tdma_bound():
        yield


def overloaded_tdma_system():
    """A full generated system whose TDMA partition P0 is overloaded:
    the highest-priority task demands 11 ms per 20 ms period against
    5 ms of window supply per 10 ms major frame, with enough queued
    activations for the backlog to accumulate across major frames."""
    system = generate(3, "small")
    hp = system.tdma.hp_task("P0")
    tasks = tuple(
        _retask(t, wcet=ms(11), period=ms(20), max_activations=4)
        if t.name == hp.name else t
        for t in system.tdma.tasks)
    system.tdma = replace(system.tdma, tasks=tasks)
    assert validate_system(system) == []
    return system, ("soundness", "tdma", hp.name)


@pytest.fixture(scope="module")
def shrunk():
    system, key = overloaded_tdma_system()
    assert key in failure_keys(verify_system(system))
    return system, key, shrink(system, key)


def test_shrunk_system_fails_the_same_check(shrunk):
    system, key, result = shrunk
    assert result.key == key
    verdict = verify_system(result.system, result.horizon)
    assert key in failure_keys(verdict)


def test_shrunk_system_is_never_larger(shrunk):
    system, _key, result = shrunk
    assert system_size(result.system) <= system_size(system)
    # and for this defect the reduction is drastic:
    assert system_size(result.system) < system_size(system) // 4


def test_shrinking_is_idempotent(shrunk):
    _system, key, result = shrunk
    again = shrink(result.system, key, horizon=result.horizon)
    assert again.accepted == 0
    assert (json.dumps(system_to_dict(again.system), sort_keys=True)
            == json.dumps(system_to_dict(result.system), sort_keys=True))


def test_shrink_result_is_complete_and_minimal(shrunk):
    _system, _key, result = shrunk
    assert result.complete
    assert result.minimal
    assert result.accepted > 0
    assert result.probes >= result.accepted


def test_shrunk_tdma_counterexample_shape(shrunk):
    """The minimal TDMA-overload counterexample keeps exactly what the
    defect needs: the overloaded task, and a second partition (dropping
    it would widen P0's window and dissolve the overload)."""
    _system, _key, result = shrunk
    minimal = result.system
    assert minimal.chain is None
    assert minimal.can is None
    assert minimal.flexray is None
    assert minimal.tasksets == {}
    assert minimal.tdma is not None
    assert len(minimal.tdma.partitions) == 2
    assert len(minimal.tdma.tasks) == 2


def test_shrink_rejects_non_failing_input():
    system = generate(5, "small")
    assert failure_keys(verify_system(system)) == frozenset()
    with pytest.raises(AnalysisError):
        shrink(system, ("soundness", "tdma", "nope"))


def test_shrink_probe_budget_marks_incomplete():
    system, key = overloaded_tdma_system()
    result = shrink(system, key, max_probes=3)
    assert not result.complete
    assert not result.minimal
    assert result.probes <= 3
    # even the truncated result still reproduces the failure
    assert key in failure_keys(verify_system(result.system,
                                             result.horizon))


def test_candidates_are_strictly_smaller_and_well_formed():
    """Every reduction candidate drops exactly one thing (strictly
    smaller) and either stays well-formed or is rejected by the
    validator before any verification is spent on it."""
    system = generate(2, "small")
    count = 0
    for candidate in _candidates(system):
        count += 1
        assert system_size(candidate) < system_size(system)
    assert count > 10  # a full system offers many reductions


def test_frozen_horizon_is_persisted(shrunk):
    """The shrink horizon equals the *original* system's horizon, not
    the minimal system's — reproducing the failure from a corpus file
    must not depend on re-deriving a (smaller) horizon."""
    system, _key, result = shrunk
    assert result.horizon == default_horizon(system)
    assert result.horizon != default_horizon(result.system)
