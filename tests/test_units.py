"""Tests for time units and the error hierarchy."""

import pytest
from hypothesis import given, strategies as st

from repro import errors
from repro.units import (MS, NS, S, US, bit_time, fmt_time, ms, ns, seconds,
                         to_ms, to_s, to_us, us)


def test_unit_constants_ratios():
    assert US == 1000 * NS
    assert MS == 1000 * US
    assert S == 1000 * MS


def test_constructors_round_to_int():
    assert us(1.5) == 1500
    assert ms(0.25) == 250_000
    assert seconds(2) == 2_000_000_000
    assert ns(7.4) == 7
    assert isinstance(ms(1.3), int)


def test_converters_roundtrip():
    assert to_us(us(123)) == 123.0
    assert to_ms(ms(5)) == 5.0
    assert to_s(seconds(3)) == 3.0


def test_fmt_time_picks_unit():
    assert fmt_time(0) == "0"
    assert fmt_time(250) == "250ns"
    assert fmt_time(us(3)) == "3.000us"
    assert fmt_time(ms(1.5)) == "1.500ms"
    assert fmt_time(seconds(2)) == "2.000s"
    assert fmt_time(-ms(1)) == "-1.000ms"


def test_bit_time_common_rates():
    assert bit_time(500_000) == 2000   # CAN 500k
    assert bit_time(10_000_000) == 100  # FlexRay 10M
    assert bit_time(1_000_000_000) == 1


def test_bit_time_rejects_nonpositive():
    with pytest.raises(ValueError):
        bit_time(0)
    with pytest.raises(ValueError):
        bit_time(-5)


@given(st.floats(min_value=0, max_value=1e6, allow_nan=False))
def test_ms_us_consistency(value):
    assert ms(value) == pytest.approx(us(value * 1000), abs=1)


def test_error_hierarchy_all_derive_from_repro_error():
    for name in ("ConfigurationError", "SimulationError", "SchedulingError",
                 "AnalysisError", "ContractError", "CompositionError",
                 "FaultContainmentViolation", "ProtocolError"):
        exc_type = getattr(errors, name)
        assert issubclass(exc_type, errors.ReproError)
        assert issubclass(exc_type, Exception)


def test_catching_base_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.ProtocolError("x")
