"""Tests for holistic distributed schedulability analysis, including a
cross-check against a fully simulated RTE deployment."""

import pytest

from repro.errors import AnalysisError
from repro.analysis import HolisticModel
from repro.network import CanFrameSpec
from repro.osek import TaskSpec
from repro.units import ms, us

BITRATE = 500_000
FRAME_C = 135 * 2000  # 8-byte worst-case frame at 500k: 270 us


def simple_model():
    """sensor(E1) -> frame -> controller(E2), plus local interference."""
    model = HolisticModel(BITRATE)
    model.add_task("E1", TaskSpec("sensor", wcet=us(500), period=ms(10),
                                  priority=1))
    model.add_task("E1", TaskSpec("hp1", wcet=ms(1), period=ms(5),
                                  priority=2))
    model.add_frame(CanFrameSpec("frame", 0x200, dlc=8))
    model.add_frame(CanFrameSpec("noise", 0x100, dlc=8, period=ms(2)))
    model.add_task("E2", TaskSpec("controller", wcet=us(800), priority=1,
                                  deadline=ms(10)))
    model.add_task("E2", TaskSpec("hp2", wcet=ms(1), period=ms(4),
                                  priority=2))
    model.link("sensor", "frame")
    model.link("frame", "controller")
    model.transaction("chain", ["sensor", "frame", "controller"])
    return model


def test_holistic_converges_and_orders_chain():
    result = simple_model().solve()
    assert result.converged and result.schedulable
    # Each stage's response (measured from the chain release) grows.
    assert result.task_wcrt["sensor"] < result.frame_wcrt["frame"] \
        < result.task_wcrt["controller"]
    assert result.transaction_latency["chain"] == \
        result.task_wcrt["controller"]


def test_holistic_hand_computation():
    result = simple_model().solve()
    # sensor: 0.5 + 1 (hp1) = 1.5 ms.
    assert result.task_wcrt["sensor"] == ms(1.5)
    # frame: J = 1.5 ms; blocking none (lowest id is noise=higher prio);
    # queueing w: B=0? frame id 0x200 has lower priority than noise
    # (0x100): w = B + interference(noise). B = 0 (no lower frames).
    # w fixpoint: one noise frame: w = 270us -> interference
    # ceil((270+tbit)/2ms)=1 -> w=270us. R = J + w + C = 1.5ms + 540us.
    assert result.frame_wcrt["frame"] == ms(1.5) + 2 * FRAME_C
    # controller: J = frame WCRT; R = J + w; w = 0.8 + 1 (hp2) = 1.8ms.
    assert result.task_wcrt["controller"] == \
        result.frame_wcrt["frame"] + ms(1.8)


def test_holistic_jitter_increases_downstream_interference():
    """The fixpoint matters: interference computed with zero jitter
    would underestimate."""
    model = simple_model()
    result = model.solve()
    # With jitter ignored, controller would be 1.8 ms + frame WCRT where
    # frame WCRT ignores the sensor's 1.5 ms. Confirm the solved numbers
    # exceed that naive composition.
    naive = ms(1.5) + (2 * FRAME_C) + ms(1.8)
    assert result.transaction_latency["chain"] == naive
    # (In this small example one iteration reaches the fixpoint; the
    # value still demonstrates correct composition.)
    assert result.iterations >= 2  # fixpoint verification pass


def test_link_validation():
    model = HolisticModel(BITRATE)
    model.add_task("E1", TaskSpec("t", wcet=1000, period=ms(10)))
    with pytest.raises(AnalysisError):
        model.link("t", "ghost")
    model.add_frame(CanFrameSpec("f", 0x1))
    model.link("t", "f")
    with pytest.raises(AnalysisError):
        model.link("t", "f")  # duplicate producer
    with pytest.raises(AnalysisError):
        model.transaction("bad", ["f", "t"])  # not linked that way
    with pytest.raises(AnalysisError):
        model.add_task("E1", TaskSpec("t", wcet=1, period=ms(1)))


def test_chain_head_needs_period():
    model = HolisticModel(BITRATE)
    model.add_task("E1", TaskSpec("sporadic_head", wcet=1000, priority=1,
                                  deadline=ms(5)))
    with pytest.raises(AnalysisError):
        model.solve()


def test_unschedulable_reported():
    model = HolisticModel(BITRATE)
    model.add_task("E1", TaskSpec("a", wcet=ms(6), period=ms(10),
                                  priority=2))
    model.add_task("E1", TaskSpec("b", wcet=ms(6), period=ms(10),
                                  priority=1))
    result = model.solve()
    assert not result.schedulable
    assert any("task b" in failure for failure in result.failures)


def test_deadline_violation_detected_at_fixpoint():
    model = HolisticModel(BITRATE)
    model.add_task("E1", TaskSpec("head", wcet=ms(4), period=ms(10),
                                  priority=1))
    model.add_task("E2", TaskSpec("tail", wcet=ms(2), priority=1,
                                  deadline=ms(5)))
    model.add_frame(CanFrameSpec("f", 0x100, dlc=8))
    model.link("head", "f")
    model.link("f", "tail")
    result = model.solve()
    assert result.converged
    assert not result.schedulable  # 4ms + 0.27 + 2 > 5ms deadline
    assert any("deadline" in failure for failure in result.failures)


def test_holistic_bound_holds_against_simulated_deployment():
    """End-to-end cross-check: the holistic transaction bound must cover
    the latency observed in a full RTE simulation of the same system."""
    from repro.analysis import ChainProbe
    from repro.core import (Composition, DataReceivedEvent,
                            SenderReceiverInterface, SwComponent,
                            SystemModel, TimingEvent, UINT16)
    from repro.sim import Simulator

    data_if = SenderReceiverInterface("d", {"v": UINT16})
    probe = ChainProbe("sim")

    sensor = SwComponent("Sensor")
    sensor.provide("out", data_if)

    def sample(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        seq = ctx.state["n"] % 65536
        probe.stamp(seq, ctx.now)
        ctx.write("out", "v", seq)

    sensor.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(500))

    hog1 = SwComponent("Hog1")
    hog1.provide("out", data_if)
    hog1.runnable("burn", TimingEvent(ms(5)), lambda ctx: None,
                  wcet=ms(1))

    controller = SwComponent("Controller")
    controller.require("in", data_if)
    controller.runnable(
        "consume", DataReceivedEvent("in", "v"),
        lambda ctx: probe.observe(ctx.read("in", "v"), ctx.now),
        wcet=us(800))

    app = Composition("App")
    app.add(sensor.instantiate("sensor"))
    app.add(hog1.instantiate("hog"))
    app.add(controller.instantiate("ctrl"))
    app.connect("sensor", "out", "ctrl", "in")

    system = SystemModel("holistic-check")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("sensor", "E1")
    system.map("hog", "E1")
    system.map("ctrl", "E2")
    system.configure_bus("can", bitrate_bps=BITRATE)
    system.set_can_id("sensor.out", 0x200)
    # Make RM give the hog higher priority (5 ms < 10 ms) — matching
    # the holistic model's priorities.
    sim = Simulator()
    system.build(sim)
    sim.run_until(ms(500))

    model = HolisticModel(BITRATE)
    model.add_task("E1", TaskSpec("sensor", wcet=us(500), period=ms(10),
                                  priority=1))
    model.add_task("E1", TaskSpec("hog", wcet=ms(1), period=ms(5),
                                  priority=2))
    # The RTE frame carries 16 bits + update bit -> dlc 3.
    model.add_frame(CanFrameSpec("frame", 0x200, dlc=3))
    model.add_task("E2", TaskSpec("consume", wcet=us(800), priority=1))
    model.link("sensor", "frame")
    model.link("frame", "consume")
    model.transaction("chain", ["sensor", "frame", "consume"])
    bound = model.solve().transaction_latency["chain"]

    assert probe.latencies, "simulation must produce measurements"
    assert probe.worst <= bound
    assert bound <= 3 * probe.worst  # not wildly pessimistic
