"""Bucket-queue vs heap-queue equivalence for the simulation kernel.

:class:`~repro.sim.kernel.BucketEventQueue` (the fast default) and
:class:`~repro.sim.kernel.HeapEventQueue` (the reference) must be
observationally indistinguishable: identical event execution order on
ties, priorities, cancellations and same-instant rescheduling, and
byte-identical trace digests for full generated-system simulations.
Any divergence here means the fast path changed simulation semantics,
which would silently re-date every pinned digest in the repo.
"""

import random

import pytest

import repro.sim.kernel as kernel
from repro.sim.kernel import (BucketEventQueue, HeapEventQueue,
                              Simulator)
from repro.sim.trace import Trace
from repro.verify.generator import generate
from repro.verify.oracle import build_system, verify_system

QUEUES = (HeapEventQueue, BucketEventQueue)


def run_workload(queue_cls, script):
    """Run a schedule script and return the execution log.

    ``script`` is a list of directives applied before the run:
    ``("at", time, priority, tag)`` schedules a logging event,
    ``("cancel", tag)`` cancels a previously scheduled one,
    ``("respawn", time, priority, tag, delay, count)`` schedules an
    event that re-schedules ``count`` followers ``delay`` ns apart
    (``delay=0`` lands them in the *current* batch).
    """
    sim = Simulator(queue=queue_cls())
    log = []
    handles = {}

    def make_logger(tag):
        return lambda: log.append((sim.now, tag))

    def make_respawner(tag, delay, count, priority):
        def fire():
            log.append((sim.now, tag))
            for child in range(count):
                sim.schedule(delay, make_logger(f"{tag}.c{child}"),
                             priority=priority)
        return fire

    for directive in script:
        if directive[0] == "at":
            _, time, priority, tag = directive
            handles[tag] = sim.schedule_at(time, make_logger(tag),
                                           priority=priority)
        elif directive[0] == "cancel":
            handles[directive[1]].cancel()
        elif directive[0] == "respawn":
            _, time, priority, tag, delay, count = directive
            sim.schedule_at(time, make_respawner(tag, delay, count,
                                                 priority),
                            priority=priority)
    sim.run_until(10_000)
    return log, sim.executed, sim.now


def random_script(rng):
    """A random mix of bursts, priorities, cancels and respawns."""
    script = []
    tags = []
    # Heavy same-timestamp bursts: few distinct times, many events.
    times = [rng.randrange(0, 5_000) for _ in range(rng.randint(2, 6))]
    for index in range(rng.randint(10, 60)):
        tag = f"e{index}"
        script.append(("at", rng.choice(times),
                       rng.choice([0, 0, 0, 1, 5, -3]), tag))
        tags.append(tag)
    for _ in range(rng.randint(0, len(tags) // 3)):
        script.append(("cancel", rng.choice(tags)))
    for index in range(rng.randint(0, 4)):
        script.append(("respawn", rng.choice(times),
                       rng.choice([0, 2]), f"r{index}",
                       rng.choice([0, 0, 7]), rng.randint(1, 3)))
    return script


@pytest.mark.parametrize("seed", range(50))
def test_random_workloads_execute_identically(seed):
    script = random_script(random.Random(seed))
    heap_run = run_workload(HeapEventQueue, script)
    bucket_run = run_workload(BucketEventQueue, script)
    assert bucket_run == heap_run


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_fifo_within_same_time_and_priority(queue_cls):
    """Equal (time, priority) events fire in insertion order — the
    regression that a bucket's FIFO mode must honour seq order."""
    sim = Simulator(queue=queue_cls())
    log = []
    for index in range(20):
        sim.schedule_at(100, lambda i=index: log.append(i))
    sim.run_until(200)
    assert log == list(range(20))


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_priority_orders_within_a_batch(queue_cls):
    sim = Simulator(queue=queue_cls())
    log = []
    sim.schedule_at(100, lambda: log.append("late"), priority=5)
    sim.schedule_at(100, lambda: log.append("early"), priority=-5)
    sim.schedule_at(100, lambda: log.append("mid-a"), priority=0)
    sim.schedule_at(100, lambda: log.append("mid-b"), priority=0)
    sim.run_until(200)
    assert log == ["early", "mid-a", "mid-b", "late"]


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_mixed_priority_push_after_partial_drain(queue_cls):
    """A same-instant event scheduled *during* the batch with a better
    priority than the remaining tail must jump the queue — this is the
    bucket's FIFO-to-heap conversion path."""
    sim = Simulator(queue=queue_cls())
    log = []

    def first():
        log.append("first")
        sim.schedule(0, lambda: log.append("urgent"), priority=-10)

    sim.schedule_at(100, first)
    sim.schedule_at(100, lambda: log.append("second"))
    sim.schedule_at(100, lambda: log.append("third"))
    sim.run_until(200)
    assert log == ["first", "urgent", "second", "third"]


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_cancelled_events_never_fire_and_pending_agrees(queue_cls):
    sim = Simulator(queue=queue_cls())
    log = []
    keep = sim.schedule_at(50, lambda: log.append("keep"))
    drop = sim.schedule_at(50, lambda: log.append("drop"))
    sim.schedule_at(60, lambda: log.append("later"))
    drop.cancel()
    assert sim.pending == 2
    sim.run_until(100)
    assert log == ["keep", "later"]
    assert keep.time == 50
    assert sim.executed == 2


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_reschedule_at_drained_timestamp(queue_cls):
    """Scheduling back into the current instant after its bucket
    drained must still fire within the same run (the stale-times
    normalization path of the bucket queue)."""
    sim = Simulator(queue=queue_cls())
    log = []

    def fire():
        log.append(("fire", sim.now))
        if len(log) < 4:
            sim.schedule(0, fire)

    sim.schedule_at(100, fire)
    sim.run_until(200)
    assert log == [("fire", 100)] * 4
    assert sim.now == 200


@pytest.mark.parametrize("queue_cls", QUEUES)
def test_stop_inside_a_batch_halts_dispatch(queue_cls):
    sim = Simulator(queue=queue_cls())
    log = []
    sim.schedule_at(100, lambda: (log.append("a"), sim.stop()))
    sim.schedule_at(100, lambda: log.append("b"))
    sim.run_until(200)
    assert log == ["a"]
    assert sim.now == 100            # stopped: now stays at the batch
    sim.run_until(200)
    assert log == ["a", "b"]


# ----------------------------------------------------------------------
# Full-system equivalence: the oracle's simulations are byte-identical
# ----------------------------------------------------------------------
def run_system(monkeypatch, queue_cls, seed):
    import itertools

    import repro.osek.task as osek_task

    monkeypatch.setattr(kernel, "DEFAULT_QUEUE_CLASS", queue_cls)
    # Job sequence numbers come from a process-global counter and land
    # in trace records; restart it so both queue runs see id 0 first.
    monkeypatch.setattr(osek_task, "_job_seq", itertools.count())
    system = generate(seed, "small")
    built = build_system(system)
    built.sim.run_until(built.horizon)
    verdict = verify_system(generate(seed, "small"))
    return built.trace.digest(), verdict.to_dict()


@pytest.mark.parametrize("seed", [0, 3, 11, 17])
def test_generated_system_traces_and_verdicts_match(monkeypatch, seed):
    heap = run_system(monkeypatch, HeapEventQueue, seed)
    bucket = run_system(monkeypatch, BucketEventQueue, seed)
    assert bucket[0] == heap[0]      # trace digest byte-identical
    assert bucket[1] == heap[1]      # full oracle verdict identical


def test_trace_digest_is_order_and_content_sensitive():
    a, b = Trace(), Trace()
    a.log(1, "task.activate", "T1", core=0)
    a.log(2, "task.complete", "T1")
    b.log(1, "task.activate", "T1", core=0)
    b.log(2, "task.complete", "T1")
    assert a.digest() == b.digest()
    b.log(3, "task.activate", "T2")
    assert a.digest() != b.digest()
    c, d = Trace(), Trace()
    c.log(1, "x", "s"), c.log(1, "y", "s")
    d.log(1, "y", "s"), d.log(1, "x", "s")
    assert c.digest() != d.digest()


def test_default_queue_is_the_bucket_queue():
    """The fast path is the default; this pin makes an accidental
    fallback to the reference queue a visible test failure."""
    assert kernel.DEFAULT_QUEUE_CLASS is BucketEventQueue
    assert isinstance(Simulator()._queue, BucketEventQueue)
