"""Tests for data types, interfaces, ports, components, compositions."""

import pytest

from repro.errors import CompositionError, ConfigurationError
from repro.core.component import SwComponent
from repro.core.composition import Composition, Endpoint
from repro.core.interface import (ClientServerInterface, Operation,
                                  SenderReceiverInterface)
from repro.core.runnable import (DataReceivedEvent, OperationInvokedEvent,
                                 TimingEvent)
from repro.core.types import BOOL, DataType, UINT8, UINT16
from repro.units import ms


def sr_iface(name="speed_if", width=16):
    return SenderReceiverInterface(name, {"value": DataType("t", width)})


def cs_iface(name="calib_if"):
    return ClientServerInterface(
        name, {"get": Operation("get", {"index": UINT8}, returns=UINT16)})


# ----------------------------------------------------------------------
# DataType
# ----------------------------------------------------------------------
def test_datatype_range_validation():
    t = DataType("t", 4)
    assert t.max_value == 15
    t.validate(15)
    with pytest.raises(ConfigurationError):
        t.validate(16)
    with pytest.raises(ConfigurationError):
        t.validate(-1)
    with pytest.raises(ConfigurationError):
        t.validate(True)  # bool is not an application int


def test_datatype_physical_conversion():
    rpm = DataType("rpm", 16, scale=0.25, offset=0.0, unit="rpm")
    assert rpm.to_physical(400) == 100.0
    assert rpm.from_physical(100.0) == 400


def test_datatype_width_bounds():
    with pytest.raises(ConfigurationError):
        DataType("t", 0)
    with pytest.raises(ConfigurationError):
        DataType("t", 65)


def test_datatype_compatibility_by_width():
    assert UINT8.compatible_with(DataType("other8", 8))
    assert not UINT8.compatible_with(UINT16)


# ----------------------------------------------------------------------
# Interfaces
# ----------------------------------------------------------------------
def test_sr_interface_structural_compatibility():
    a = SenderReceiverInterface("A", {"x": UINT8, "y": UINT16})
    b = SenderReceiverInterface("B", {"x": DataType("t", 8), "y": UINT16})
    c = SenderReceiverInterface("C", {"x": UINT8})
    assert a.compatible_with(b)
    assert not a.compatible_with(c)
    assert not a.compatible_with(cs_iface())


def test_cs_interface_compatibility():
    a = cs_iface("A")
    b = cs_iface("B")
    assert a.compatible_with(b)
    c = ClientServerInterface(
        "C", {"get": Operation("get", {"index": UINT16}, returns=UINT16)})
    assert not a.compatible_with(c)
    d = ClientServerInterface(
        "D", {"get": Operation("get", {"index": UINT8}, returns=None)})
    assert not a.compatible_with(d)


def test_interface_requires_content():
    with pytest.raises(ConfigurationError):
        SenderReceiverInterface("E", {})
    with pytest.raises(ConfigurationError):
        ClientServerInterface("E", {})
    with pytest.raises(ConfigurationError):
        ClientServerInterface("E", {"a": Operation("b")})


# ----------------------------------------------------------------------
# Components
# ----------------------------------------------------------------------
def test_component_port_and_runnable_registration():
    comp = SwComponent("Sensor")
    comp.provide("out", sr_iface())
    comp.runnable("sample", TimingEvent(ms(10)), lambda ctx: None)
    assert "out" in comp.ports
    with pytest.raises(ConfigurationError):
        comp.provide("out", sr_iface())
    with pytest.raises(ConfigurationError):
        comp.runnable("sample", TimingEvent(ms(10)), lambda ctx: None)


def test_data_received_trigger_validated_against_ports():
    comp = SwComponent("C")
    comp.require("in", sr_iface())
    comp.runnable("ok", DataReceivedEvent("in", "value"), lambda ctx: None)
    with pytest.raises(ConfigurationError):
        comp.runnable("bad_port", DataReceivedEvent("nope", "value"),
                      lambda ctx: None)
    with pytest.raises(ConfigurationError):
        comp.runnable("bad_elem", DataReceivedEvent("in", "nope"),
                      lambda ctx: None)


def test_operation_invoked_trigger_validated():
    comp = SwComponent("Server")
    comp.provide("srv", cs_iface())
    comp.runnable("handler", OperationInvokedEvent("srv", "get"),
                  lambda ctx, index: index)
    assert comp.server_runnable("srv", "get") is not None
    assert comp.server_runnable("srv", "nope") is None
    with pytest.raises(ConfigurationError):
        comp.runnable("bad", OperationInvokedEvent("srv", "nope"),
                      lambda ctx: None)


def test_instance_port_lookup():
    comp = SwComponent("C")
    comp.provide("out", sr_iface())
    inst = comp.instantiate("c1")
    assert inst.port("out").is_provided
    with pytest.raises(CompositionError):
        inst.port("missing")


# ----------------------------------------------------------------------
# Composition
# ----------------------------------------------------------------------
def build_sensor_controller():
    sensor = SwComponent("Sensor")
    sensor.provide("out", sr_iface())
    controller = SwComponent("Controller")
    controller.require("in", sr_iface())
    comp = Composition("Sys")
    comp.add(sensor.instantiate("s"))
    comp.add(controller.instantiate("c"))
    return comp


def test_connect_valid_sr():
    comp = build_sensor_controller()
    comp.connect("s", "out", "c", "in")
    assert len(comp.connectors) == 1


def test_connect_direction_enforced():
    comp = build_sensor_controller()
    with pytest.raises(CompositionError):
        comp.connect("c", "in", "s", "out")


def test_connect_incompatible_interfaces_rejected():
    sensor = SwComponent("Sensor")
    sensor.provide("out", sr_iface(width=16))
    controller = SwComponent("Controller")
    controller.require("in", sr_iface(width=8))
    comp = Composition("Sys")
    comp.add(sensor.instantiate("s"))
    comp.add(controller.instantiate("c"))
    with pytest.raises(CompositionError):
        comp.connect("s", "out", "c", "in")


def test_single_writer_rule():
    sensor = SwComponent("Sensor")
    sensor.provide("out", sr_iface())
    controller = SwComponent("Controller")
    controller.require("in", sr_iface())
    comp = Composition("Sys")
    comp.add(sensor.instantiate("s1"))
    comp.add(sensor.instantiate("s2"))
    comp.add(controller.instantiate("c"))
    comp.connect("s1", "out", "c", "in")
    with pytest.raises(CompositionError):
        comp.connect("s2", "out", "c", "in")


def test_fan_out_allowed():
    sensor = SwComponent("Sensor")
    sensor.provide("out", sr_iface())
    controller = SwComponent("Controller")
    controller.require("in", sr_iface())
    comp = Composition("Sys")
    comp.add(sensor.instantiate("s"))
    comp.add(controller.instantiate("c1"))
    comp.add(controller.instantiate("c2"))
    comp.connect("s", "out", "c1", "in")
    comp.connect("s", "out", "c2", "in")
    assert len(comp.connectors) == 2


def test_duplicate_instance_rejected():
    comp = build_sensor_controller()
    sensor = SwComponent("Sensor")
    sensor.provide("out", sr_iface())
    with pytest.raises(CompositionError):
        comp.add(sensor.instantiate("s"))


def test_unknown_instance_or_port():
    comp = build_sensor_controller()
    with pytest.raises(CompositionError):
        comp.connect("nope", "out", "c", "in")
    with pytest.raises(CompositionError):
        comp.connect("s", "nope", "c", "in")


def test_hierarchy_flatten_with_delegation():
    sensor = SwComponent("Sensor")
    sensor.provide("out", sr_iface())
    inner = Composition("SensorCluster")
    inner.add(sensor.instantiate("left"))
    inner.delegate("cluster_out", "left", "out")

    controller = SwComponent("Controller")
    controller.require("in", sr_iface())
    outer = Composition("Sys")
    outer.add(inner.instantiate("cluster"))
    outer.add(controller.instantiate("c"))
    outer.connect("cluster", "cluster_out", "c", "in")

    instances, connectors = outer.flatten()
    names = sorted(i.name for i in instances)
    assert names == ["c", "cluster.left"]
    assert len(connectors) == 1
    assert connectors[0].source == Endpoint("cluster.left", "out")
    assert connectors[0].target == Endpoint("c", "in")


def test_delegation_of_required_port():
    controller = SwComponent("Controller")
    controller.require("in", sr_iface())
    inner = Composition("Inner")
    inner.add(controller.instantiate("c"))
    inner.delegate("need", "c", "in")

    sensor = SwComponent("Sensor")
    sensor.provide("out", sr_iface())
    outer = Composition("Sys")
    outer.add(sensor.instantiate("s"))
    outer.add(inner.instantiate("sub"))
    outer.connect("s", "out", "sub", "need")
    __, connectors = outer.flatten()
    assert connectors[0].target == Endpoint("sub.c", "in")


def test_delegation_unknown_port_rejected():
    comp = build_sensor_controller()
    with pytest.raises(CompositionError):
        comp.delegate("x", "s", "missing")
