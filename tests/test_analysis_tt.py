"""Tests for FlexRay bounds, TDMA/server supply functions, and TT
schedule synthesis."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError, SchedulingError
from repro.analysis.flexray_rta import (dynamic_latency_bound,
                                        minislots_needed,
                                        static_latency_bound)
from repro.analysis.tdma_bound import (periodic_server_supply,
                                       response_bound,
                                       server_response_bound, tdma_supply,
                                       tdma_response_bound)
from repro.analysis.ttschedule import (TtEntry, TtPlacement, TtSchedule,
                                       build_schedule, conflict_free)
from repro.network.flexray import (DynamicFrameSpec, FlexRayConfig,
                                   StaticSlotAssignment)
from repro.osek import (EcuKernel, TaskSpec, TdmaScheduler, Window)
from repro.sim import Simulator
from repro.units import ms, us


# ----------------------------------------------------------------------
# FlexRay bounds
# ----------------------------------------------------------------------
def flexray_config():
    return FlexRayConfig(slot_length=us(100), n_static_slots=4,
                         minislot_length=us(10), n_minislots=20)


def test_static_bound_formula():
    config = flexray_config()
    assignment = StaticSlotAssignment(2, "N", "F")
    assert static_latency_bound(config, assignment) == \
        config.cycle_length + 2 * us(100)


def test_static_bound_scales_with_repetition():
    config = flexray_config()
    every_other = StaticSlotAssignment(1, "N", "F", base_cycle=0,
                                       repetition=2)
    assert static_latency_bound(config, every_other) == \
        2 * config.cycle_length + us(100)


def test_static_best_case_is_one_slot():
    from repro.analysis.flexray_rta import static_latency_best_case
    config = flexray_config()
    assignment = StaticSlotAssignment(2, "N", "F")
    best = static_latency_best_case(config, assignment)
    assert best == config.slot_length
    assert best < static_latency_bound(config, assignment)


def test_static_bound_slot_range_checked():
    with pytest.raises(AnalysisError):
        static_latency_bound(flexray_config(),
                             StaticSlotAssignment(9, "N", "F"))


def test_static_bound_holds_in_simulation():
    """Write at adversarial times; observed latency never exceeds the
    bound."""
    from repro.network import FlexRayBus
    config = flexray_config()
    sim = Simulator()
    bus = FlexRayBus(sim, config)
    tx = bus.attach("N")
    bus.attach("peer")
    assignment = StaticSlotAssignment(2, "N", "F")
    bus.assign_slot(assignment)
    bus.start()

    # Write just after the slot samples: worst phase.
    def write():
        tx.send_static(2, payload="x")
        sim.schedule(us(201), write)  # drifts over all phases

    write()
    sim.run_until(ms(20))
    bound = static_latency_bound(config, assignment)
    lats = bus.latencies("F")
    assert lats and max(lats) <= bound


def test_minislots_needed():
    config = flexray_config()
    # 8B -> (64+80)*100ns = 14.4us -> 2 minislots of 10us.
    assert minislots_needed(DynamicFrameSpec("D", 1, 8), config) == 2


def test_dynamic_bound_single_frame():
    config = flexray_config()
    frame = DynamicFrameSpec("D", 5, 8)
    bound = dynamic_latency_bound(frame, [frame], config)
    assert bound == config.cycle_length + \
        config.static_segment_length + 2 * us(10)


def test_dynamic_bound_with_competitors():
    config = flexray_config()
    target = DynamicFrameSpec("D", 10, 8)
    competitors = [DynamicFrameSpec(f"C{i}", i, 8) for i in range(1, 5)]
    bound = dynamic_latency_bound(target, competitors + [target], config)
    solo = dynamic_latency_bound(target, [target], config)
    assert bound > solo


def test_dynamic_bound_oversized_frame_rejected():
    config = FlexRayConfig(slot_length=us(100), n_static_slots=2,
                           minislot_length=us(10), n_minislots=2)
    big = DynamicFrameSpec("BIG", 1, 200)
    with pytest.raises(AnalysisError):
        dynamic_latency_bound(big, [big], config)


# ----------------------------------------------------------------------
# Supply bound functions
# ----------------------------------------------------------------------
def test_tdma_supply_within_and_across_windows():
    sched = TdmaScheduler([Window(0, ms(2), "A"), Window(ms(5), ms(3), "B")],
                          major_frame=ms(10))
    sbf_a = tdma_supply(sched, "A")
    assert sbf_a(0) == 0
    # Worst phase: interval starts right at A's window end.
    assert sbf_a(ms(8)) == 0
    assert sbf_a(ms(10)) == ms(2)
    assert sbf_a(ms(20)) == ms(4)


def test_tdma_response_bound_vs_simulation():
    sched = TdmaScheduler([Window(0, ms(2), "A"), Window(ms(5), ms(3), "B")],
                          major_frame=ms(10))
    demand = ms(3)
    bound = tdma_response_bound(sched, "A", demand)
    # Simulate: single task in A with wcet 3ms, released at the worst
    # phase (right after its window closes, t=2ms).
    sim = Simulator()
    kernel = EcuKernel(sim, TdmaScheduler(
        [Window(0, ms(2), "A"), Window(ms(5), ms(3), "B")],
        major_frame=ms(10)))
    task = kernel.add_task(TaskSpec("T", wcet=demand, priority=1,
                                    deadline=ms(100), partition="A"))
    sim.schedule(ms(2), lambda: kernel.activate(task))
    sim.run_until(ms(100))
    observed = kernel.response_times("T")
    assert observed and observed[0] <= bound
    # The bound is tight for this adversarial release.
    assert observed[0] == bound


def test_unknown_partition_rejected():
    sched = TdmaScheduler([Window(0, ms(2), "A")], major_frame=ms(10))
    with pytest.raises(AnalysisError):
        tdma_supply(sched, "NOPE")
    with pytest.raises(AnalysisError):
        tdma_response_bound(sched, "NOPE", ms(1))


def test_periodic_server_supply_blackout():
    sbf = periodic_server_supply(budget=ms(2), period=ms(10))
    assert sbf(2 * ms(8)) == 0  # blackout = 2*(P-Q) = 16 ms
    assert sbf(ms(16) + ms(1)) == ms(1)
    assert sbf(ms(16) + ms(10) + ms(2)) == ms(2) + ms(2)


def test_server_response_bound_vs_simulation():
    from repro.osek import DeferrableServerScheduler, ServerSpec
    budget, period, demand = ms(2), ms(10), ms(5)
    bound = server_response_bound(budget, period, demand)
    sim = Simulator()
    sched = DeferrableServerScheduler(
        [ServerSpec("P", budget=budget, period=period, priority=5)])
    kernel = EcuKernel(sim, sched)
    task = kernel.add_task(TaskSpec("T", wcet=demand, priority=1,
                                    deadline=ms(1000), partition="P"))
    # Adversarial release: drain the budget first with an earlier job.
    warm = kernel.add_task(TaskSpec("W", wcet=ms(2), priority=2,
                                    deadline=ms(1000), partition="P"))
    kernel.activate(warm)
    sim.schedule(ms(2), lambda: kernel.activate(task))
    sim.run_until(ms(200))
    observed = kernel.response_times("T")
    assert observed and observed[0] <= bound


def test_response_bound_validation():
    sbf = periodic_server_supply(ms(2), ms(10))
    with pytest.raises(AnalysisError):
        response_bound(0, sbf, ms(100))
    with pytest.raises(AnalysisError):
        response_bound(ms(500), sbf, ms(100))  # horizon too small


# ----------------------------------------------------------------------
# TT schedule synthesis
# ----------------------------------------------------------------------
def test_conflict_free_condition():
    a = TtPlacement("a", 10, 2, 0)
    b = TtPlacement("b", 10, 2, 2)
    c = TtPlacement("c", 10, 2, 1)
    assert conflict_free(a, b)
    assert not conflict_free(a, c)


def test_conflict_free_different_periods():
    # gcd(10, 15) = 5: offsets must separate within the gcd window.
    a = TtPlacement("a", 10, 2, 0)
    b = TtPlacement("b", 15, 2, 2)
    assert conflict_free(a, b)
    bad = TtPlacement("bad", 15, 2, 1)
    assert not conflict_free(a, bad)


def test_build_schedule_places_all_and_verifies():
    entries = [TtEntry(f"m{i}", period=1000, duration=100)
               for i in range(8)]
    schedule = build_schedule(entries)
    assert len(schedule.placements) == 8
    schedule.verify()
    assert schedule.utilization() == pytest.approx(0.8)


def test_overfull_schedule_raises():
    entries = [TtEntry(f"m{i}", period=1000, duration=300)
               for i in range(4)]
    with pytest.raises(SchedulingError):
        build_schedule(entries)


def test_reserved_window_blocks_initial_placement_but_not_future():
    # Reserve [800, 1000) of every 1000 for the future.
    schedule = TtSchedule(reserved=(800, 200, 1000))
    for i in range(8):
        schedule.place(TtEntry(f"m{i}", 1000, 100))
    # Nothing fits while respecting the reservation...
    assert schedule.try_place(TtEntry("late", 1000, 150)) is None
    # ...but a future task may use the reserved window.
    placed = schedule.try_place(TtEntry("late", 1000, 150),
                                respect_reservation=False)
    assert placed is not None and placed.offset >= 800


def test_entry_validation():
    with pytest.raises(AnalysisError):
        TtEntry("x", period=0, duration=1)
    with pytest.raises(AnalysisError):
        TtEntry("x", period=10, duration=11)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.sampled_from([100, 200, 400]),
                          st.integers(min_value=5, max_value=40)),
                min_size=1, max_size=10))
def test_schedule_invariant_property(specs):
    """Whatever gets placed never overlaps (verify() is the oracle)."""
    entries = [TtEntry(f"e{i}", period=p, duration=d)
               for i, (p, d) in enumerate(specs)]
    schedule = TtSchedule()
    for entry in entries:
        schedule.try_place(entry)
    schedule.verify()
