"""Tests for allocation exploration scored by the timing report."""

import pytest

from repro.errors import AnalysisError
from repro.dse import explore_allocations
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.units import ms, us

DATA_IF = SenderReceiverInterface("d", {"v": UINT16})


def build_system():
    """Sensor chain plus a heavy hog; where the consumer lands matters."""
    sensor = SwComponent("Sensor")
    sensor.provide("out", DATA_IF)
    sensor.runnable("tick", TimingEvent(ms(10)), lambda ctx: None,
                    wcet=us(300), writes=[("out", "v")])
    consumer = SwComponent("Consumer")
    consumer.require("in", DATA_IF)
    consumer.runnable("sink", DataReceivedEvent("in", "v"),
                      lambda ctx: None, wcet=us(500))
    hog = SwComponent("Hog")
    hog.provide("out", DATA_IF)
    # Explicit low priority would change nothing for the sporadic sink;
    # instead the hog blocks via sheer load at RM priority.
    hog.runnable("burn", TimingEvent(ms(5)), lambda ctx: None, wcet=ms(4))
    app = Composition("App")
    app.add(sensor.instantiate("s"))
    app.add(consumer.instantiate("c"))
    app.add(hog.instantiate("h"))
    app.connect("s", "out", "c", "in")
    system = SystemModel("explore")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("s", "E1")
    system.map("c", "E2")
    system.map("h", "E2")
    system.configure_bus("can")
    # Give the hog priority over the sink so co-location hurts.
    for ecu in system.ecus.values():
        ecu.set_priority("h.burn", 2000)
    return system


def test_explorer_ranks_feasible_candidates_best_first():
    system = build_system()
    candidates = explore_allocations(system, movable=["c", "h"])
    assert len(candidates) == 4  # 2 ECUs ^ 2 movable
    best = candidates[0]
    assert best.schedulable
    # Best mappings separate the consumer from the hog.
    assert best.mapping["c"] != best.mapping["h"]
    worsts = [c.worst_chain for c in candidates if c.schedulable]
    assert worsts == sorted(worsts)


def test_explorer_separation_beats_colocation():
    system = build_system()
    candidates = explore_allocations(system, movable=["c"])
    by_ecu = {c.mapping["c"]: c for c in candidates}
    # Hog lives on E2: placing the consumer on E1 must be strictly
    # better than co-locating it with the hog.
    assert by_ecu["E1"].worst_chain < by_ecu["E2"].worst_chain


def test_explorer_restores_original_mapping():
    system = build_system()
    before = dict(system.mapping)
    explore_allocations(system, movable=["c", "h"])
    assert system.mapping == before


def test_explorer_validation():
    system = build_system()
    with pytest.raises(AnalysisError):
        explore_allocations(system, movable=["ghost"])
    with pytest.raises(AnalysisError):
        explore_allocations(system, movable=["c", "h"],
                            max_candidates=2)
