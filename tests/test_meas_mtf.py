"""Tests for the MTF chunked columnar mass-trace store."""

import json
import struct

import pytest

from repro.errors import ConfigurationError
from repro.meas.mtf import (DEFAULT_CHUNK_RECORDS, MAGIC, MtfReader,
                            MtfWriter, is_mtf_file, summarize_mtf)
from repro.sim.trace import Record, Trace


def write_sample(path, signals=3, per_signal=100, chunk_records=32):
    """A small multi-signal store with several blocks per signal."""
    with MtfWriter(str(path), chunk_records=chunk_records) as writer:
        for t in range(per_signal):
            writer.write_batch([
                (t * 10, "cat", f"s{i}", {"v": t * 10 + i})
                for i in range(signals)])
    return str(path)


def test_round_trip_all_records(tmp_path):
    path = write_sample(tmp_path / "t.mtf")
    with MtfReader(path) as reader:
        assert reader.records == 300
        assert reader.signals() == ["cat:s0", "cat:s1", "cat:s2"]
        for i in range(3):
            rows = reader.read(f"cat:s{i}")
            assert [t for t, __ in rows] == [t * 10 for t in range(100)]
            assert all(data["v"] == t + i for t, data in rows)


def test_chunking_produces_multiple_blocks(tmp_path):
    path = write_sample(tmp_path / "t.mtf", chunk_records=32)
    with MtfReader(path) as reader:
        # 100 records / 32-chunk => 4 blocks per signal.
        assert reader.block_count("cat:s0") == 4
        assert reader.block_count() == 12


def test_time_range_query_touches_only_overlapping_blocks(tmp_path):
    path = write_sample(tmp_path / "t.mtf", chunk_records=32)
    with MtfReader(path) as reader:
        # Times 0..990 in 4 blocks: [0,310] [320,630] [640,950]
        # [960,990].  A query inside one block reads exactly that block.
        rows = reader.read("cat:s0", start=330, end=630)
        assert [t for t, __ in rows] == list(range(330, 631, 10))
        assert reader.blocks_read == 1
        # A query spanning three ranges reads three — never all four.
        rows = reader.read("cat:s0", start=300, end=650)
        assert [t for t, __ in rows] == list(range(300, 651, 10))
        assert reader.blocks_read == 1 + 3
        # The summary never touches data blocks at all.
        reader.blocks_read = 0
        summary = reader.summary()
        assert summary["cat:s0"]["count"] == 100
        assert reader.blocks_read == 0


def test_accepts_trace_records_and_tuples(tmp_path):
    path = str(tmp_path / "t.mtf")
    with MtfWriter(path) as writer:
        writer.write_batch([Record(5, "a", "x", {"n": 1})])
        writer.write_batch([(6, "a", "x", {"n": 2})])
    with MtfReader(path) as reader:
        assert reader.read("a:x") == [(5, {"n": 1}), (6, {"n": 2})]


def test_usable_as_trace_spill_target(tmp_path):
    path = str(tmp_path / "spill.mtf")
    writer = MtfWriter(path, chunk_records=16)
    trace = Trace(max_records=8, spill=writer)
    for i in range(40):
        trace.log(i, "task.complete", "T", n=i)
    trace.close()  # flushes the tail AND seals the store
    with MtfReader(path) as reader:
        rows = reader.read("task.complete:T")
        assert [t for t, __ in rows] == list(range(40))
        assert reader.records == 40


def test_write_after_close_rejected(tmp_path):
    writer = MtfWriter(str(tmp_path / "t.mtf"))
    writer.close()
    writer.close()  # idempotent
    with pytest.raises(ConfigurationError):
        writer.write_batch([(0, "a", "b", {})])


def test_reader_rejects_non_mtf_and_truncated_files(tmp_path):
    text = tmp_path / "plain.txt"
    text.write_text("hello")
    assert not is_mtf_file(str(text))
    with pytest.raises(ConfigurationError):
        MtfReader(str(text))
    # Valid magic but chopped-off trailer.
    path = write_sample(tmp_path / "t.mtf")
    data = open(path, "rb").read()
    truncated = tmp_path / "trunc.mtf"
    truncated.write_bytes(data[:-4])
    assert is_mtf_file(str(truncated))
    with pytest.raises(ConfigurationError):
        MtfReader(str(truncated))


def test_reader_rejects_unknown_version(tmp_path):
    path = tmp_path / "future.mtf"
    path.write_bytes(struct.pack("<4sH", MAGIC, 99) + b"\0" * 64)
    with pytest.raises(ConfigurationError) as excinfo:
        MtfReader(str(path))
    assert "version" in str(excinfo.value)


def test_is_mtf_file_missing_path():
    assert not is_mtf_file("/no/such/file.mtf")


def test_writer_validates_chunk_records(tmp_path):
    with pytest.raises(ConfigurationError):
        MtfWriter(str(tmp_path / "t.mtf"), chunk_records=0)
    assert DEFAULT_CHUNK_RECORDS >= 1


def test_empty_store_round_trips(tmp_path):
    path = str(tmp_path / "empty.mtf")
    MtfWriter(path).close()
    with MtfReader(path) as reader:
        assert reader.records == 0
        assert reader.signals() == []
        assert reader.read("anything") == []


def test_summarize_and_stats_integration(tmp_path):
    path = write_sample(tmp_path / "t.mtf")
    text = summarize_mtf(path)
    assert "MTF store, 300 records" in text
    assert "cat:s1" in text
    # `repro stats` autodetects MTF by magic among text formats.
    from repro.obs.stats import summarize_paths

    out = summarize_paths([path])
    assert "MTF store" in out


def test_values_survive_json_canonicalization(tmp_path):
    path = str(tmp_path / "t.mtf")
    with MtfWriter(path) as writer:
        writer.write_batch([(0, "a", "x", {"value": None}),
                            (1, "a", "x", {"value": 1.5})])
    with MtfReader(path) as reader:
        assert reader.read("a:x") == [(0, {"value": None}),
                                      (1, {"value": 1.5})]


def test_directory_is_canonical_json(tmp_path):
    path = write_sample(tmp_path / "t.mtf")
    raw = open(path, "rb").read()
    offset, length, __ = struct.unpack("<QQ8s", raw[-24:])
    directory = json.loads(raw[offset:offset + length])
    assert directory["records"] == 300
    assert all(b["t_min"] <= b["t_max"] for b in directory["blocks"])
