"""Smoke tests: every example must run end-to-end and print its
headline sections (guards the examples against API drift)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    spec = importlib.util.spec_from_file_location(name,
                                                  EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
        module.main()
    finally:
        sys.modules.pop(name, None)
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart", capsys)
    assert "Virtual Functional Bus" in out
    assert "Deployed on 2 ECUs over CAN" in out
    assert "Deployed on 2 ECUs over FLEXRAY" in out
    assert "configuration checks: PASS" in out
    assert "15 ms budget        : MET" in out


def test_brake_by_wire(capsys):
    out = run_example("brake_by_wire", capsys)
    assert "WITHOUT guardians" in out
    assert "WITH guardians" in out
    assert "damage outside FCR : 0" in out  # the guarded run
    assert "0x4711" in out
    assert "degraded" in out


def test_domain_consolidation(capsys):
    out = run_example("domain_consolidation", capsys)
    assert "federated" in out
    assert "integrated" in out
    assert "compliant: True" in out
    assert "strengthen first" in out


def test_legacy_migration(capsys):
    out = run_example("legacy_migration", capsys)
    assert "native CAN (before migration)" in out
    assert "CAN overlay on TT platform" in out
    assert "CAN island + gateway + FlexRay" in out
    assert "Same legacy code in all three worlds" in out


def test_timing_driven_design(capsys):
    out = run_example("timing_driven_design", capsys)
    assert "budget verdict   : VIOLATED" in out
    assert "budget verdict   : MET" in out
    assert "bound holds      : True" in out
    assert "budget met       : True" in out


def test_mpsoc_integration(capsys):
    out = run_example("mpsoc_integration", capsys)
    assert "rejected self-send" in out
    assert "identical after integrating telematics     : True" in out
    assert "INTERFERED" in out  # shared bus
    assert "ISOLATED" in out    # TDMA NoC
    assert "babble deliveries after gating : 0" in out


def test_fault_campaign(capsys):
    out = run_example("fault_campaign", capsys)
    assert "corrupted values delivered    : 0" in out
    assert "DTC 0x4A01: confirmed=False" in out
    assert "mode history: nominal -> limp -> nominal" in out
    assert "detection rate     : 100%" in out
    assert "recovery rate      : 100%" in out
    assert "All three acts passed" in out
