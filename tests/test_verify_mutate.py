"""Property-based tests for the fuzzer's structural mutators.

The contract every mutator must honour (module docstring of
:mod:`repro.verify.mutate`): a well-formed system in, a well-formed
system out, deterministically under a fixed seed, without touching the
input.  These properties are what make the fuzz loop resumable and
``--jobs`` invariant, so they get the heaviest test coverage.
"""

import copy
import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.verify.generator import generate
from repro.verify.mutate import MUTATORS, mutate, validate_system
from repro.verify.serialize import system_to_dict

MUTATOR_NAMES = [name for name, _ in MUTATORS]


def canonical(system) -> str:
    return json.dumps(system_to_dict(system), sort_keys=True)


# ----------------------------------------------------------------------
# Generator output is the base line
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("size", ["small", "medium"])
def test_generated_systems_are_well_formed(seed, size):
    assert validate_system(generate(seed, size)) == []


# ----------------------------------------------------------------------
# Well-formedness preservation, per mutator
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 50), mutator_seed=st.integers(0, 10_000),
       index=st.integers(0, len(MUTATORS) - 1))
def test_each_mutator_preserves_well_formedness(seed, mutator_seed, index):
    system = generate(seed, "small")
    name, mutator = MUTATORS[index]
    mutant = mutator(random.Random(mutator_seed), system)
    if mutant is None:  # mutator inapplicable to this system: fine
        return
    problems = validate_system(mutant)
    assert problems == [], f"{name} broke well-formedness: {problems}"


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(0, 50), mutator_seed=st.integers(0, 10_000),
       depth=st.integers(1, 6))
def test_mutation_chains_stay_well_formed(seed, mutator_seed, depth):
    system = generate(seed, "small")
    rng = random.Random(mutator_seed)
    for _ in range(depth):
        system, name = mutate(system, rng)
        assert validate_system(system) == [], name


# ----------------------------------------------------------------------
# Determinism and input purity
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 50), mutator_seed=st.integers(0, 10_000))
def test_mutation_is_deterministic_under_fixed_seed(seed, mutator_seed):
    system = generate(seed, "small")
    first, name_a = mutate(system, random.Random(mutator_seed))
    second, name_b = mutate(system, random.Random(mutator_seed))
    assert name_a == name_b
    assert canonical(first) == canonical(second)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 50), mutator_seed=st.integers(0, 10_000))
def test_mutation_never_modifies_its_input(seed, mutator_seed):
    system = generate(seed, "small")
    before = canonical(system)
    mutate(system, random.Random(mutator_seed))
    assert canonical(system) == before


def test_mutation_changes_something():
    """A mutant differs from its parent (else the corpus would fill
    with duplicates that can never contribute coverage)."""
    changed = 0
    for seed in range(20):
        system = generate(seed, "small")
        mutant, _ = mutate(system, random.Random(seed))
        if canonical(mutant) != canonical(system):
            changed += 1
    assert changed >= 18  # slot/id swaps can no-op; near-all must change


# ----------------------------------------------------------------------
# Specific structural guarantees the validator encodes
# ----------------------------------------------------------------------
def _mutants(seed_range=30):
    for seed in range(seed_range):
        system = generate(seed % 10, "small")
        rng = random.Random(seed)
        for _ in range(3):
            system, _ = mutate(system, rng)
        yield system


def test_priorities_stay_unique_per_ecu():
    for system in _mutants():
        for ecu in system.fp_ecus:
            priorities = [t.priority for t in system.tasksets[ecu]]
            assert len(set(priorities)) == len(priorities)


def test_frames_fit_bus_payload():
    for system in _mutants():
        if system.can is None:
            continue
        dlc = {s.name: s.dlc for s in system.can.frame_specs}
        for frame in system.can.frames:
            assert frame.ipdu.size_bytes <= dlc[frame.ipdu.name]


def test_flexray_slots_stay_disjoint():
    for system in _mutants():
        if system.flexray is None:
            continue
        slots = [w.assignment.slot for w in system.flexray.static_writers]
        assert len(set(slots)) == len(slots)


def test_chain_references_live_tasks():
    for system in _mutants():
        chain = system.chain
        if chain is None:
            continue
        producers = {t.name for t in system.tasksets[chain.producer_ecu]}
        consumers = {t.name for t in system.tasksets[chain.consumer_ecu]}
        assert chain.producer in producers
        assert chain.consumer in consumers


def test_chain_rewire_keeps_periods_consistent():
    """The chain period, the producer/consumer task periods and the
    chain frame spec period move together."""
    from repro.verify.mutate import mutate_chain_rewire

    for seed in range(20):
        system = generate(seed % 10, "small")
        mutant = mutate_chain_rewire(random.Random(seed), system)
        if mutant is None:
            continue
        chain = mutant.chain
        by_name = {t.name: t for ts in mutant.tasksets.values()
                   for t in ts}
        assert by_name[chain.producer].period == chain.period
        assert by_name[chain.consumer].period == chain.period
        spec = {s.name: s for s in mutant.can.frame_specs}[chain.pdu_name]
        assert spec.period == chain.period
        assert chain.timeout >= chain.period


def test_validator_rejects_broken_systems():
    """validate_system actually detects each class of breakage the
    mutators promise not to introduce."""
    from dataclasses import replace

    base = generate(1, "small")

    dup = copy.deepcopy(base)
    ecu = dup.fp_ecus[0]
    dup.tasksets[ecu][0] = replace_priority(dup.tasksets[ecu][0],
                                            dup.tasksets[ecu][1].priority)
    assert any("not unique" in p for p in validate_system(dup))

    fat = copy.deepcopy(base)
    specs = list(fat.can.frame_specs)
    target = next(s for s in specs
                  if any(f.ipdu.name == s.name for f in fat.can.frames))
    target.dlc = 0
    fat.can = replace(fat.can, frame_specs=tuple(specs))
    assert any("exceeds" in p for p in validate_system(fat))

    orphan = copy.deepcopy(base)
    orphan.chain = replace_chain_producer(orphan.chain, "NoSuchTask")
    assert any("producer" in p for p in validate_system(orphan))


def replace_priority(task, priority):
    from repro.verify.mutate import _retask
    return _retask(task, priority=priority)


def replace_chain_producer(chain, producer):
    from repro.verify.generator import ChainPlan
    return ChainPlan(producer, chain.producer_ecu, chain.consumer,
                     chain.consumer_ecu, chain.signal_name,
                     chain.signal_bits, chain.pdu_name, chain.period,
                     chain.data_id, chain.counter_bits,
                     chain.max_delta_counter, chain.timeout)
