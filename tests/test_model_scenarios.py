"""The bundled scenario library's pinned guarantees (EXPERIMENTS E18).

Every committed scenario document must (1) validate against the
schema, (2) round-trip digest-identically through the live system
objects, (3) pass differential verification with zero soundness and
invariant violations, and (4) meet every supported resilience
obligation.  A scenario edit that breaks any of these fails here
before it reaches CI's model-smoke job.
"""

import pytest

from repro.errors import ConfigurationError
from repro.model import (load_scenario, model_digest, resilience_models,
                         scenario_description, scenario_names,
                         scenario_path, validate_document, verify_models)
from repro.model.build import load_document

EXPECTED = ["adas-fusion", "flexray-mixed", "gateway-multibus",
            "limp-home", "tdma-overload"]


def test_library_inventory():
    assert scenario_names() == EXPECTED
    for name in EXPECTED:
        assert scenario_description(name)


def test_unknown_scenario_rejected():
    with pytest.raises(ConfigurationError) as excinfo:
        scenario_path("no-such-scenario")
    assert "adas-fusion" in str(excinfo.value)


@pytest.mark.parametrize("name", EXPECTED)
def test_scenario_validates(name):
    assert validate_document(load_document(scenario_path(name))) == []


@pytest.mark.parametrize("name", EXPECTED)
def test_scenario_digest_roundtrip(name):
    model = load_scenario(name)
    assert model.roundtrip().digest() == model.digest()
    # the committed file is already in canonical (sorted) form, so the
    # digest is reproducible straight from the document on disk
    assert model_digest(load_document(scenario_path(name))) == \
        model.digest()


@pytest.mark.parametrize("name", EXPECTED)
def test_scenario_verifies_cleanly(name):
    report = verify_models([load_scenario(name)])
    assert report.soundness_violations == 0
    assert report.invariant_violations == 0
    assert report.passed
    assert all(not v.declined for v in report.verdicts)


@pytest.mark.parametrize("name", EXPECTED)
def test_scenario_resilience_obligations_met(name):
    report = resilience_models([load_scenario(name)])
    assert report.unmet == 0
    assert report.passed


def test_limp_home_covers_every_chain_fault_kind():
    """The recovery-cascade scenario declares the full chain fault
    matrix explicitly (it is the scenario about recovery)."""
    model = load_scenario("limp-home")
    kinds = {s["kind"]
             for s in model.document["resilience"]["scenarios"]}
    assert {"e2e-corruption", "e2e-loss", "e2e-delay",
            "can-error-burst", "can-bus-off", "ecu-reset"} <= kinds


def test_tdma_overload_is_in_the_multi_activation_regime():
    """The TDMA scenario exists to pin the queued-activation busy
    window: its workhorse task needs more than one major frame of
    partition supply per job."""
    system = load_scenario("tdma-overload").build()
    plan = system.tdma
    assert plan is not None
    heavy = max(plan.tasks, key=lambda t: t.wcet)
    assert heavy.wcet > plan.major_frame // len(plan.partitions)
    assert heavy.max_activations >= 2


def test_batch_runs_share_one_report():
    models = [load_scenario(name) for name in EXPECTED]
    report = verify_models(models, jobs=2)
    assert report.count == len(EXPECTED)
    assert report.passed
