"""Property-based tests cross-checking core invariants against
independent oracles (brute-force expansions, conservation laws)."""

import math

from hypothesis import given, settings, strategies as st

from repro.analysis.tdma_bound import periodic_server_supply, tdma_supply
from repro.analysis.ttschedule import TtEntry, TtSchedule
from repro.contracts import Contract, Predicate, Var
from repro.dse import AllocatableTask, allocate, deadline_monotonic
from repro.analysis.rta import analyze
from repro.legacy import CanOverlay
from repro.network import CanFrameSpec
from repro.osek import TaskSpec, TdmaScheduler, Window
from repro.sim import Simulator
from repro.units import ms, us


# ----------------------------------------------------------------------
# TDMA supply function vs brute-force oracle
# ----------------------------------------------------------------------
def brute_force_min_supply(windows, frame, t, resolution=1):
    """Minimum supply over any interval of length t, by scanning every
    start phase at the given resolution (oracle)."""
    def supplied(start):
        total = 0
        for k in range((start + t) // frame + 1):
            for w_start, w_len in windows:
                lo = max(start, k * frame + w_start)
                hi = min(start + t, k * frame + w_start + w_len)
                if hi > lo:
                    total += hi - lo
        return total

    return min(supplied(phase) for phase in range(0, frame, resolution))


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=40),
                          st.integers(min_value=1, max_value=20)),
                min_size=1, max_size=3),
       st.integers(min_value=1, max_value=200))
def test_tdma_supply_matches_brute_force(raw_windows, t):
    frame = 100
    # Normalize into non-overlapping in-frame windows.
    windows = []
    cursor = 0
    for start, length in raw_windows:
        begin = max(cursor, start)
        end = min(frame, begin + length)
        if end > begin:
            windows.append((begin, end - begin))
            cursor = end
    if not windows:
        return
    scheduler = TdmaScheduler(
        [Window(s, l, "P") for s, l in windows], frame)
    sbf = tdma_supply(scheduler, "P")
    assert sbf(t) == brute_force_min_supply(windows, frame, t)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=50),
       st.integers(min_value=1, max_value=500))
def test_server_supply_monotone_and_rate_bounded(budget, t):
    period = budget + 50
    sbf = periodic_server_supply(budget, period)
    assert sbf(t) <= sbf(t + 1) <= sbf(t) + 1  # 1-Lipschitz, monotone
    assert sbf(t) <= max(0, t)  # never supplies more than wall time
    # Long-run rate converges to budget/period from below.
    horizon = 50 * period
    assert sbf(horizon) <= budget * (horizon // period + 1)


# ----------------------------------------------------------------------
# TT schedule: interval-expansion oracle
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.sampled_from([60, 120, 240]),
                          st.integers(min_value=5, max_value=50)),
                min_size=1, max_size=8))
def test_tt_schedule_expansion_never_overlaps(specs):
    schedule = TtSchedule()
    for index, (period, duration) in enumerate(specs):
        schedule.try_place(TtEntry(f"e{index}", period,
                                   min(duration, period)))
    if not schedule.placements:
        return
    # Expand occurrences linearly over two hyperperiods: any modular
    # overlap (including ones crossing the hyperperiod boundary) shows
    # up as a plain interval overlap on this timeline.
    hyper = schedule.hyperperiod()
    intervals = []
    for placement in schedule.placements:
        for k in range(2 * hyper // placement.period):
            start = k * placement.period + placement.offset
            intervals.append((start, start + placement.duration))
    intervals.sort()
    for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
        assert e1 <= s2, f"overlap: ({s1},{e1}) and ({s2},{e2})"


# ----------------------------------------------------------------------
# CAN overlay: conservation and ordering
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=2),   # node
                          st.integers(min_value=0, max_value=0x7FF),
                          st.integers(min_value=0, max_value=2000)),
                min_size=1, max_size=25))
def test_overlay_delivers_every_frame_exactly_once(sends):
    sim = Simulator()
    nodes = ["n0", "n1", "n2"]
    overlay = CanOverlay(sim, nodes, slot_length=us(100),
                         slot_capacity_bytes=64)
    received: dict[str, list] = {n: [] for n in nodes}
    for node in nodes:
        overlay.attach(node).on_receive(
            lambda spec, msg, n=node: received[n].append(msg.seq))
    sent = []
    for index, (node_index, can_id, delay) in enumerate(sends):
        node = nodes[node_index]

        def do_send(node=node, can_id=can_id, index=index):
            spec = CanFrameSpec(f"f{index}", can_id, dlc=1)
            msg = overlay.attach(node).send(spec)
            sent.append((node, msg.seq))

        sim.schedule(us(delay), do_send)
    overlay.start()
    sim.run_until(ms(50))
    # Conservation: every frame reaches every *other* node exactly once.
    for node, seq in sent:
        for peer in nodes:
            count = received[peer].count(seq)
            assert count == (0 if peer == node else 1)


# ----------------------------------------------------------------------
# Contracts: algebraic properties on random interval contracts
# ----------------------------------------------------------------------
X = Var("x", range(0, 64, 4))
UNIVERSE = {"x": X}


def interval_contract(name, a_hi, g_hi):
    return Contract(
        name,
        Predicate(lambda e, lim=a_hi: e["x"] <= lim, ["x"], f"A<={a_hi}"),
        Predicate(lambda e, lim=g_hi: e["x"] <= lim, ["x"], f"G<={g_hi}"))


limits = st.integers(min_value=0, max_value=63)


@settings(max_examples=40, deadline=None)
@given(limits, limits, limits, limits)
def test_composition_guarantee_implies_components(a1, g1, a2, g2):
    c1 = interval_contract("c1", a1, g1)
    c2 = interval_contract("c2", a2, g2)
    composed = c1.compose(c2)
    sat1 = c1.saturated_guarantee()
    sat2 = c2.saturated_guarantee()
    for value in X.domain:
        env = {"x": value}
        if composed.guarantee(env):
            assert sat1(env) and sat2(env)


@settings(max_examples=30, deadline=None)
@given(limits, limits, limits, limits, limits, limits)
def test_refinement_is_transitive(a1, g1, a2, g2, a3, g3):
    c1 = interval_contract("c1", a1, g1)
    c2 = interval_contract("c2", a2, g2)
    c3 = interval_contract("c3", a3, g3)
    if c1.refines(c2, UNIVERSE) and c2.refines(c3, UNIVERSE):
        assert c1.refines(c3, UNIVERSE)


@settings(max_examples=30, deadline=None)
@given(limits, limits)
def test_refinement_is_reflexive_property(a_hi, g_hi):
    contract = interval_contract("c", a_hi, g_hi)
    assert contract.refines(contract, UNIVERSE)


# ----------------------------------------------------------------------
# Allocation: every produced bin is schedulable, every task placed once
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=1, max_value=8),
                          st.sampled_from([10, 20, 40, 80])),
                min_size=1, max_size=12))
def test_allocation_bins_always_schedulable(params):
    tasks = []
    for index, (wcet, period) in enumerate(params):
        wcet = min(wcet, period - 1) if period > 1 else 1
        tasks.append(AllocatableTask(
            TaskSpec(f"t{index}", wcet=ms(wcet), period=ms(period)),
            das="d"))
    allocation = allocate(tasks, max_ecus=len(tasks))
    assert allocation is not None  # each task alone fits (u < 1)
    placed = sorted(allocation.mapping())
    assert placed == sorted(t.spec.name for t in tasks)
    for bin_tasks in allocation.bins:
        specs = deadline_monotonic([t.spec for t in bin_tasks])
        assert analyze(specs).schedulable
