"""Tests for the seeded random system generator."""

import pytest

from repro.errors import ConfigurationError
from repro.network.can import frame_time
from repro.verify import SIZES, generate, generate_many
from repro.verify.generator import CHAIN_CAN_ID, MAX_BUS_UTILIZATION


def fingerprint(system):
    """Structural fingerprint: every generated parameter as primitives."""
    return {
        "name": system.name,
        "tasks": {ecu: [(t.name, t.wcet, t.period, t.priority, t.jitter)
                        for t in system.tasksets[ecu]]
                  for ecu in system.fp_ecus},
        "resources": sorted(system.resources.items()),
        "sections": [(s.task, s.resource, s.pre, s.duration, s.post)
                     for s in system.critical_sections],
        "chain": (system.chain.producer, system.chain.consumer,
                  system.chain.period, system.chain.data_id),
        "can": [(f.name, f.can_id, f.dlc, f.period)
                for f in system.can.frame_specs],
        "flexray": [(w.assignment.frame_name, w.assignment.slot,
                     w.period, w.offset)
                    for w in system.flexray.static_writers]
        + [(w.spec.name, w.spec.size_bytes, w.period, w.offset)
           for w in system.flexray.dynamic_writers],
        "tdma": [(t.name, t.wcet, t.period, t.priority, t.partition)
                 for t in system.tdma.tasks],
    }


def test_same_seed_same_system():
    assert fingerprint(generate(42)) == fingerprint(generate(42))


def test_different_seeds_differ():
    assert fingerprint(generate(1)) != fingerprint(generate(2))


def test_generate_many_is_deterministic_with_distinct_seeds():
    batch = generate_many(7, 5)
    again = generate_many(7, 5)
    assert len(batch) == 5
    assert len({s.seed for s in batch}) == 5
    assert [fingerprint(s) for s in batch] == \
        [fingerprint(s) for s in again]


def test_priorities_unique_per_ecu():
    system = generate(11)
    for ecu in system.fp_ecus:
        priorities = [t.priority for t in system.tasksets[ecu]]
        assert len(priorities) == len(set(priorities))


def test_priorities_are_rate_monotonic():
    system = generate(11)
    consumer = system.chain.consumer
    for ecu in system.fp_ecus:
        tasks = [t for t in system.tasksets[ecu] if t.name != consumer]
        ordered = sorted(tasks, key=lambda t: t.priority, reverse=True)
        periods = [t.period for t in ordered]
        assert periods == sorted(periods)


def test_consumer_is_top_priority_with_release_jitter():
    system = generate(13)
    chain = system.chain
    tasks = system.tasksets[chain.consumer_ecu]
    consumer = next(t for t in tasks if t.name == chain.consumer)
    assert consumer.priority == max(t.priority for t in tasks)
    assert consumer.jitter == chain.period


def test_can_bus_utilization_stays_analysable():
    for seed in (1, 2, 3, 4, 5):
        system = generate(seed)
        util = sum(frame_time(f.dlc, system.can.bitrate_bps) / f.period
                   for f in system.can.frame_specs)
        assert util <= MAX_BUS_UTILIZATION


def test_chain_frame_outranks_background_traffic():
    system = generate(17)
    specs = system.can.frame_specs
    ids = [f.can_id for f in specs]
    assert len(ids) == len(set(ids))
    chain_spec = system.can.spec_of(system.chain.pdu_name)
    assert chain_spec.can_id == CHAIN_CAN_ID
    assert all(f.can_id > chain_spec.can_id for f in specs
               if f.name != system.chain.pdu_name)


def test_tdma_tasks_fit_their_windows():
    system = generate(19)
    plan = system.tdma
    window = plan.major_frame // len(plan.partitions)
    for task in plan.tasks:
        assert task.wcet < window
        assert task.period > plan.major_frame + window


def test_critical_sections_partition_the_wcet():
    system = generate(23)
    wcet_of = {t.name: t.wcet for t in system.tasksets["E0"]}
    for section in system.critical_sections:
        assert section.pre + section.duration + section.post \
            == wcet_of[section.task]
        assert section.duration >= 1


def test_size_classes_scale_the_system():
    for size, spec in SIZES.items():
        system = generate(5, size)
        assert len(system.tasksets) == spec.n_ecus
        assert len(system.tdma.partitions) == spec.tdma_partitions
        assert len(system.flexray.dynamic_writers) == spec.n_dynamic_frames


def test_unknown_size_rejected():
    with pytest.raises(ConfigurationError):
        generate(1, "xxl")


def test_per_system_seeds_are_spawn_derived_from_the_index():
    from repro.exec import derive_seed

    batch = generate_many(7, 4)
    assert [s.seed for s in batch] == [derive_seed(7, i) for i in range(4)]


def test_generate_many_prefix_property():
    # Index-addressed seeding: the first k systems of a batch are the
    # same systems regardless of the batch size — the property parallel
    # sharding relies on.
    assert [fingerprint(s) for s in generate_many(7, 5)[:3]] == \
        [fingerprint(s) for s in generate_many(7, 3)]
