"""Performance smoke test: guard against pathological slowdowns.

Not a micro-benchmark (those live in ``benchmarks/``): this asserts a
generous wall-time ceiling so an accidental O(n^2) in the kernel or RTE
shows up as a failing test rather than as silent benchmark drift.
"""

import time

from repro.osek import EcuKernel, FixedPriorityScheduler, TaskSpec
from repro.sim import Simulator
from repro.units import ms, us


def test_kernel_simulates_thousands_of_events_quickly():
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    for index in range(20):
        kernel.add_task(TaskSpec(f"t{index}", wcet=us(200 + index * 10),
                                 period=ms(5 + index), priority=index,
                                 deadline=ms(1000)))
    start = time.perf_counter()
    sim.run_until(ms(2000))
    elapsed = time.perf_counter() - start
    assert sim.executed > 5_000
    # Generous ceiling: normally well under a second.
    assert elapsed < 10.0, f"kernel too slow: {elapsed:.1f}s"


def test_trace_queries_scale():
    from repro.sim import Trace
    trace = Trace()
    for index in range(200_000):
        trace.log(index, "task.complete", f"t{index % 50}",
                  response=index)
    start = time.perf_counter()
    for name_index in range(50):
        trace.response_times(f"t{name_index}",
                             start_category="task.complete",
                             end_category="task.complete")
    elapsed = time.perf_counter() - start
    assert elapsed < 20.0, f"trace queries too slow: {elapsed:.1f}s"
