"""Tests for the transferability conformance checker, the new CAN
sensitivity helpers, and sampled-chain data-age validation."""

import pytest

from repro.errors import AnalysisError
from repro.analysis import (Chain, ChainProbe, SAMPLED, Stage,
                            admissible_new_frame, can_rta,
                            critical_bitrate)
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16, check_transferability)
from repro.network import CanFrameSpec
from repro.sim import Simulator
from repro.units import ms, us

DATA_IF = SenderReceiverInterface("d", {"v": UINT16})


# ----------------------------------------------------------------------
# Conformance checker
# ----------------------------------------------------------------------
def app_factory():
    src = SwComponent("Src")
    src.provide("out", DATA_IF)

    def sample(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        ctx.write("out", "v", ctx.state["n"])

    src.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(100))
    dst = SwComponent("Dst")
    dst.require("in", DATA_IF)
    dst.provide("cmd", SenderReceiverInterface("c", {"v": UINT16}))
    dst.runnable("react", DataReceivedEvent("in", "v"),
                 lambda ctx: ctx.write("cmd", "v",
                                       ctx.read("in", "v") * 3),
                 wcet=us(200))
    app = Composition("App")
    app.add(src.instantiate("src"))
    app.add(dst.instantiate("dst"))
    app.connect("src", "out", "dst", "in")
    return app


def system_factory(app):
    system = SystemModel("conf")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("src", "E1")
    system.map("dst", "E2")
    system.configure_bus("can")
    return system


def test_conformant_application_passes():
    report = check_transferability(
        app_factory, system_factory, horizon=ms(95),
        observe=[("dst", "cmd", "v"), ("src", "out", "v")],
        settle=ms(2))
    assert report.ok
    assert report.observed == 2
    assert report.vfb_values == report.deployed_values
    assert report.vfb_values["dst.cmd.v"] == 30  # 10 samples, tripled


def test_insufficient_settle_is_reported_as_mismatch():
    """Without settle time the deployment's in-flight frame makes the
    final values differ — the checker must surface that, not hide it."""
    report = check_transferability(
        app_factory, system_factory, horizon=ms(90),  # sample at 90
        observe=[("dst", "cmd", "v")], settle=0)
    assert not report.ok
    assert report.mismatches[0]["buffer"] == "dst.cmd.v"


def test_state_does_not_leak_between_runs():
    """The factory discipline: two consecutive conformance checks give
    identical results (a shared-state bug would double the counters)."""
    first = check_transferability(app_factory, system_factory, ms(45),
                                  [("dst", "cmd", "v")], settle=ms(2))
    second = check_transferability(app_factory, system_factory, ms(45),
                                   [("dst", "cmd", "v")], settle=ms(2))
    assert first.ok and second.ok
    assert first.vfb_values == second.vfb_values


# ----------------------------------------------------------------------
# CAN sensitivity helpers
# ----------------------------------------------------------------------
def frame_set():
    return [CanFrameSpec("a", 0x100, dlc=8, period=ms(10)),
            CanFrameSpec("b", 0x200, dlc=8, period=ms(20))]


def test_critical_bitrate_is_tight():
    frames = frame_set()
    minimum = critical_bitrate(frames, 500_000)
    assert minimum < 500_000
    assert can_rta.analyze(frames, minimum).schedulable
    assert not can_rta.analyze(frames, minimum - 1_000).schedulable


def test_critical_bitrate_rejects_unschedulable_start():
    frames = [CanFrameSpec("x", 0x10, dlc=8, period=300_000)]
    with pytest.raises(AnalysisError):
        critical_bitrate(frames, 125_000)


def test_admissible_new_frame_dlc_headroom():
    frames = frame_set()
    dlc = admissible_new_frame(frames, 500_000, period=ms(10),
                               can_id=0x300)
    assert dlc == 8  # light load: a full frame fits
    # On a nearly saturated bus, the admissible DLC shrinks...
    heavy = [CanFrameSpec(f"h{i}", 0x10 + i, dlc=8, period=ms(3))
             for i in range(10)]
    heavy.append(CanFrameSpec("h10", 0x50, dlc=0, period=ms(3)))
    headroom = admissible_new_frame(heavy, 500_000, period=ms(3),
                                    can_id=0x300)
    assert headroom is not None and 0 <= headroom < 8
    # ...and on a fully saturated bus nothing fits at all.
    saturated = [CanFrameSpec(f"s{i}", 0x10 + i, dlc=8, period=ms(3))
                 for i in range(11)]
    assert admissible_new_frame(saturated, 500_000, period=ms(3),
                                can_id=0x300) is None


def test_admissible_new_frame_duplicate_id_rejected():
    with pytest.raises(AnalysisError):
        admissible_new_frame(frame_set(), 500_000, period=ms(10),
                             can_id=0x100)


# ----------------------------------------------------------------------
# Sampled-chain (data age) validation against simulation
# ----------------------------------------------------------------------
def test_sampled_chain_bound_covers_observed_data_age():
    """Producer writes every 10 ms; consumer *samples* every 7 ms
    (implicit periodic read).  Worst observed data age must stay within
    the SAMPLED chain bound: R_frame + T_consumer + R_consumer."""
    probe = ChainProbe("age")
    producer = SwComponent("Producer")
    producer.provide("out", DATA_IF)

    def produce(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        seq = ctx.state["n"] % 65536
        probe.stamp(seq, ctx.now)
        ctx.write("out", "v", seq)

    producer.runnable("produce", TimingEvent(ms(10)), produce,
                      wcet=us(100))

    consumer = SwComponent("Consumer")
    consumer.require("in", DATA_IF)

    def consume(ctx):
        seq = ctx.read("in", "v")
        if seq and seq != ctx.state.get("last"):
            ctx.state["last"] = seq
            probe.observe(seq, ctx.now)

    consumer.runnable("consume", TimingEvent(ms(7)), consume,
                      wcet=us(300))

    app = Composition("App")
    app.add(producer.instantiate("p"))
    app.add(consumer.instantiate("c"))
    app.connect("p", "out", "c", "in")
    system = SystemModel("sampled")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("p", "E1")
    system.map("c", "E2")
    system.configure_bus("can")
    system.set_can_id("p.out", 0x180)
    sim = Simulator()
    system.build(sim)
    sim.run_until(ms(700))

    frame = CanFrameSpec("p.out", 0x180, dlc=3, period=ms(10))
    frame_wcrt = can_rta.analyze([frame], 500_000).wcrt["p.out"]
    chain = Chain("age", [
        Stage("frame", frame_wcrt),
        Stage("consume", us(300), semantics=SAMPLED, period=ms(7)),
    ])
    assert probe.latencies
    assert probe.worst <= chain.worst_case_latency()
    # The sampling term dominates: observed age exceeds the frame WCRT
    # alone, proving the SAMPLED period term is needed.
    assert probe.worst > frame_wcrt + us(300)
