"""Telemetry × execution engine: the jobs-invariance contract.

The merged telemetry of a plan execution must be digest-identical for
``jobs=1``, ``jobs=N`` and resumed runs — the same guarantee the engine
gives for results, extended to the observability layer."""

import pytest

from repro import obs
from repro.exec import Plan, execute
from repro.errors import ExecutionInterrupted


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def counting_worker(item, seed):
    obs.count("work.items")
    obs.observe("work.value_ns", item * 1_000)
    obs.dlt(item, obs.INFO, "W", "APP", str(item), "did item")
    with obs.span("work.item", index=item):
        pass
    return item * 2


def plain_worker(item, seed):
    return item + 1


PLAN_ITEMS = tuple(range(10))


def run_plan(jobs, **kwargs):
    plan = Plan("obs-parity", counting_worker, PLAN_ITEMS, chunk_size=2)
    return execute(plan, jobs=jobs, **kwargs)


def test_jobs_parity_digest_and_snapshot():
    obs.enable()
    outcome1 = run_plan(1)
    digest1 = obs.digest()
    view1 = obs.registry().deterministic_view()
    dlt1 = [(r.timestamp, r.context_id) for r in obs.dlt_channel().records]

    obs.reset()
    outcome2 = run_plan(2)
    digest2 = obs.digest()
    view2 = obs.registry().deterministic_view()
    dlt2 = [(r.timestamp, r.context_id) for r in obs.dlt_channel().records]

    assert outcome1.results == outcome2.results
    assert digest1 == digest2
    assert view1 == view2
    assert dlt1 == dlt2  # DLT merges in plan order too
    assert view1["counters"]["work.items"] == len(PLAN_ITEMS)
    assert view1["counters"]["span.work.item"] == len(PLAN_ITEMS)
    assert view1["counters"]["span.exec.chunk"] == 5


def test_span_records_merge_in_plan_order():
    obs.enable()
    run_plan(2)
    indices = [r.args["index"] for r in obs.spans().records
               if r.name == "work.item"]
    assert indices == list(PLAN_ITEMS)


def test_disabled_run_collects_nothing():
    outcome = run_plan(2)
    assert outcome.ok
    assert len(obs.registry()) == 0
    assert len(obs.spans()) == 0


def test_capture_isolates_ambient_scope():
    obs.enable()
    obs.count("ambient")
    with obs.capture() as telemetry:
        obs.count("inner", 3)
    snap = telemetry.snapshot()
    assert snap["metrics"]["counters"] == {"inner": 3}
    # Ambient scope neither lost its data nor absorbed the capture.
    assert obs.registry().snapshot()["counters"] == {"ambient": 1}
    obs.merge_snapshot(snap)
    assert obs.registry().snapshot()["counters"] == {"ambient": 1,
                                                     "inner": 3}


def test_capture_restores_disabled_flag():
    assert not obs.enabled()
    with obs.capture():
        assert obs.enabled()
    assert not obs.enabled()


def test_resume_telemetry_parity(tmp_path):
    path = tmp_path / "journal.jsonl"
    obs.enable()
    run_plan(1)
    baseline = obs.digest()

    obs.reset()
    with pytest.raises(ExecutionInterrupted):
        run_plan(1, checkpoint=path, interrupt_after=2)
    obs.reset()  # the interrupted run's partial telemetry is discarded
    resumed = run_plan(1, checkpoint=path, resume=True)
    assert resumed.chunks_resumed == 2
    assert resumed.chunks_executed == 3
    assert obs.digest() == baseline


def test_resumed_journal_without_telemetry_still_resumes(tmp_path):
    # A journal written with telemetry disabled has no telemetry keys;
    # resuming it with telemetry enabled must not fail (resumed chunks
    # simply contribute no telemetry).
    path = tmp_path / "journal.jsonl"
    plan = Plan("plain", plain_worker, PLAN_ITEMS, chunk_size=2)
    with pytest.raises(ExecutionInterrupted):
        execute(plan, checkpoint=path, interrupt_after=2)
    obs.enable()
    outcome = execute(plan, checkpoint=path, resume=True)
    assert outcome.ok and outcome.chunks_resumed == 2


def test_execution_result_reports_resumed_vs_executed_items(tmp_path):
    path = tmp_path / "journal.jsonl"
    plan = Plan("plain", plain_worker, PLAN_ITEMS, chunk_size=2)
    with pytest.raises(ExecutionInterrupted):
        execute(plan, checkpoint=path, interrupt_after=3)
    outcome = execute(plan, checkpoint=path, resume=True)
    assert outcome.items_resumed == 6
    assert outcome.items_executed == 4
    assert outcome.metrics["items_resumed"] == 6
    assert outcome.metrics["items_done"] == 4


def test_progress_rate_excludes_resumed_items():
    from repro.exec import ProgressMeter

    now = [0.0]
    meter = ProgressMeter(4, 40, clock=lambda: now[0])
    meter.chunk_resumed(30)        # journal replay: instant, not work
    now[0] = 5.0
    meter.chunk_done(10, elapsed=5.0, worker=1)
    # 10 fresh items over 5 s — NOT (30+10)/5: replay must not inflate.
    assert meter.items_per_second == pytest.approx(2.0)
    assert meter.eta_seconds == pytest.approx(0.0)
    line = meter.format_line()
    assert "(30 resumed)" in line and "2.0 items/s" in line
