"""Tests for the TTP cluster: TDMA rounds, membership, bus guardian."""

import pytest

from repro.errors import ConfigurationError
from repro.network import TtpCluster
from repro.sim import Simulator
from repro.units import us


def make_cluster(n=4, slot=us(100), guardians=True):
    sim = Simulator()
    cluster = TtpCluster(sim, [f"N{i}" for i in range(n)], slot,
                         guardians_enabled=guardians)
    return sim, cluster


def test_each_node_transmits_once_per_round():
    sim, cluster = make_cluster(n=3)
    cluster.start()
    sim.run_until(3 * cluster.round_length)
    for i in range(3):
        assert cluster.node(f"N{i}").tx_count == 3


def test_slot_order_follows_node_order():
    sim, cluster = make_cluster(n=3)
    cluster.start()
    sim.run_until(cluster.round_length)
    rx = cluster.trace.records("ttp.rx")
    assert [r.subject for r in rx] == ["N0", "N1", "N2"]
    assert [r.time for r in rx] == [us(100), us(200), us(300)]


def test_state_broadcast_delivers_payload():
    sim, cluster = make_cluster(n=2)
    got = []
    cluster.node("N1").on_receive(
        lambda sender, msg: got.append((sender, msg.payload)))
    cluster.node("N0").set_payload({"speed": 42})
    cluster.start()
    sim.run_until(cluster.round_length)
    assert got == [("N0", {"speed": 42})]


def test_crashed_node_dropped_from_membership():
    sim, cluster = make_cluster(n=3)
    cluster.start()
    sim.schedule(cluster.round_length, cluster.node("N1").crash)
    sim.run_until(3 * cluster.round_length)
    assert cluster.membership == {"N0", "N2"}
    drops = cluster.trace.records("ttp.membership_drop")
    assert [r.subject for r in drops] == ["N1"]
    assert drops[0].data["reason"] == "crash"


def test_recovered_node_reintegrates():
    sim, cluster = make_cluster(n=3)
    cluster.start()
    node = cluster.node("N1")
    sim.schedule(cluster.round_length, node.crash)
    sim.schedule(3 * cluster.round_length, node.recover)
    sim.run_until(5 * cluster.round_length)
    assert cluster.membership == {"N0", "N1", "N2"}
    assert len(cluster.trace.records("ttp.membership_join", "N1")) == 1


def test_babbler_with_guardian_is_contained():
    """Requirement 4 of the paper's NoC/TTP composability list: a faulty
    node may not interfere with non-faulty nodes' interactions."""
    sim, cluster = make_cluster(n=4, guardians=True)
    cluster.node("N2").start_babbling()
    cluster.start()
    sim.run_until(4 * cluster.round_length)
    # All nodes (including the babbler, whose own slot is legal) deliver.
    assert cluster.membership == {"N0", "N1", "N2", "N3"}
    assert cluster.trace.records("ttp.collision") == []
    assert len(cluster.trace.records("ttp.guardian_block")) > 0
    assert cluster.node("N2").guardian.blocked_count > 0


def test_babbler_without_guardian_destroys_other_slots():
    sim, cluster = make_cluster(n=4, guardians=False)
    cluster.node("N2").start_babbling()
    cluster.start()
    sim.run_until(2 * cluster.round_length)
    # Every other node's slot collides; only the babbler's survives.
    assert cluster.membership == {"N2"}
    collisions = cluster.trace.records("ttp.collision")
    assert {r.data["caused_by"] for r in collisions} == {"N2"}
    victims = {r.subject for r in collisions}
    assert victims == {"N0", "N1", "N3"}


def test_guardian_reenabled_restores_service():
    sim, cluster = make_cluster(n=3, guardians=False)
    cluster.node("N0").start_babbling()
    cluster.start()
    sim.schedule(2 * cluster.round_length,
                 lambda: cluster.set_guardians(True))
    sim.run_until(5 * cluster.round_length)
    assert cluster.membership == {"N0", "N1", "N2"}


def test_reception_is_periodic_with_round_length():
    sim, cluster = make_cluster(n=4)
    cluster.start()
    sim.run_until(4 * cluster.round_length)
    times = cluster.reception_times("N1")
    diffs = {b - a for a, b in zip(times, times[1:])}
    assert diffs == {cluster.round_length}


def test_cluster_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        TtpCluster(sim, ["only"], us(100))
    with pytest.raises(ConfigurationError):
        TtpCluster(sim, ["a", "a"], us(100))
    with pytest.raises(ConfigurationError):
        TtpCluster(sim, ["a", "b"], 0)


def test_double_start_rejected():
    sim, cluster = make_cluster()
    cluster.start()
    with pytest.raises(ConfigurationError):
        cluster.start()
