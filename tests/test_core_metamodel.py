"""Tests for the meta-model exchange format: export, check, import."""

import copy

import pytest

from repro.errors import ConfigurationError
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.core.metamodel import (check_consistency, export_system,
                                  import_system)
from repro.sim import Simulator
from repro.units import ms, us

SPEED_IF = SenderReceiverInterface("speed_if", {"value": UINT16})


def sample(ctx):
    ctx.state.setdefault("n", 0)
    ctx.state["n"] += 1
    ctx.write("out", "value", ctx.state["n"] * 10)


def on_speed(ctx):
    ctx.write("cmd", "value", ctx.read("in", "value") + 1)


BEHAVIORS = {"Sensor.sample": sample, "Controller.on_speed": on_speed}


def build_system():
    sensor = SwComponent("Sensor")
    sensor.provide("out", SPEED_IF)
    sensor.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(200))
    controller = SwComponent("Controller")
    controller.require("in", SPEED_IF)
    controller.provide("cmd", SenderReceiverInterface(
        "cmd_if", {"value": UINT16}))
    controller.runnable("on_speed", DataReceivedEvent("in", "value"),
                        on_speed, wcet=us(300))
    comp = Composition("Root")
    comp.add(sensor.instantiate("s"))
    comp.add(controller.instantiate("c"))
    comp.connect("s", "out", "c", "in")
    system = SystemModel("demo")
    system.add_ecu("ECU1")
    system.add_ecu("ECU2")
    system.set_root(comp)
    system.map("s", "ECU1")
    system.map("c", "ECU2")
    system.configure_bus("can", bitrate_bps=500_000)
    return system


def test_export_structure():
    doc = export_system(build_system())
    assert doc["format_version"] == 1
    assert "Sensor" in doc["components"]
    assert "speed_if" in doc["interfaces"]
    assert doc["system"]["root"] == "Root"
    assert doc["system"]["mapping"] == {"s": "ECU1", "c": "ECU2"}
    assert doc["system"]["bus"] == {"kind": "can",
                                    "params": {"bitrate_bps": 500_000}}


def test_exported_document_is_consistent():
    doc = export_system(build_system())
    assert check_consistency(doc) == []


def test_check_detects_dangling_interface_reference():
    doc = export_system(build_system())
    broken = copy.deepcopy(doc)
    del broken["interfaces"]["speed_if"]
    issues = check_consistency(broken)
    assert any("unknown interface" in issue for issue in issues)


def test_check_detects_unknown_type():
    doc = export_system(build_system())
    broken = copy.deepcopy(doc)
    del broken["types"]["uint16"]
    issues = check_consistency(broken)
    assert any("unknown type" in issue for issue in issues)


def test_check_detects_bad_mapping():
    doc = export_system(build_system())
    broken = copy.deepcopy(doc)
    broken["system"]["mapping"]["s"] = "GHOST"
    issues = check_consistency(broken)
    assert any("GHOST" in issue for issue in issues)


def test_check_detects_connector_to_unknown_instance():
    doc = export_system(build_system())
    broken = copy.deepcopy(doc)
    broken["compositions"]["Root"]["connectors"][0]["target"][0] = "nope"
    issues = check_consistency(broken)
    assert any("unknown instance" in issue for issue in issues)


def test_import_rejects_inconsistent_document():
    doc = export_system(build_system())
    broken = copy.deepcopy(doc)
    del broken["interfaces"]["speed_if"]
    with pytest.raises(ConfigurationError):
        import_system(broken, BEHAVIORS)


def test_import_requires_behaviors():
    doc = export_system(build_system())
    with pytest.raises(ConfigurationError):
        import_system(doc, {})


def test_roundtrip_rebuilds_equivalent_system():
    original = build_system()
    doc = export_system(original)
    rebuilt = import_system(doc, BEHAVIORS)
    assert rebuilt.validate() == []
    assert export_system(rebuilt) == doc  # stable fixed point


def test_roundtrip_system_actually_runs():
    doc = export_system(build_system())
    rebuilt = import_system(doc, BEHAVIORS)
    sim = Simulator()
    runtime = rebuilt.build(sim)
    sim.run_until(ms(25))
    assert runtime.value_of("c", "cmd", "value") == 31


def test_writes_metadata_roundtrips():
    """The timing-relevant `writes` template data survives export/import
    (the meta-model extension the paper's Section 2 demands)."""
    sensor = SwComponent("Sensor")
    sensor.provide("out", SPEED_IF)
    sensor.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(200),
                    writes=[("out", "value")])
    comp = Composition("Root")
    comp.add(sensor.instantiate("s"))
    system = SystemModel("writes")
    system.add_ecu("E")
    system.set_root(comp)
    system.map_all("E")
    doc = export_system(system)
    exported = doc["components"]["Sensor"]["runnables"][0]
    assert exported["writes"] == [["out", "value"]]
    rebuilt = import_system(doc, {"Sensor.sample": sample})
    runnable = rebuilt.root.instances["s"].component.runnables[0]
    assert runnable.writes == [("out", "value")]


def test_hierarchical_composition_roundtrip():
    sensor = SwComponent("Sensor")
    sensor.provide("out", SPEED_IF)
    sensor.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(100))
    inner = Composition("Cluster")
    inner.add(sensor.instantiate("left"))
    inner.delegate("cluster_out", "left", "out")
    controller = SwComponent("Controller")
    controller.require("in", SPEED_IF)
    controller.provide("cmd", SenderReceiverInterface(
        "cmd_if", {"value": UINT16}))
    controller.runnable("on_speed", DataReceivedEvent("in", "value"),
                        on_speed, wcet=us(100))
    outer = Composition("Root")
    outer.add(inner.instantiate("cl"))
    outer.add(controller.instantiate("c"))
    outer.connect("cl", "cluster_out", "c", "in")
    system = SystemModel("hier")
    system.add_ecu("E")
    system.set_root(outer)
    system.map_all("E")

    doc = export_system(system)
    assert "Cluster" in doc["compositions"]
    rebuilt = import_system(doc, BEHAVIORS)
    instances, connectors = rebuilt.root.flatten()
    assert sorted(i.name for i in instances) == ["c", "cl.left"]
