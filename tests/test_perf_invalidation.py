"""Cache-key invalidation soundness, per fuzz mutator.

The memo cache is sound only if every input an analysis layer reads is
part of that layer's key.  The fuzzer's mutators are a ready-made
adversary: each one perturbs a specific subsystem, so for every mutator
we can state which layers' keys are *allowed* to change — and any key
change outside that family would mean a layer reads state its key does
not cover (the unsound direction), while a mutator that never changes
its primary layer's key would mean stale cache entries serve mutated
systems (the other unsound direction).  Both directions are pinned
here, for every mutator in :data:`repro.verify.mutate.MUTATORS`.
"""

import random

import pytest

from repro.perf.keys import layer_keys
from repro.verify.generator import generate
from repro.verify.mutate import MUTATORS, _prune_faults
from repro.verify.serialize import system_to_dict

#: mutator name -> layer families whose keys the mutation may change.
#: Families name key prefixes: "rta" covers every ``rta:<ecu>`` key.
#: "faults" appears in every family because ``mutate()`` runs
#: ``_prune_faults`` after *any* mutation — a structural change can
#: invalidate a fault scenario's injection point and drop it.
ALLOWED = {
    # Task-set mutators: the mutated ECU's rta slice, plus the e2e
    # composite (its key embeds the producer/consumer rta keys).
    "util-up": {"rta", "e2e"},
    "util-down": {"rta", "e2e"},
    "jitter": {"rta", "e2e"},
    "priority-swap": {"rta", "e2e"},
    "period-repick": {"rta", "e2e"},
    "drop-task": {"rta", "e2e"},
    # CAN mutators: the bus key is whole-bus (over-inclusive by
    # design), and the e2e composite embeds it.
    "can-id-swap": {"can", "e2e"},
    "can-period": {"can", "e2e"},
    "can-repack": {"can", "e2e"},
    "drop-frame": {"can", "e2e"},
    # FlexRay mutators: static and dynamic segments key separately.
    "fr-slot-swap": {"flexray_static"},
    "fr-cycle-mux": {"flexray_static"},
    "fr-dynamic": {"flexray_dynamic"},
    # TDMA mutators.
    "tdma-inflate": {"tdma"},
    "tdma-overload": {"tdma"},
    "tdma-queue": {"tdma"},
    "tdma-period": {"tdma"},
    "tdma-major-frame": {"tdma"},
    # Chain rewire touches producer/consumer tasks, the chain frame
    # spec, and the chain plan itself.
    "chain-rewire": {"rta", "can", "e2e"},
    # Fault mutators touch only the fault scenario list.
    "fault-chain": {"faults"},
    "fault-babble": {"faults"},
    "fault-drop": {"faults"},
    "fault-fr-slot": {"faults"},
}

SEED_RANGE = range(30)


def family(layer: str) -> str:
    return layer.split(":", 1)[0]


def primary_family(name: str) -> str:
    """The family a mutator exists to perturb (first entry by intent)."""
    if name.startswith("fault-"):
        return "faults"
    if name.startswith("tdma-"):
        return "tdma"
    if name in ("fr-slot-swap", "fr-cycle-mux"):
        return "flexray_static"
    if name == "fr-dynamic":
        return "flexray_dynamic"
    if name.startswith("can-") or name == "drop-frame":
        return "can"
    if name == "chain-rewire":
        return "e2e"
    return "rta"


def test_allowed_table_covers_every_mutator_exactly():
    assert sorted(ALLOWED) == sorted(name for name, _ in MUTATORS)


def apply(mutator, rng, system):
    """One mutation exactly as ``mutate()`` performs it (including the
    fault-scenario pruning pass)."""
    mutant = mutator(rng, system)
    if mutant is not None:
        _prune_faults(mutant)
    return mutant


def base_for(name: str, seed: int):
    """A generated system the named mutator can actually apply to.

    Two mutators never apply to fresh generator output: ``fault-drop``
    needs an attached fault scenario (added here via ``fault-chain``),
    and ``can-repack`` needs a frame whose DLC exceeds its payload —
    a state only the shrinker's signal removal produces, emulated here
    by slimming one background frame's I-PDU below its (max-size) DLC.
    """
    system = generate(seed, "small")
    if name == "fault-drop":
        from repro.verify.mutate import mutate_fault_chain
        with_fault = mutate_fault_chain(random.Random(seed), system)
        return with_fault if with_fault is not None else system
    if name == "can-repack":
        if system.can is None:
            return system
        chain_pdu = system.chain.pdu_name if system.chain else None
        for frame in system.can.frames:
            if frame.ipdu.name != chain_pdu and frame.ipdu.size_bytes > 1:
                frame.ipdu.size_bytes -= 1
                break
        return system
    return system


@pytest.mark.parametrize("name,mutator", MUTATORS)
def test_mutator_changes_only_its_allowed_layer_keys(name, mutator):
    allowed = ALLOWED[name]
    applied = 0
    for seed in SEED_RANGE:
        base = base_for(name, seed)
        base_keys = layer_keys(base)
        base_dict = system_to_dict(base)
        mutant = apply(mutator, random.Random(seed), base)
        if mutant is None:
            continue
        applied += 1
        mutant_keys = layer_keys(mutant)
        if system_to_dict(mutant) == base_dict:
            # A no-op draw (e.g. a slot swapped with itself): the keys
            # must agree exactly — same content, same cache entries.
            assert mutant_keys == base_keys, name
            continue
        changed = ({layer for layer in base_keys
                    if mutant_keys.get(layer) != base_keys[layer]}
                   | (set(mutant_keys) ^ set(base_keys)))
        assert changed, (
            f"{name}: mutant differs from base but no layer key "
            f"changed — some analysed input is missing from the keys")
        illegal = {layer for layer in changed
                   if family(layer) not in allowed}
        assert not illegal, (
            f"{name}: changed keys {sorted(illegal)} outside the "
            f"allowed families {sorted(allowed)}")
    assert applied >= 5, f"{name} applied to too few seeds to judge"


@pytest.mark.parametrize("name,mutator", MUTATORS)
def test_mutator_invalidates_its_primary_layer_somewhere(name, mutator):
    """Each mutator must actually dirty the layer it targets on at
    least one seed — otherwise its cache entries would go stale."""
    target = primary_family(name)
    for seed in SEED_RANGE:
        base = base_for(name, seed)
        base_keys = layer_keys(base)
        mutant = apply(mutator, random.Random(seed), base)
        if mutant is None:
            continue
        mutant_keys = layer_keys(mutant)
        changed = ({layer for layer in base_keys
                    if mutant_keys.get(layer) != base_keys[layer]}
                   | (set(mutant_keys) ^ set(base_keys)))
        if any(family(layer) == target for layer in changed):
            return
    pytest.fail(f"{name} never changed a {target} key over "
                f"{len(SEED_RANGE)} seeds")


def test_unrelated_layer_reuse_across_mutation():
    """The point of it all: mutate one subsystem, and every untouched
    layer's key — hence its cache entry — survives verbatim."""
    from repro.verify.mutate import MUTATORS as table

    by_name = dict(table)
    for seed in SEED_RANGE:
        base = generate(seed, "small")
        if base.tdma is None:
            continue
        base_keys = layer_keys(base)
        mutant = apply(by_name["tdma-inflate"], random.Random(seed), base)
        if mutant is None:
            continue
        mutant_keys = layer_keys(mutant)
        for layer in base_keys:
            if family(layer) in ("tdma", "faults"):
                continue
            assert mutant_keys[layer] == base_keys[layer], layer
        return
    pytest.fail("no seed produced a TDMA-carrying system to mutate")
