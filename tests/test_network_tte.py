"""Tests for the TT-Ethernet-like switched channel."""

import pytest

from repro.errors import ConfigurationError
from repro.network import (TtEthernetSwitch, TtFrameSpec, TtWindow,
                           ethernet_frame_time)
from repro.sim import Simulator
from repro.units import ms, us


def make_switch(nodes=("A", "B", "C")):
    sim = Simulator()
    sw = TtEthernetSwitch(sim, bitrate_bps=100_000_000, switch_delay=us(2))
    for node in nodes:
        sw.attach(node)
    return sim, sw


def test_frame_time_includes_overhead_and_padding():
    # 100 Mbit/s: bit = 10 ns. 64B payload -> (64+38)*8*10 = 8160 ns.
    assert ethernet_frame_time(64, 100_000_000) == 8160
    # sub-minimum payload padded to 46 bytes.
    assert ethernet_frame_time(1, 100_000_000) == (46 + 38) * 80


def test_tt_frame_dispatched_periodically_with_constant_latency():
    sim, sw = make_switch()
    got = []
    sw.on_receive("B", lambda name, msg: got.append((sim.now, msg.payload)))
    sw.schedule_tt(TtFrameSpec("S", "A", ["B"], offset=us(50),
                               period=ms(1), size_bytes=64))
    sw.set_tt_payload("S", "v0")
    sw.start()
    sim.run_until(ms(3) - 1)
    wire = ethernet_frame_time(64, 100_000_000) + us(2)
    assert [t for t, __ in got] == [us(50) + wire, ms(1) + us(50) + wire,
                                    ms(2) + us(50) + wire]


def test_tt_latency_unaffected_by_best_effort_flood():
    def run(flood):
        sim, sw = make_switch()
        sw.schedule_tt(TtFrameSpec("S", "A", ["B"], offset=us(50),
                                   period=us(500), size_bytes=64))
        sw.start()
        if flood:
            def spam():
                sw.send_be("C", "B", size_bytes=1500)
                sim.schedule(us(100), spam)
            spam()
        sim.run_until(ms(5))
        return sw.trace.times("tte.rx_tt", "S")

    assert run(False) == run(True)


def test_best_effort_delivered_in_gap():
    sim, sw = make_switch()
    got = []
    sw.on_receive("B", lambda name, msg: got.append(msg))
    sw.send_be("A", "B", payload="hello", size_bytes=100)
    sim.run()
    assert len(got) == 1
    wire = ethernet_frame_time(100, 100_000_000) + us(2)
    assert got[0].latency == wire


def test_best_effort_defers_around_tt_window():
    sim, sw = make_switch()
    # TT window on port B at offset 0, every 100 us.
    sw.schedule_tt(TtFrameSpec("S", "A", ["B"], offset=0, period=us(100),
                               size_bytes=64))
    sw.start()
    # BE frame whose transmission (123.2 us at 100Mbit/s for 1500B) cannot
    # fit between two TT windows -> the guard-band rule defers it...
    be = sw.send_be("C", "B", size_bytes=400)
    sim.run_until(ms(1))
    # 400B BE frame needs 35 us; window at 0 occupies [0, 8.16us);
    # earliest start is 8.16us, and [8.16, 43.2) clears the next window
    # at 100 us.
    window = ethernet_frame_time(64, 100_000_000)
    assert be.tx_start == window
    assert be.rx_time == window + ethernet_frame_time(400, 100_000_000) + us(2)


def test_best_effort_fifo_order():
    sim, sw = make_switch()
    order = []
    sw.on_receive("B", lambda name, msg: order.append(msg.payload))
    sw.send_be("A", "B", payload=1, size_bytes=100)
    sw.send_be("C", "B", payload=2, size_bytes=100)
    sim.run()
    assert order == [1, 2]


def test_tt_window_validation():
    with pytest.raises(ConfigurationError):
        TtWindow(offset=-1, duration=10, period=100)
    with pytest.raises(ConfigurationError):
        TtWindow(offset=0, duration=0, period=100)
    with pytest.raises(ConfigurationError):
        TtWindow(offset=0, duration=200, period=100)


def test_tt_window_next_start_and_covering():
    w = TtWindow(offset=50, duration=10, period=100)
    assert w.next_start(0) == 50
    assert w.next_start(50) == 50
    assert w.next_start(51) == 150
    assert w.covering(55) == (50, 60)
    assert w.covering(60) is None
    assert w.covering(155) == (150, 160)
    assert w.covering(10) is None


def test_unknown_nodes_rejected():
    sim, sw = make_switch()
    with pytest.raises(ConfigurationError):
        sw.schedule_tt(TtFrameSpec("S", "A", ["NOPE"], offset=0,
                                   period=us(100)))
    with pytest.raises(ConfigurationError):
        sw.send_be("A", "NOPE")


def test_tt_payload_updates_are_picked_up():
    sim, sw = make_switch()
    got = []
    sw.on_receive("B", lambda name, msg: got.append(msg.payload))
    sw.schedule_tt(TtFrameSpec("S", "A", ["B"], offset=us(10),
                               period=us(100), size_bytes=64))
    sw.start()
    sw.set_tt_payload("S", "first")
    sim.schedule(us(50), lambda: sw.set_tt_payload("S", "second"))
    sim.run_until(us(220))
    assert got[0] == "first"
    assert got[1] == "second"
