"""Tests for queued (event-semantics) sender-receiver communication on
the VFB and on deployed systems."""

import pytest

from repro.errors import CompositionError, ConfigurationError
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16, VfbSimulation)
from repro.core.metamodel import export_system, import_system
from repro.sim import Simulator
from repro.units import ms, us

EVENT_IF = SenderReceiverInterface("events", {"code": UINT16},
                                   queued={"code"})
STATE_IF = SenderReceiverInterface("state", {"v": UINT16})


def test_queued_declaration_validated():
    with pytest.raises(ConfigurationError):
        SenderReceiverInterface("bad", {"a": UINT16}, queued={"ghost"})


def test_queuedness_is_part_of_compatibility():
    queued = SenderReceiverInterface("q", {"a": UINT16}, queued={"a"})
    plain = SenderReceiverInterface("p", {"a": UINT16})
    assert not queued.compatible_with(plain)
    assert queued.compatible_with(
        SenderReceiverInterface("q2", {"a": UINT16}, queued={"a"}))


def producer_component(burst=3):
    producer = SwComponent("Producer")
    producer.provide("out", EVENT_IF)

    def emit(ctx):
        base = ctx.state.get("n", 0)
        for i in range(burst):
            ctx.write("out", "code", base + i + 1)
        ctx.state["n"] = base + burst

    producer.runnable("emit", TimingEvent(ms(10)), emit, wcet=us(100))
    return producer


def consumer_component():
    consumer = SwComponent("Consumer")
    consumer.require("in", EVENT_IF)

    def drain(ctx):
        while True:
            code = ctx.receive("in", "code")
            if code is None:
                break
            ctx.state.setdefault("seen", []).append(code)

    consumer.runnable("drain", DataReceivedEvent("in", "code"), drain,
                      wcet=us(100))
    return consumer


def build_app():
    app = Composition("App")
    app.add(producer_component().instantiate("p"))
    app.add(consumer_component().instantiate("c"))
    app.connect("p", "out", "c", "in")
    return app


def test_vfb_queued_delivers_every_value_in_order():
    sim = Simulator()
    vfb = VfbSimulation(sim, build_app())
    vfb.start()
    sim.run_until(ms(25))
    consumer_state = vfb.instances["c"].state
    # 3 cycles x burst 3 = 9 values, all distinct, in order.
    assert consumer_state["seen"] == list(range(1, 10))
    assert vfb.queue_depth("c", "in", "code") == 0


def test_vfb_read_of_queued_element_rejected():
    sim = Simulator()
    app = Composition("App")
    app.add(producer_component().instantiate("p"))
    bad_consumer = SwComponent("Bad")
    bad_consumer.require("in", EVENT_IF)
    errors = []

    def wrong(ctx):
        try:
            ctx.read("in", "code")
        except ConfigurationError:
            errors.append(True)

    bad_consumer.runnable("wrong", DataReceivedEvent("in", "code"), wrong,
                          wcet=us(10))
    app.add(bad_consumer.instantiate("c"))
    app.connect("p", "out", "c", "in")
    vfb = VfbSimulation(sim, app)
    vfb.start()
    sim.run_until(ms(1))
    assert errors


def test_vfb_queue_overflow_drops_and_counts():
    sim = Simulator()
    app = Composition("App")
    app.add(producer_component(burst=20).instantiate("p"))
    # A consumer that never drains: no runnable at all.
    sink = SwComponent("Sink")
    sink.require("in", EVENT_IF)
    app.add(sink.instantiate("c"))
    app.connect("p", "out", "c", "in")
    vfb = VfbSimulation(sim, app)
    vfb.start()
    sim.run_until(ms(5))
    assert vfb.queue_depth("c", "in", "code") == 16  # QUEUE_LENGTH
    assert vfb.queue_overflows == 4


def deploy(app, bus="can"):
    system = SystemModel("queued")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("p", "E1")
    system.map("c", "E2")
    system.configure_bus(bus)
    return system


def test_deployed_queued_communication_over_can():
    system = deploy(build_app())
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(28))
    consumer_state = runtime.ecus["E2"].instances["c"].state
    # Every burst value crossed the bus exactly once, in order.
    assert consumer_state["seen"] == list(range(1, 10))
    assert runtime.queue_depth("c", "in", "code") == 0
    assert runtime.queue_overflows == 0


def test_deployed_same_ecu_queued_communication():
    app = build_app()
    system = SystemModel("local")
    system.add_ecu("E")
    system.set_root(app)
    system.map_all("E")
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(25))
    assert runtime.ecus["E"].instances["c"].state["seen"] == \
        list(range(1, 10))


def test_queued_and_state_elements_coexist():
    mixed_if = SenderReceiverInterface(
        "mixed", {"event": UINT16, "level": UINT16}, queued={"event"})
    src = SwComponent("Src")
    src.provide("out", mixed_if)

    def tick(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        ctx.write("out", "level", ctx.state["n"])
        if ctx.state["n"] % 2 == 0:
            ctx.write("out", "event", ctx.state["n"])

    src.runnable("tick", TimingEvent(ms(10)), tick, wcet=us(50))
    dst = SwComponent("Dst")
    dst.require("in", mixed_if)

    def on_event(ctx):
        code = ctx.receive("in", "event")
        level = ctx.read("in", "level")  # state element still readable
        ctx.state.setdefault("pairs", []).append((code, level))

    dst.runnable("on_event", DataReceivedEvent("in", "event"), on_event,
                 wcet=us(50))
    app = Composition("App")
    app.add(src.instantiate("p"))
    app.add(dst.instantiate("c"))
    app.connect("p", "out", "c", "in")
    system = deploy(app)
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(45))
    pairs = runtime.ecus["E2"].instances["c"].state["pairs"]
    assert pairs == [(2, 2), (4, 4)]


def test_queued_interface_survives_metamodel_roundtrip():
    def emit(ctx):
        ctx.write("out", "code", 7)

    def drain(ctx):
        ctx.state["got"] = ctx.receive("in", "code")

    producer = SwComponent("P")
    producer.provide("out", EVENT_IF)
    producer.runnable("emit", TimingEvent(ms(10)), emit, wcet=us(10))
    consumer = SwComponent("C")
    consumer.require("in", EVENT_IF)
    consumer.runnable("drain", DataReceivedEvent("in", "code"), drain,
                      wcet=us(10))
    app = Composition("App")
    app.add(producer.instantiate("p"))
    app.add(consumer.instantiate("c"))
    app.connect("p", "out", "c", "in")
    system = SystemModel("rt")
    system.add_ecu("E")
    system.set_root(app)
    system.map_all("E")
    doc = export_system(system)
    assert doc["interfaces"]["events"]["queued"] == ["code"]
    rebuilt = import_system(doc, {"P.emit": emit, "C.drain": drain})
    sim = Simulator()
    runtime = rebuilt.build(sim)
    sim.run_until(ms(15))
    assert runtime.ecus["E"].instances["c"].state["got"] == 7
