"""Tests for the A2L-like measurement & calibration registry."""

import pytest

from repro.core.config import POST_BUILD, PRE_COMPILE
from repro.errors import ConfigurationError
from repro.meas.registry import (ADDRESS_STRIDE, CHARACTERISTIC,
                                 CHARACTERISTIC_BASE, MEASUREMENT,
                                 MEASUREMENT_BASE, MeasurementRegistry,
                                 build_registry, calibration_set)
from repro.verify.generator import generate as generate_system


@pytest.fixture(scope="module")
def system():
    return generate_system(seed=7, size="small")


def test_addresses_are_sorted_name_order_per_kind():
    reg = MeasurementRegistry("sys")
    reg.add("b.meas", MEASUREMENT)
    reg.add("a.meas", MEASUREMENT)
    reg.add("z.char", CHARACTERISTIC, config_class=POST_BUILD)
    reg.finalize()
    assert reg.entry("a.meas").address == MEASUREMENT_BASE
    assert reg.entry("b.meas").address == MEASUREMENT_BASE + ADDRESS_STRIDE
    assert reg.entry("z.char").address == CHARACTERISTIC_BASE


def test_insertion_order_does_not_leak_into_digest():
    one = MeasurementRegistry("sys")
    one.add("a", MEASUREMENT)
    one.add("b", MEASUREMENT)
    two = MeasurementRegistry("sys")
    two.add("b", MEASUREMENT)
    two.add("a", MEASUREMENT)
    assert one.finalize().digest() == two.finalize().digest()


def test_duplicate_and_unknown_entries_rejected():
    reg = MeasurementRegistry("sys")
    reg.add("x", MEASUREMENT)
    with pytest.raises(ConfigurationError):
        reg.add("x", MEASUREMENT)
    with pytest.raises(ConfigurationError):
        reg.add("y", "bogus-kind")
    with pytest.raises(ConfigurationError):
        reg.entry("missing")


def test_writable_is_post_build_characteristics_only():
    reg = MeasurementRegistry("sys")
    reg.add("m", MEASUREMENT)
    reg.add("c.pb", CHARACTERISTIC, config_class=POST_BUILD)
    reg.add("c.pc", CHARACTERISTIC, config_class=PRE_COMPILE)
    reg.finalize()
    assert not reg.entry("m").writable
    assert reg.entry("c.pb").writable
    assert not reg.entry("c.pc").writable


def test_generated_registry_digest_is_stable(system):
    first = build_registry(system)
    second = build_registry(generate_system(seed=7, size="small"))
    assert first.digest() == second.digest()
    assert len(first) == len(second) > 0


def test_different_systems_have_different_registries(system):
    other = build_registry(generate_system(seed=8, size="small"))
    assert build_registry(system).digest() != other.digest()


def test_generated_registry_covers_both_kinds(system):
    reg = build_registry(system)
    assert "sim.now" in reg
    assert reg.measurements() and reg.characteristics()
    # Every characteristic mirrors a declared calibration parameter.
    config = calibration_set(system)
    declared = {f"calib.{p.name}" for p in config.parameters()}
    assert {e.name for e in reg.characteristics()} == declared


def test_calibration_set_reaches_linked_stage(system):
    config = calibration_set(system)
    assert config.stage == "linked"
    # Post-build stays writable; pre-compile is frozen.
    config.set("dem.debounce_threshold", 3)
    assert config.get("dem.debounce_threshold") == 3
    with pytest.raises(ConfigurationError):
        config.set("dem.debounce_threshold", 0)  # validator-rejected
    assert config.get("dem.debounce_threshold") == 3


def test_build_registry_accepts_models():
    from repro.model.cli import model_from_ref

    model = model_from_ref("adas-fusion")
    reg = build_registry(model)
    assert reg.digest() == build_registry(model).digest()
    assert "sim.now" in reg


def test_format_table_carries_addresses_and_digest(system):
    table = build_registry(system).format_table()
    assert "0x1000" in table and "0x2000" in table
    assert "registry digest: sha256:" in table
