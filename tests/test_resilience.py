"""Resilience verification tests: detect / contain / recover verdicts
for injected bus- and ECU-level faults, guardian babbling-idiot
containment, watchdog escalation, and the fault-scenario plumbing
through validator, mutators, shrinker, and batch runner.
"""

import random

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.network import SlotGuardian
from repro.sim import Simulator, Trace
from repro.bsw.watchdog import WatchdogManager
from repro.units import ms, us
from repro.verify.generator import FaultScenario, generate
from repro.verify.mutate import (mutate_fault_babble, mutate_fault_chain,
                                 mutate_fault_drop, mutate_fault_flexray,
                                 MUTATORS, validate_system)
from repro.verify.oracle import verify_system
from repro.verify.resilience import (CHAIN_KINDS, ScenarioVerdict,
                                     format_resilience_report,
                                     min_duration, run_resilience,
                                     scenario_problems, standard_scenarios,
                                     verify_resilience)
from repro.verify.shrink import failure_keys


# ---------------------------------------------------------------------------
# Bus guardian: babbling-idiot containment
# ---------------------------------------------------------------------------
def test_guardian_permits_only_inside_the_window():
    guardian = SlotGuardian("N1", [(0, ms(2))], period=ms(10))
    assert guardian.permit(ms(1))
    assert not guardian.permit(ms(5))
    assert guardian.permit(ms(10) + ms(1))  # window repeats every period
    assert guardian.blocked_count == 1


def test_guardian_contains_a_babbling_idiot_completely():
    """A node with no window in the independent schedule copy never
    reaches the medium, no matter how fast it babbles."""
    guardian = SlotGuardian("BABBLER", [], period=ms(10))
    attempts = 50
    granted = [guardian.permit(us(137) * i) for i in range(attempts)]
    assert not any(granted)
    assert guardian.blocked_count == attempts


def test_disabled_guardian_is_a_pass_through():
    guardian = SlotGuardian("N1", [], period=ms(10), enabled=False)
    assert guardian.permit(ms(5))
    assert guardian.blocked_count == 0


def test_guardian_rejects_invalid_configuration():
    with pytest.raises(ConfigurationError):
        SlotGuardian("N1", [], period=0)
    with pytest.raises(ConfigurationError):
        SlotGuardian("N1", [(ms(9), ms(2))], period=ms(10))


def test_babble_scenario_is_gated_detected_and_contained():
    """End to end: the injected babbling controller is blocked by the
    guardian (detection evidence), other chains see no damage, and the
    system is healthy once the babble window closes."""
    system = generate(3, "small")
    system.faults = [s for s in standard_scenarios(system)
                     if s.kind == "tdma-babble"]
    assert len(system.faults) == 1
    [verdict] = verify_resilience(system)
    assert verdict.supported
    assert verdict.detected
    assert verdict.detection_source == "guardian.blocked"
    assert verdict.detection_latency <= verdict.detection_bound
    assert verdict.contained, verdict.escape_subjects
    assert verdict.recovered
    assert verdict.ok


# ---------------------------------------------------------------------------
# Watchdog: missed-deadline escalation
# ---------------------------------------------------------------------------
def test_watchdog_missed_windows_escalate_to_violation():
    sim = Simulator()
    trace = Trace()
    violated = []
    wdg = WatchdogManager(sim, trace, on_violation=violated.append)
    wdg.supervise("TaskA", window=ms(5), tolerance=1)

    sim.run_until(ms(6))  # first window missed: tolerated, logged
    assert wdg.status("TaskA") == {"violated": False, "missed_windows": 1}
    assert len(trace.records("wdg.missed", "TaskA")) == 1
    assert violated == []

    sim.run_until(ms(11))  # second consecutive miss: escalates
    assert wdg.status("TaskA")["violated"] is True
    assert violated == ["TaskA"]
    assert len(trace.records("wdg.violation", "TaskA")) == 1


def test_watchdog_kicks_prevent_escalation_and_reset_rearms():
    sim = Simulator()
    trace = Trace()
    wdg = WatchdogManager(sim, trace)
    wdg.supervise("TaskA", window=ms(5), tolerance=0)

    def alive():
        wdg.kick("TaskA")
        if sim.now < ms(20):  # the software "crashes" at 20 ms
            sim.schedule(ms(2), alive)

    alive()
    sim.run_until(ms(20))
    assert wdg.status("TaskA") == {"violated": False, "missed_windows": 0}
    assert wdg.reset("TaskA") is False  # healthy: nothing to clear

    # stop kicking: the next window escalates immediately (tolerance 0)
    sim.run_until(ms(40))
    assert wdg.status("TaskA")["violated"] is True
    # a watchdog-triggered restart clears the latch and re-arms
    assert wdg.reset("TaskA") is True
    assert wdg.status("TaskA") == {"violated": False, "missed_windows": 0}
    sim.run_until(ms(46))
    assert wdg.status("TaskA")["missed_windows"] >= 1


# ---------------------------------------------------------------------------
# Scenario validation
# ---------------------------------------------------------------------------
def test_scenario_floor_guarantees_detection_window():
    system = generate(3, "small")
    floor = min_duration(system, "e2e-loss")
    ok = FaultScenario("e2e-loss", 0, floor)
    short = FaultScenario("e2e-loss", 0, floor - 1)
    assert scenario_problems(system, ok) == []
    assert scenario_problems(system, short)
    system.faults = [short]
    assert validate_system(system)  # validator rejects under-floor windows


def test_scenario_validation_rejects_malformed_windows():
    system = generate(3, "small")
    assert scenario_problems(system, FaultScenario("no-such-kind", 0, ms(1)))
    assert scenario_problems(
        system, FaultScenario("e2e-loss", -1, min_duration(system,
                                                           "e2e-loss")))
    assert scenario_problems(system, FaultScenario("e2e-corruption", 0, 0))
    assert scenario_problems(
        system, FaultScenario("tdma-babble", 2_000_000_000, ms(1)))
    assert scenario_problems(
        system, FaultScenario("flexray-slot-loss", 0, ms(50), "NOPE"))


def test_standard_scenarios_are_valid_and_cover_all_kinds():
    system = generate(3, "small")
    scenarios = standard_scenarios(system)
    kinds = {s.kind for s in scenarios}
    assert set(CHAIN_KINDS) <= kinds
    assert "tdma-babble" in kinds
    assert "flexray-slot-loss" in kinds
    for scenario in scenarios:
        assert scenario_problems(system, scenario) == []


# ---------------------------------------------------------------------------
# Verdicts: detect / contain / recover
# ---------------------------------------------------------------------------
def test_standard_matrix_meets_every_obligation():
    system = generate(3, "small")
    system.faults = standard_scenarios(system)
    verdicts = verify_resilience(system)
    assert len(verdicts) == len(system.faults)
    supported = [v for v in verdicts if v.supported]
    assert supported
    for verdict in supported:
        assert verdict.ok, verdict.to_dict()
        if not verdict.detection_waived:
            assert verdict.detected
            assert verdict.detection_latency <= verdict.detection_bound
        assert verdict.contained
        if not verdict.recovery_waived:
            assert verdict.recovered


def test_unsupported_scenario_is_declined_not_failed():
    """A scenario whose subsystem was shrunk away is declined (like an
    analysis that cannot run), never reported as a violation."""
    system = generate(3, "small")
    scenario = FaultScenario("flexray-slot-loss", ms(1), ms(50), "GONE")
    system.faults = [scenario]
    [verdict] = verify_resilience(system)
    assert not verdict.supported
    assert verdict.violations() == []
    oracle_verdict = verify_system(system)
    assert f"resilience:{scenario.label()}" in oracle_verdict.declined
    assert not [v for v in oracle_verdict.invariant_violations
                if v.invariant.startswith("resilience:")]


def test_unmet_obligations_become_failure_keys():
    """An undetected / escaped / unrecovered verdict surfaces through
    the same Violation type the shrinker and fuzzer key on."""
    scenario = FaultScenario("e2e-loss", ms(10), ms(100))
    verdict = ScenarioVerdict(scenario, supported=True, horizon=ms(500),
                              detected=False, detection_bound=ms(40),
                              contained=False, escaped=2,
                              escape_subjects=["T9", "T9"],
                              recovered=False)
    invariants = [v.invariant for v in verdict.violations()]
    assert invariants == ["resilience:detect", "resilience:contain",
                          "resilience:recover"]
    assert all(v.subject == scenario.label()
               for v in verdict.violations())
    assert not verdict.ok


def test_late_detection_violates_the_bound():
    scenario = FaultScenario("e2e-corruption", ms(10), ms(100))
    verdict = ScenarioVerdict(scenario, supported=True, horizon=ms(500),
                              detected=True, detection_time=ms(70),
                              detection_latency=ms(60),
                              detection_bound=ms(40))
    assert [v.invariant for v in verdict.violations()] \
        == ["resilience:detect"]


def test_verify_system_runs_attached_scenarios_and_emits_telemetry():
    system = generate(3, "small")
    system.faults = standard_scenarios(system)
    with obs.capture() as telemetry:
        verdict = verify_system(system)
        counters = telemetry.snapshot()["metrics"]["counters"]
    assert not [v for v in verdict.invariant_violations
                if v.invariant.startswith("resilience:")]
    assert counters.get("resilience.scenarios") == len(system.faults)
    assert any(name.startswith("resilience.detected_by.")
               for name in counters)
    assert failure_keys(verdict) == frozenset()


# ---------------------------------------------------------------------------
# Fault-scenario mutators and shrinking
# ---------------------------------------------------------------------------
def test_fault_mutators_are_registered():
    names = [name for name, _fn in MUTATORS]
    for expected in ("fault-chain", "fault-babble", "fault-fr-slot",
                     "fault-drop"):
        assert expected in names


def test_fault_mutators_attach_valid_scenarios():
    system = generate(3, "small")
    for mutator in (mutate_fault_chain, mutate_fault_babble,
                    mutate_fault_flexray):
        mutant = mutator(random.Random(5), system)
        assert mutant is not None
        assert len(mutant.faults) == len(system.faults) + 1
        assert validate_system(mutant) == []
        assert system.faults == []  # the input is never mutated in place


def test_fault_drop_mutator_removes_a_scenario():
    system = generate(3, "small")
    assert mutate_fault_drop(random.Random(5), system) is None  # nothing
    system.faults = standard_scenarios(system)[:2]
    mutant = mutate_fault_drop(random.Random(5), system)
    assert mutant is not None
    assert len(mutant.faults) == 1


def test_shrink_drops_fault_scenarios_unrelated_to_the_failure():
    """A TDMA soundness failure does not need the injected chain fault
    — the shrinker sheds the scenario on the way to the minimum."""
    from tests.test_verify_shrink import (legacy_tdma_bound,
                                          overloaded_tdma_system)
    from repro.verify.shrink import shrink, system_size

    with legacy_tdma_bound():
        system, key = overloaded_tdma_system()
        system.faults = [s for s in standard_scenarios(system)
                         if s.kind == "e2e-loss"]
        assert validate_system(system) == []
        before = system_size(system)
        result = shrink(system, key)
    assert result.system.faults == []
    assert system_size(result.system) < before


# ---------------------------------------------------------------------------
# Batch runner (the CLI / CI face)
# ---------------------------------------------------------------------------
def test_run_resilience_is_deterministic_and_jobs_invariant():
    base = run_resilience(11, 2, "small", jobs=1)
    assert base.passed
    assert base.unmet == 0
    parallel = run_resilience(11, 2, "small", jobs=2)
    assert parallel.digest() == base.digest()


def test_resilience_report_format_names_every_kind():
    report = run_resilience(11, 1, "small", jobs=1)
    text = format_resilience_report(report)
    assert "verdict: PASS" in text
    assert "report digest: sha256:" in text
    for kind in CHAIN_KINDS + ("tdma-babble", "flexray-slot-loss"):
        assert kind in text
