"""Tests for TT-Ethernet as an RTE bus kind."""

import pytest

from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.sim import Simulator
from repro.units import ms, us

DATA_IF = SenderReceiverInterface("d", {"v": UINT16})


def build_system(**bus_params):
    sensor = SwComponent("Sensor")
    sensor.provide("out", DATA_IF)

    def sample(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        ctx.write("out", "v", ctx.state["n"])

    sensor.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(100))
    sink = SwComponent("Sink")
    sink.require("in", DATA_IF)
    sink.runnable("consume", DataReceivedEvent("in", "v"),
                  lambda ctx: ctx.state.__setitem__(
                      "got", ctx.read("in", "v")),
                  wcet=us(100))
    app = Composition("App")
    app.add(sensor.instantiate("s"))
    app.add(sink.instantiate("k"))
    app.connect("s", "out", "k", "in")
    system = SystemModel("tte")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("s", "E1")
    system.map("k", "E2")
    system.configure_bus("tte", **bus_params)
    return system


def test_tte_deployment_delivers_data():
    system = build_system(tt_period=ms(5))
    assert system.validate() == []
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(60))
    # Values flow: the last consumed sample is close to the latest write.
    got = runtime.ecus["E2"].instances["k"].state["got"]
    assert got >= 5
    # TT deliveries happened on the switch.
    assert len(runtime.trace.records("tte.rx_tt", "s.out")) >= 10


def test_tte_delivery_is_time_triggered():
    """Frames arrive on the stream's schedule, not at write instants."""
    system = build_system(tt_period=ms(5))
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(50))
    arrivals = runtime.trace.times("tte.rx_tt", "s.out")
    diffs = {b - a for a, b in zip(arrivals, arrivals[1:])}
    assert diffs == {ms(5)}  # exactly the TT period


def test_tte_stream_overload_rejected():
    system = build_system(tt_period=us(10))  # absurdly small period
    sim = Simulator()
    with pytest.raises(Exception) as err:
        system.build(sim)
    assert "do not fit" in str(err.value)


def test_tte_activations_follow_writes_not_reshipments():
    """The TT stream re-ships its buffer every 5 ms, but the COM layer
    must deliver each *written* payload exactly once — otherwise stale
    update bits would double-activate data-triggered tasks."""
    system = build_system(tt_period=ms(5))
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(61))
    completions = len(runtime.trace.records("task.complete", "k.consume"))
    stream_deliveries = len(runtime.trace.records("tte.rx_tt", "s.out"))
    # 7 writes (t=0..60); the one at 60 may still be in flight.
    assert 6 <= completions <= 7
    # Far fewer activations than TT dispatches (12+ in the window).
    assert stream_deliveries >= 12
    assert runtime.deadline_misses() == 0
