"""Tests for the shared priority-assignment function and the simulator
event counter (small public APIs added for the timing report)."""

from repro.core.rte import SPORADIC_PRIORITY, assign_rm_priorities
from repro.core.runnable import (DataReceivedEvent, Runnable, TimingEvent)
from repro.sim import Simulator
from repro.units import ms


def make_runnable(name, trigger):
    return Runnable(name, trigger, lambda ctx: None, wcet=1000)


def test_rate_monotonic_levels():
    plan = [
        ("a", make_runnable("fast", TimingEvent(ms(5)))),
        ("a", make_runnable("mid", TimingEvent(ms(20)))),
        ("b", make_runnable("slow", TimingEvent(ms(100)))),
    ]
    priorities = assign_rm_priorities({}, plan)
    assert priorities["a.fast"] > priorities["a.mid"] > \
        priorities["b.slow"]
    assert priorities["b.slow"] == 1


def test_explicit_overrides_win():
    plan = [("a", make_runnable("fast", TimingEvent(ms(5))))]
    priorities = assign_rm_priorities({"a.fast": 77}, plan)
    assert priorities["a.fast"] == 77


def test_event_activated_runnables_get_sporadic_priority():
    plan = [
        ("a", make_runnable("periodic", TimingEvent(ms(10)))),
        ("b", make_runnable("reactive",
                            DataReceivedEvent("in", "v"))),
    ]
    # DataReceivedEvent validation happens at component level; the bare
    # Runnable is fine for priority assignment.
    priorities = assign_rm_priorities({}, plan)
    assert priorities["b.reactive"] == SPORADIC_PRIORITY
    assert priorities["a.periodic"] < SPORADIC_PRIORITY


def test_deterministic_for_equal_periods():
    plan = [
        ("a", make_runnable("x", TimingEvent(ms(10)))),
        ("b", make_runnable("y", TimingEvent(ms(10)))),
    ]
    first = assign_rm_priorities({}, plan)
    second = assign_rm_priorities({}, list(plan))
    assert first == second
    assert len(set(first.values())) == 2  # distinct levels


def test_simulator_executed_counter():
    sim = Simulator()
    for delay in (1, 2, 3):
        sim.schedule(delay, lambda: None)
    cancelled = sim.schedule(4, lambda: None)
    cancelled.cancel()
    sim.run_until(10)
    assert sim.executed == 3  # cancelled events do not count
