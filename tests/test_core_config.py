"""Tests for configuration classes (pre-compile / link-time / post-build)."""

import pytest

from repro.errors import ConfigurationError
from repro.core.config import (ConfigurationSet, LINK_TIME, POST_BUILD,
                               PRE_COMPILE)


def make_set():
    cfg = ConfigurationSet("EcuConfig")
    cfg.declare("os_tick", 1_000_000, PRE_COMPILE,
                validator=lambda v: v > 0)
    cfg.declare("task_stack", 2048, LINK_TIME)
    cfg.declare("can_baudrate", 500_000, POST_BUILD)
    return cfg


def test_declare_and_get():
    cfg = make_set()
    assert cfg.get("os_tick") == 1_000_000
    assert cfg.get("can_baudrate") == 500_000


def test_all_classes_editable_before_compile():
    cfg = make_set()
    cfg.set("os_tick", 2_000_000)
    cfg.set("task_stack", 4096)
    cfg.set("can_baudrate", 250_000)
    assert cfg.snapshot() == {"os_tick": 2_000_000, "task_stack": 4096,
                              "can_baudrate": 250_000}


def test_pre_compile_frozen_after_compile():
    cfg = make_set()
    cfg.compile()
    with pytest.raises(ConfigurationError):
        cfg.set("os_tick", 2_000_000)
    cfg.set("task_stack", 4096)  # link-time still editable
    cfg.set("can_baudrate", 250_000)


def test_link_time_frozen_after_link():
    cfg = make_set()
    cfg.compile()
    cfg.link()
    with pytest.raises(ConfigurationError):
        cfg.set("task_stack", 4096)
    cfg.set("can_baudrate", 125_000)  # post-build always editable
    assert cfg.get("can_baudrate") == 125_000


def test_stage_transitions_are_ordered():
    cfg = make_set()
    with pytest.raises(ConfigurationError):
        cfg.link()  # must compile first
    cfg.compile()
    with pytest.raises(ConfigurationError):
        cfg.compile()  # no double compile


def test_declare_after_compile_rejected():
    cfg = make_set()
    cfg.compile()
    with pytest.raises(ConfigurationError):
        cfg.declare("late", 1, POST_BUILD)


def test_validator_enforced_on_declare_and_set():
    cfg = ConfigurationSet("C")
    with pytest.raises(ConfigurationError):
        cfg.declare("n", -1, POST_BUILD, validator=lambda v: v > 0)
    cfg.declare("n", 5, POST_BUILD, validator=lambda v: v > 0)
    with pytest.raises(ConfigurationError):
        cfg.set("n", 0)


def test_unknown_parameter_and_class():
    cfg = make_set()
    with pytest.raises(ConfigurationError):
        cfg.get("missing")
    with pytest.raises(ConfigurationError):
        cfg.declare("x", 1, "bogus-class")
    with pytest.raises(ConfigurationError):
        cfg.declare("os_tick", 1, PRE_COMPILE)  # duplicate


def test_parameters_filter_by_class():
    cfg = make_set()
    assert [p.name for p in cfg.parameters(PRE_COMPILE)] == ["os_tick"]
    assert len(cfg.parameters()) == 3
