"""Tests for configuration classes (pre-compile / link-time / post-build)."""

import pytest

from repro.errors import ConfigurationError
from repro.core.config import (ConfigurationSet, LINK_TIME, POST_BUILD,
                               PRE_COMPILE)


def make_set():
    cfg = ConfigurationSet("EcuConfig")
    cfg.declare("os_tick", 1_000_000, PRE_COMPILE,
                validator=lambda v: v > 0)
    cfg.declare("task_stack", 2048, LINK_TIME)
    cfg.declare("can_baudrate", 500_000, POST_BUILD)
    return cfg


def test_declare_and_get():
    cfg = make_set()
    assert cfg.get("os_tick") == 1_000_000
    assert cfg.get("can_baudrate") == 500_000


def test_all_classes_editable_before_compile():
    cfg = make_set()
    cfg.set("os_tick", 2_000_000)
    cfg.set("task_stack", 4096)
    cfg.set("can_baudrate", 250_000)
    assert cfg.snapshot() == {"os_tick": 2_000_000, "task_stack": 4096,
                              "can_baudrate": 250_000}


def test_pre_compile_frozen_after_compile():
    cfg = make_set()
    cfg.compile()
    with pytest.raises(ConfigurationError):
        cfg.set("os_tick", 2_000_000)
    cfg.set("task_stack", 4096)  # link-time still editable
    cfg.set("can_baudrate", 250_000)


def test_link_time_frozen_after_link():
    cfg = make_set()
    cfg.compile()
    cfg.link()
    with pytest.raises(ConfigurationError):
        cfg.set("task_stack", 4096)
    cfg.set("can_baudrate", 125_000)  # post-build always editable
    assert cfg.get("can_baudrate") == 125_000


def test_stage_transitions_are_ordered():
    cfg = make_set()
    with pytest.raises(ConfigurationError):
        cfg.link()  # must compile first
    cfg.compile()
    with pytest.raises(ConfigurationError):
        cfg.compile()  # no double compile


def test_declare_after_compile_rejected():
    cfg = make_set()
    cfg.compile()
    with pytest.raises(ConfigurationError):
        cfg.declare("late", 1, POST_BUILD)


def test_validator_enforced_on_declare_and_set():
    cfg = ConfigurationSet("C")
    with pytest.raises(ConfigurationError):
        cfg.declare("n", -1, POST_BUILD, validator=lambda v: v > 0)
    cfg.declare("n", 5, POST_BUILD, validator=lambda v: v > 0)
    with pytest.raises(ConfigurationError):
        cfg.set("n", 0)


def test_unknown_parameter_and_class():
    cfg = make_set()
    with pytest.raises(ConfigurationError):
        cfg.get("missing")
    with pytest.raises(ConfigurationError):
        cfg.declare("x", 1, "bogus-class")
    with pytest.raises(ConfigurationError):
        cfg.declare("os_tick", 1, PRE_COMPILE)  # duplicate


def test_parameters_filter_by_class():
    cfg = make_set()
    assert [p.name for p in cfg.parameters(PRE_COMPILE)] == ["os_tick"]
    assert len(cfg.parameters()) == 3


# ----------------------------------------------------------------------
# Freeze semantics under concurrent post-build writes
# ----------------------------------------------------------------------
def test_concurrent_post_build_writes_keep_a_written_value():
    import threading

    cfg = make_set()
    cfg.compile()
    cfg.link()
    written = list(range(1, 33))
    barrier = threading.Barrier(8)

    def writer(values):
        barrier.wait()
        for value in values:
            cfg.set("can_baudrate", value)

    threads = [threading.Thread(target=writer, args=(written[i::8],))
               for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Whatever interleaving happened, the final value is one of the
    # values some writer actually wrote — never torn, never stale.
    assert cfg.get("can_baudrate") in written


def test_writes_during_stage_transition_never_slip_past_freeze():
    import threading

    cfg = ConfigurationSet("C")
    cfg.declare("tuning", 0, PRE_COMPILE)
    start = threading.Barrier(9)
    outcomes = []
    lock = threading.Lock()

    def writer(value):
        start.wait()
        try:
            cfg.set("tuning", value)
            with lock:
                outcomes.append(("ok", value))
        except ConfigurationError:
            with lock:
                outcomes.append(("refused", value))

    def compiler():
        start.wait()
        cfg.compile()

    threads = [threading.Thread(target=writer, args=(v,))
               for v in range(1, 9)] + [threading.Thread(target=compiler)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert cfg.stage == "compiled"
    accepted = [v for status, v in outcomes if status == "ok"]
    # Every accepted write happened before the freeze; the final value
    # is the last accepted one (or the initial 0 if none won the race).
    assert cfg.get("tuning") in accepted + [0]
    # And a post-freeze retry is refused deterministically.
    with pytest.raises(ConfigurationError):
        cfg.set("tuning", 99)


def test_validator_rejected_concurrent_writes_leave_prior_value():
    import threading

    cfg = ConfigurationSet("C")
    cfg.declare("n", 5, POST_BUILD, validator=lambda v: v > 0)
    cfg.compile()
    cfg.link()
    barrier = threading.Barrier(6)

    def bad_writer():
        barrier.wait()
        for __ in range(50):
            try:
                cfg.set("n", -1)
            except ConfigurationError:
                pass

    def good_writer():
        barrier.wait()
        for __ in range(50):
            cfg.set("n", 7)

    threads = [threading.Thread(target=bad_writer) for __ in range(3)] \
        + [threading.Thread(target=good_writer) for __ in range(3)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    # Rejected writes raised *before* assignment: the value is either
    # the initial 5 or an accepted 7, never the rejected -1.
    assert cfg.get("n") in (5, 7)


def test_configuration_set_pickles_without_its_lock():
    import pickle

    # No lambda validators here: the point is that the *lock* is
    # dropped and recreated, so the set itself must be picklable.
    cfg = ConfigurationSet("EcuConfig")
    cfg.declare("os_tick", 1_000_000, PRE_COMPILE)
    cfg.declare("task_stack", 2048, LINK_TIME)
    cfg.declare("can_baudrate", 500_000, POST_BUILD)
    cfg.compile()
    clone = pickle.loads(pickle.dumps(cfg))
    assert clone.stage == "compiled"
    assert clone.get("can_baudrate") == 500_000
    clone.set("can_baudrate", 250_000)  # fresh lock works
    assert clone.get("can_baudrate") == 250_000
    with pytest.raises(ConfigurationError):
        clone.set("os_tick", 1)  # freeze survives the round trip


def _even(value) -> bool:
    """Module-level validator: lambdas don't survive the pickle
    round-trip the stress test takes mid-storm."""
    return value % 2 == 0


def test_concurrent_read_write_pickle_stress():
    """Sustained hammer: writers (valid and validator-rejected values),
    readers (get + snapshot) and picklers (dumps + loads + use) all run
    against one live set at once, with a link() transition mid-flight.

    Invariants: no deadlock, every observed value satisfies the
    validator (a rejected or refused write never half-lands), every
    pickle taken mid-storm deserializes to a usable set, and the set
    still works after the storm.
    """
    import pickle
    import threading

    cfg = ConfigurationSet("StressConfig")
    cfg.declare("gain", 0, POST_BUILD, validator=_even)
    cfg.declare("map_variant", "A", POST_BUILD)
    cfg.declare("task_stack", 2048, LINK_TIME)
    cfg.compile()  # post-build writable, link-time still editable

    iterations = 300
    start = threading.Barrier(10)
    errors: list = []

    def writer(base):
        start.wait()
        for i in range(iterations):
            value = base + i
            try:
                cfg.set("gain", value)
            except ConfigurationError:
                if value % 2 == 0:
                    errors.append(("even value rejected", value))
            try:
                cfg.set("task_stack", 4096 + value)
            except ConfigurationError:
                pass  # refused once link() lands — that is the contract

    def reader():
        start.wait()
        for __ in range(iterations):
            if cfg.get("gain") % 2 != 0:
                errors.append(("odd value observed", cfg.get("gain")))
            snap = cfg.snapshot()
            if snap["gain"] % 2 != 0:
                errors.append(("odd value in snapshot", snap["gain"]))

    def pickler():
        start.wait()
        for __ in range(iterations // 10):
            try:
                clone = pickle.loads(pickle.dumps(cfg))
                if clone.get("gain") % 2 != 0:
                    errors.append(("odd value in pickle",
                                   clone.get("gain")))
                clone.set("gain", 2_000_000)  # fresh lock must work
                if clone.stage not in ("compiled", "linked"):
                    errors.append(("bad stage in pickle", clone.stage))
            except Exception as exc:  # any failure fails the test
                errors.append(("pickler raised", repr(exc)))

    def linker():
        start.wait()
        try:
            cfg.link()
        except ConfigurationError:
            pass

    threads = ([threading.Thread(target=writer, args=(b,))
                for b in (0, 1000, 2000, 3000)]
               + [threading.Thread(target=reader) for __ in range(3)]
               + [threading.Thread(target=pickler) for __ in range(2)]
               + [threading.Thread(target=linker)])
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "stress run deadlocked"
    assert not errors, errors[:5]

    # The set survives the storm: post-build still writable, the
    # mid-storm link() froze task_stack, the validator still bites.
    assert cfg.stage == "linked"
    cfg.set("gain", 42)
    assert cfg.get("gain") == 42
    with pytest.raises(ConfigurationError):
        cfg.set("gain", 43)
    with pytest.raises(ConfigurationError):
        cfg.set("task_stack", 1)
