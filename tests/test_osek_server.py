"""Tests for deferrable-server reservation scheduling."""

import pytest

from repro.errors import ConfigurationError
from repro.osek import (DeferrableServerScheduler, EcuKernel, ServerSpec,
                        TaskSpec)
from repro.sim import Simulator
from repro.units import ms


def make_kernel(servers):
    sim = Simulator()
    sched = DeferrableServerScheduler(servers)
    kernel = EcuKernel(sim, sched, name="RSV-ECU")
    return sim, kernel, sched


def test_server_spec_validation():
    with pytest.raises(ConfigurationError):
        ServerSpec("S", budget=0, period=ms(10), priority=1)
    with pytest.raises(ConfigurationError):
        ServerSpec("S", budget=ms(11), period=ms(10), priority=1)
    with pytest.raises(ConfigurationError):
        DeferrableServerScheduler([
            ServerSpec("S", budget=ms(1), period=ms(10), priority=1),
            ServerSpec("S", budget=ms(1), period=ms(10), priority=2)])


def test_task_runs_within_budget():
    sim, kernel, sched = make_kernel(
        [ServerSpec("P", budget=ms(2), period=ms(10), priority=5)])
    kernel.add_task(TaskSpec("T", wcet=ms(1), period=ms(10), partition="P"))
    sim.run_until(ms(30))
    assert kernel.tasks["T"].jobs_completed == 3
    assert kernel.response_times("T") == [ms(1)] * 3


def test_budget_exhaustion_suspends_partition():
    sim, kernel, sched = make_kernel(
        [ServerSpec("P", budget=ms(2), period=ms(10), priority=5)])
    kernel.add_task(TaskSpec("T", wcet=ms(5), period=ms(20), deadline=ms(20),
                             partition="P"))
    sim.run_until(ms(40))
    # 2 ms served per 10 ms period: runs [0,2), [10,12), [12? no: budget]
    # -> completes 5 ms of work at t=21 (2+2+1).
    assert kernel.response_times("T") == [ms(21)]
    assert sched.stats()["P"]["exhaustions"] >= 2


def test_overrunning_partition_cannot_starve_other_partition():
    """The reservation claim: a runaway partition's interference on another
    partition is bounded by its budget."""
    sim, kernel, sched = make_kernel([
        ServerSpec("ROGUE", budget=ms(2), period=ms(10), priority=10),
        ServerSpec("SAFE", budget=ms(3), period=ms(10), priority=5),
    ])
    # ROGUE demands 100% CPU at the highest priority.
    kernel.add_task(TaskSpec("R", wcet=ms(50), period=ms(10), priority=9,
                             deadline=ms(1000), partition="ROGUE",
                             max_activations=100))
    kernel.add_task(TaskSpec("V", wcet=ms(2), period=ms(10), priority=1,
                             partition="SAFE"))
    sim.run_until(ms(100))
    assert kernel.deadline_misses("V") == 0
    # V waits out at most ROGUE's 2 ms budget each period.
    assert max(kernel.response_times("V")) <= ms(4)


def test_unreserved_task_competes_at_own_priority():
    sim, kernel, sched = make_kernel(
        [ServerSpec("P", budget=ms(2), period=ms(10), priority=5)])
    kernel.add_task(TaskSpec("RES", wcet=ms(1), period=ms(10), partition="P"))
    kernel.add_task(TaskSpec("FREE", wcet=ms(1), period=ms(10), priority=7))
    sim.run_until(ms(10) - 1)
    # FREE's priority 7 beats the server's 5.
    assert kernel.trace.times("task.start", "FREE") == [0]
    assert kernel.trace.times("task.start", "RES") == [ms(1)]


def test_replenishment_restores_capacity():
    sim, kernel, sched = make_kernel(
        [ServerSpec("P", budget=ms(2), period=ms(10), priority=5)])
    kernel.add_task(TaskSpec("T", wcet=ms(2), period=ms(10), partition="P"))
    sim.run_until(ms(5))
    assert sched.capacity("P") == 0
    sim.run_until(ms(11))
    assert sched.capacity("P") == ms(2)
    stats = sched.stats()["P"]
    assert stats["replenishments"] == 1


def test_deferrable_server_preserves_budget_when_idle():
    """Budget is not consumed by idleness — a late-arriving job still gets
    the full budget (the 'deferrable' property)."""
    sim, kernel, sched = make_kernel(
        [ServerSpec("P", budget=ms(2), period=ms(10), priority=5)])
    task = kernel.add_task(TaskSpec("LATE", wcet=ms(2), priority=1,
                                    deadline=ms(5), partition="P"))
    sim.schedule(ms(8), lambda: kernel.activate(task))
    sim.run_until(ms(11))
    # Arrives at 8, budget still full, runs [8,10) and completes.
    assert kernel.response_times("LATE") == [ms(2)]
