"""Unit tests for generator-based processes and signals."""

import pytest

from repro.errors import SimulationError
from repro.sim import Delay, Signal, Simulator, Wait, all_done, spawn


def test_process_runs_segments_at_right_times():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield Delay(10)
        times.append(sim.now)
        yield Delay(15)
        times.append(sim.now)

    spawn(sim, proc())
    sim.run()
    assert times == [0, 10, 25]


def test_process_result_captured():
    sim = Simulator()

    def proc():
        yield Delay(5)
        return "finished"

    p = spawn(sim, proc())
    sim.run()
    assert p.done
    assert p.result == "finished"


def test_signal_wakes_waiting_process_with_value():
    sim = Simulator()
    sig = Signal("go")
    got = []

    def waiter():
        value = yield Wait(sig)
        got.append((sim.now, value))

    spawn(sim, waiter())
    sim.schedule(40, lambda: sig.fire("payload"))
    sim.run()
    assert got == [(40, "payload")]


def test_signal_wakes_all_waiters_once():
    sim = Simulator()
    sig = Signal()
    woken = []

    def waiter(i):
        yield Wait(sig)
        woken.append(i)

    for i in range(3):
        spawn(sim, waiter(i))
    sim.schedule(10, sig.fire)
    sim.schedule(20, sig.fire)  # nobody left waiting
    sim.run()
    assert sorted(woken) == [0, 1, 2]
    assert sig.fire_count == 2


def test_signal_is_not_sticky():
    """A fire before the wait is not remembered (broadcast semantics)."""
    sim = Simulator()
    sig = Signal()
    woken = []

    def late_waiter():
        yield Delay(50)
        yield Wait(sig)
        woken.append(sim.now)

    spawn(sim, late_waiter())
    sim.schedule(10, sig.fire)
    sim.run_until(1000)
    assert woken == []
    assert sig.waiter_count == 1


def test_kill_stops_process():
    sim = Simulator()
    ticks = []

    def proc():
        while True:
            yield Delay(10)
            ticks.append(sim.now)

    p = spawn(sim, proc())
    sim.schedule(35, p.kill)
    sim.run_until(100)
    assert ticks == [10, 20, 30]
    assert p.done


def test_process_bad_yield_raises():
    sim = Simulator()

    def proc():
        yield "nonsense"

    spawn(sim, proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Delay(-5)


def test_all_done_helper():
    sim = Simulator()

    def proc(n):
        yield Delay(n)

    procs = [spawn(sim, proc(n)) for n in (5, 10)]
    assert not all_done(procs)
    sim.run()
    assert all_done(procs)
