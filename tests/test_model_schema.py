"""Schema validation error paths of :mod:`repro.model.schema`.

The validator's contract is that every rejection names the offending
path and says what is wrong in plain words — these tests pin the
messages for the error classes the ISSUE calls out (unknown format
version, missing subsystem section, dangling references) plus the
aggregate behaviours (multiple problems reported at once, the
exception type hierarchy, digest canonicalization).
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.model import (Model, ModelValidationError, model_digest,
                         validate_document)
from repro.model.scenarios import load_scenario


def _valid_doc():
    """A known-valid document to perturb (deep copy via JSON)."""
    doc = load_scenario("adas-fusion").document
    return json.loads(json.dumps(doc))


def test_valid_document_has_no_problems():
    assert validate_document(_valid_doc()) == []


def test_not_a_model_document():
    problems = validate_document({"tasksets": {}})
    assert problems
    assert "format" in problems[0]


def test_unknown_format_version():
    doc = _valid_doc()
    doc["format_version"] = 99
    problems = validate_document(doc)
    assert len(problems) == 1
    assert "format_version: unknown version 99" in problems[0]
    assert "version(s) 1" in problems[0]


def test_missing_subsystem_section():
    doc = _valid_doc()
    del doc["osek"]
    problems = validate_document(doc)
    assert any("missing required section 'osek'" in p for p in problems)


def test_missing_com_section():
    doc = _valid_doc()
    del doc["com"]
    problems = validate_document(doc)
    assert any("missing required section 'com'" in p for p in problems)


def test_dangling_signal_to_frame_reference():
    doc = _valid_doc()
    doc["com"]["frames"][0]["ipdu"]["name"] = "GHOST"
    problems = validate_document(doc)
    assert any("GHOST" in p and "dangling" in p for p in problems)


def test_dangling_chain_task_reference():
    doc = _valid_doc()
    doc["com"]["chains"][0]["producer"] = "NOPE.task"
    problems = validate_document(doc)
    assert any("'NOPE.task'" in p and "is not a task of ECU" in p
               for p in problems)


def test_dangling_critical_section_references():
    doc = _valid_doc()
    doc["osek"]["critical_sections"][0]["resource"] = "R.ghost"
    problems = validate_document(doc)
    assert any("R.ghost" in p for p in problems)


def test_reserved_network_must_be_null():
    doc = _valid_doc()
    doc["network"]["ttp"] = {"nodes": 4}
    problems = validate_document(doc)
    assert any("ttp" in p and "reserved" in p for p in problems)


def test_duplicate_task_names():
    doc = _valid_doc()
    ecu = doc["osek"]["ecus"]["RDR"]
    ecu["tasks"].append(dict(ecu["tasks"][0]))
    problems = validate_document(doc)
    assert any("duplicate task name" in p for p in problems)


def test_multiple_problems_reported_together():
    doc = _valid_doc()
    doc["network"]["ttp"] = {"nodes": 4}
    doc["com"]["chains"][0]["consumer"] = "NOPE.sink"
    problems = validate_document(doc)
    assert len(problems) >= 2


def test_ensure_valid_raises_model_validation_error():
    doc = _valid_doc()
    doc["format_version"] = 99
    with pytest.raises(ModelValidationError) as excinfo:
        Model.from_document(doc)
    assert excinfo.value.problems
    assert "unknown version" in str(excinfo.value)
    # ModelValidationError is a ConfigurationError: existing callers
    # that catch the base class keep working.
    assert isinstance(excinfo.value, ConfigurationError)


def test_digest_key_order_invariant():
    doc = _valid_doc()
    shuffled = {key: doc[key] for key in reversed(list(doc))}
    assert model_digest(doc) == model_digest(shuffled)


def test_digest_sensitive_to_content():
    doc = _valid_doc()
    digest = model_digest(doc)
    doc["meta"]["name"] = "renamed"
    assert model_digest(doc) != digest
