"""End-to-end acceptance for the measurement & calibration plane.

The tentpole walk: bundled scenario -> registry -> attach to the live
simulation -> cyclic DAQ list into an MTF store -> post-build
calibration applied mid-run while a pre-compile write is refused ->
the MTF file summarized by ``repro stats`` and seek-queried in O(1)
blocks.  Plus the determinism contract: DAQ digests are byte-identical
across ``jobs=1``, ``jobs=4`` and a resumed run.
"""

import pytest

from repro.errors import ConfigurationError
from repro.meas import (MeasurementService, MtfReader, MtfWriter,
                        build_registry, default_daq, measure_models)
from repro.model.cli import model_from_ref
from repro.units import ms, us
from repro.verify.oracle import build_system


@pytest.fixture(scope="module")
def scenario():
    return model_from_ref("adas-fusion")


def test_full_measurement_walk(tmp_path, scenario):
    # 1. Registry from the bundled scenario: stable digest.
    registry = build_registry(scenario)
    assert registry.digest() == build_registry(scenario).digest()

    # 2. Attach to the live simulation.
    system = scenario.build()
    built = build_system(system)
    service = MeasurementService.attach(built, system)
    assert service.registry.digest() == registry.digest()
    service.connect()

    # 3. Cyclic DAQ list streaming into an MTF store.
    path = str(tmp_path / "walk.mtf")
    service.start_daq(default_daq(service.registry, period=ms(1)),
                      sink=MtfWriter(path, chunk_records=16))

    # 4. Mid-run calibration: schedule a post-build write and a
    #    pre-compile attempt while the simulation is running.
    outcome = {}

    def calibrate():
        old = service.read("calib.chain.timeout")
        service.write("calib.chain.timeout", old * 2)
        outcome["applied"] = service.read("calib.chain.timeout")
        try:
            service.write("calib.chain.data_id", 999)
        except ConfigurationError as exc:
            outcome["refused"] = str(exc)

    built.sim.schedule_at(ms(20), calibrate)
    built.sim.run_until(ms(60))
    service.detach()

    # The post-build write took effect on the live receiver; the
    # pre-compile write was refused with the freeze message.
    assert outcome["applied"] == built.receiver.profile.timeout
    assert "pre-compile" in outcome["refused"]
    assert service.writes_applied == 1 and service.writes_refused == 1
    frame = service.dem.event("meas.calibration").freeze_frame
    assert frame["parameter"] == "chain.timeout"
    assert frame["time"] == ms(20)

    # 5. The MTF store is sealed, summarized by `repro stats`, and a
    #    narrow seek touches only the overlapping blocks.
    from repro.obs.stats import summarize_paths

    summary = summarize_paths([path])
    assert "MTF store" in summary and "daq.daq0:sim.now" in summary
    with MtfReader(path) as reader:
        # 61 ticks in 16-record blocks: [0,15] [16,31] [32,47] [48,60]
        # ms — a query inside the second block reads only that block.
        rows = reader.read("daq.daq0:sim.now", start=ms(20), end=ms(24))
        assert [t for t, __ in rows] == [ms(t) for t in range(20, 25)]
        assert reader.blocks_read == 1
        assert reader.block_count("daq.daq0:sim.now") == 4


def test_daq_digest_parity_jobs_and_resume(tmp_path, scenario):
    report_1 = measure_models([scenario], period=us(500),
                              horizon=ms(30), jobs=1)
    report_4 = measure_models([scenario], period=us(500),
                              horizon=ms(30), jobs=4)
    assert report_1.sample_count == report_4.sample_count > 0
    assert report_1.digest() == report_4.digest()
    # A checkpointed run resumed from its own journal digests the same.
    journal = str(tmp_path / "daq.jsonl")
    measure_models([scenario], period=us(500), horizon=ms(30),
                   checkpoint=journal)
    resumed = measure_models([scenario], period=us(500), horizon=ms(30),
                             checkpoint=journal, resume=True)
    assert resumed.digest() == report_1.digest()


def test_verify_with_daq_keeps_report_digest(scenario):
    from repro.model import verify_models

    plain = verify_models([scenario])
    with_daq = verify_models([scenario], daq_period=ms(1))
    # DAQ riding along must not perturb the verification digest...
    assert plain.digest() == with_daq.digest()
    assert plain.passed and with_daq.passed
    # ...while the measurement digest is populated and jobs-invariant.
    assert with_daq.daq_sample_count > 0
    parallel = verify_models([scenario], daq_period=ms(1), jobs=2)
    assert parallel.measurement_digest() == with_daq.measurement_digest()
    assert plain.daq_sample_count == 0


def test_verify_many_with_daq_parity():
    from repro.verify import verify_many

    one = verify_many(7, 2, "small", daq_period=ms(1))
    two = verify_many(7, 2, "small", daq_period=ms(1), jobs=4)
    assert one.measurement_digest() == two.measurement_digest()
    assert one.daq_sample_count == two.daq_sample_count > 0
    assert one.digest() == two.digest()


def test_campaign_with_daq_keeps_report_digest():
    from repro.faults import ReferenceWorld, reference_cells, run_campaign

    cells = reference_cells()[:2]
    plain = run_campaign(ReferenceWorld, cells, horizon=ms(300))
    with_daq = run_campaign(ReferenceWorld, cells, horizon=ms(300),
                            daq_period=ms(1))
    assert plain.digest() == with_daq.digest()
    assert with_daq.daq_sample_count > 0 and plain.daq_sample_count == 0
    parallel = run_campaign(ReferenceWorld, cells, horizon=ms(300),
                            daq_period=ms(1), jobs=2)
    assert parallel.measurement_digest() == with_daq.measurement_digest()


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_meas_cli_registry(capsys):
    from repro.meas.cli import meas_command

    assert meas_command(["registry", "adas-fusion"]) == 0
    out = capsys.readouterr().out
    assert "registry digest: sha256:" in out
    assert "calib.chain.timeout" in out and "post-build" in out


def test_meas_cli_daq_with_mtf(tmp_path, capsys):
    from repro.meas.cli import meas_command

    path = str(tmp_path / "cli.mtf")
    assert meas_command(["daq", "adas-fusion", "--period-us", "1000",
                         "--horizon-ms", "20", "--mtf-out", path]) == 0
    out = capsys.readouterr().out
    assert "measurement digest: sha256:" in out
    assert meas_command(["mtf", path]) == 0
    assert "MTF store" in capsys.readouterr().out
    assert meas_command(
        ["mtf", path, "--signal", "daq.daq0:adas-fusion:sim.now",
         "--start", "0", "--end", "2000000"]) == 0
    assert len(capsys.readouterr().out.splitlines()) == 3


def test_meas_cli_bad_inputs(tmp_path, capsys):
    from repro.meas.cli import meas_command

    assert meas_command(["registry", "/no/such/model.json"]) == 2
    text = tmp_path / "plain.txt"
    text.write_text("hello")
    assert meas_command(["mtf", str(text)]) == 2


def test_main_dispatches_meas(capsys):
    from repro.__main__ import main

    assert main(["repro", "meas", "registry", "adas-fusion"]) == 0
    assert "registry digest" in capsys.readouterr().out
    assert main(["repro", "bogus"]) == 2
    assert "'meas'" in capsys.readouterr().out


def test_main_verify_daq_requires_flag_pairing(capsys):
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["repro", "verify", "--mtf-out", "/tmp/x.mtf"])
