"""Round-trip fidelity between the legacy corpus format and the
versioned model exchange format.

The exchange format restructures the flat corpus dict (COM/network
split, TDMA as an ECU entry) but must lose nothing: replaying every
persisted corpus seed through ``legacy -> model -> legacy`` has to
reproduce the original system dict byte-for-byte, and
``model -> system -> model`` has to reproduce the identical model
digest.  These are the properties that let the fuzzer's corpus, the
perf cache keys (``KEY_FORMAT`` payloads) and the new scenario
library all speak through one converter layer without drift.
"""

import glob
import json
import os

import pytest

from repro.model import Model, model_digest, model_from_system
from repro.verify.generator import generate, generate_many
from repro.verify.serialize import system_from_dict, system_to_dict

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS_FILES = sorted(
    path for path in glob.glob(os.path.join(CORPUS_DIR, "*.json"))
    if os.path.basename(path) != "known_issues.json")


@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_corpus_seed_survives_model_roundtrip(path):
    """legacy dict -> Model -> system -> legacy dict is the identity."""
    with open(path, encoding="utf-8") as handle:
        original = json.load(handle)["system"]
    model = Model.from_data(original)
    assert system_to_dict(model.build()) == original
    # and the model view itself is digest-stable through its own trip
    assert model.digest() == model.roundtrip().digest()


@pytest.mark.parametrize("path", CORPUS_FILES,
                         ids=[os.path.basename(p) for p in CORPUS_FILES])
def test_corpus_seed_digest_unchanged_via_model(path):
    """Loading a corpus seed directly vs. through the model format
    produces the same model digest — the format is one canonical view,
    however the system arrived."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    direct = model_from_system(system_from_dict(payload["system"]))
    via_model = Model.from_data(payload).document
    assert model_digest(direct) == model_digest(via_model)


@pytest.mark.parametrize("seed", [1, 7, 42])
def test_generated_system_roundtrips(seed):
    system = generate(seed, "small")
    model = Model.from_system(system, "generated")
    rebuilt = model.build()
    assert system_to_dict(rebuilt) == system_to_dict(system)
    assert model.roundtrip().digest() == model.digest()


def test_all_size_classes_roundtrip():
    for size in ("small", "medium", "large"):
        for system in generate_many(3, 2, size):
            model = Model.from_system(system)
            assert system_to_dict(model.build()) == system_to_dict(system)
            assert model.roundtrip().digest() == model.digest()


def test_counterexample_payload_autodetected():
    """Model.from_data accepts a whole corpus counterexample payload
    (unwrapping its ``system`` entry)."""
    if not CORPUS_FILES:
        pytest.skip("no corpus files")
    with open(CORPUS_FILES[0], encoding="utf-8") as handle:
        payload = json.load(handle)
    model = Model.from_data(payload)
    assert system_to_dict(model.build()) == payload["system"]


def test_legacy_loader_reads_model_documents():
    """system_from_dict autodetects a model document, so every legacy
    consumer reads the new format for free."""
    system = generate(11, "small")
    doc = model_from_system(system)
    rebuilt = system_from_dict(doc)
    assert system_to_dict(rebuilt) == system_to_dict(system)
