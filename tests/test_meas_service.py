"""Tests for the XCP-like measurement & calibration service."""

import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.meas.mtf import MtfReader, MtfWriter
from repro.meas.service import (CALIBRATION_DTC, CALIBRATION_EVENT, DaqList,
                                MeasurementService, attach_world,
                                default_daq, samples_digest)
from repro.units import ms, us
from repro.verify.generator import generate as generate_system
from repro.verify.oracle import build_system


@pytest.fixture
def live():
    """A freshly built small system with an attached service."""
    system = generate_system(seed=7, size="small")
    built = build_system(system)
    service = MeasurementService.attach(built, system)
    return built, system, service


def test_connection_gate(live):
    __, __, service = live
    with pytest.raises(MeasurementError):
        service.read("sim.now")
    service.connect()
    assert service.read("sim.now") == 0
    service.disconnect()
    with pytest.raises(MeasurementError):
        service.poll()


def test_read_measurements_and_characteristics(live):
    built, system, service = live
    service.connect()
    built.sim.run_until(ms(50))
    polled = service.poll()
    assert polled["sim.now"] == ms(50)
    assert polled["sim.executed"] > 0
    busy = [v for k, v in polled.items() if k.endswith("busy_ns")]
    assert busy and all(v >= 0 for v in busy)
    # Characteristics read through the configuration set.
    assert service.read("calib.chain.timeout") \
        == service.config.get("chain.timeout")
    assert service.read("calib.dem.debounce_threshold") == 1


def test_write_measurement_is_read_only(live):
    __, __, service = live
    service.connect()
    with pytest.raises(MeasurementError):
        service.write("sim.now", 5)


def test_pre_compile_write_refused_value_intact(live):
    __, __, service = live
    service.connect()
    old = service.read("calib.chain.data_id")
    with pytest.raises(ConfigurationError) as excinfo:
        service.write("calib.chain.data_id", old + 1)
    assert "pre-compile" in str(excinfo.value)
    assert service.read("calib.chain.data_id") == old
    assert service.writes_refused == 1 and service.writes_applied == 0
    # Refused writes must not confirm the calibration DEM event.
    assert not service.dem.event(CALIBRATION_EVENT).confirmed


def test_link_time_write_refused(live):
    __, __, service = live
    service.connect()
    with pytest.raises(ConfigurationError) as excinfo:
        service.write("calib.can.bitrate_bps", 250_000)
    assert "link-time" in str(excinfo.value)


def test_post_build_write_applied_and_freeze_frame_logged(live):
    built, system, service = live
    service.connect()
    built.sim.run_until(ms(10))
    old = service.read("calib.chain.timeout")
    new = old * 2
    service.write("calib.chain.timeout", new)
    assert service.read("calib.chain.timeout") == new
    # The applier poked the live receiver profile (shared object).
    assert built.receiver.profile.timeout == new
    # DEM confirmed with a freeze frame naming the write.
    event = service.dem.event(CALIBRATION_EVENT)
    assert event.confirmed and event.dtc == CALIBRATION_DTC
    frame = event.freeze_frame
    assert frame["parameter"] == "chain.timeout"
    assert frame["old"] == old and frame["new"] == new
    assert frame["address"] \
        == service.registry.entry("calib.chain.timeout").address
    assert frame["time"] == ms(10)
    # And the service trace carries the audit record.
    records = service.trace.records("meas.write")
    assert [r.subject for r in records] == ["chain.timeout"]


def test_validator_rejected_write_keeps_prior_value(live):
    __, __, service = live
    service.connect()
    with pytest.raises(ConfigurationError):
        service.write("calib.chain.timeout", -1)
    assert service.writes_refused == 1
    assert service.read("calib.chain.timeout") > 0


def test_daq_samples_on_sim_time(live):
    built, system, service = live
    service.connect()
    daq = default_daq(service.registry, period=ms(1))
    service.start_daq(daq)
    built.sim.run_until(ms(10))
    service.detach()
    ticks = sorted({row[0] for row in service.samples})
    # One tick per period from t=0 through the horizon.
    assert ticks == [ms(i) for i in range(11)]
    per_tick = len(daq.entries)
    assert len(service.samples) == 11 * per_tick
    assert not service.connected


def test_daq_digest_is_deterministic():
    digests = []
    for __ in range(2):
        system = generate_system(seed=7, size="small")
        built = build_system(system)
        service = MeasurementService.attach(built, system)
        service.connect()
        service.start_daq(default_daq(service.registry, period=ms(2)))
        built.sim.run_until(ms(40))
        service.detach()
        digests.append(service.samples_digest())
    assert digests[0] == digests[1]


def test_daq_sink_receives_batches_and_is_sealed(tmp_path, live):
    built, system, service = live
    service.connect()
    path = str(tmp_path / "daq.mtf")
    service.start_daq(DaqList("fast", ("sim.now", "sim.executed"),
                              period=us(500)), sink=MtfWriter(path))
    built.sim.run_until(ms(5))
    service.detach()  # stop_daq seals the MTF directory
    with MtfReader(path) as reader:
        assert reader.signals() == ["daq.fast:sim.executed",
                                    "daq.fast:sim.now"]
        rows = reader.read("daq.fast:sim.now")
        assert [t for t, __ in rows] == [us(500) * i for i in range(11)]
        assert all(data["value"] == t for t, data in rows)


def test_daq_validates_names_and_duplicates(live):
    __, __, service = live
    service.connect()
    with pytest.raises(ConfigurationError):
        service.start_daq(DaqList("bad", ("no.such.entry",), period=ms(1)))
    service.start_daq(DaqList("d", ("sim.now",), period=ms(1)))
    with pytest.raises(MeasurementError):
        service.start_daq(DaqList("d", ("sim.now",), period=ms(1)))
    with pytest.raises(MeasurementError):
        service.stop_daq("never-started")


def test_daq_list_validation():
    with pytest.raises(ConfigurationError):
        DaqList("d", ("x",), period=0)
    with pytest.raises(ConfigurationError):
        DaqList("d", (), period=ms(1))
    with pytest.raises(ConfigurationError):
        DaqList("d", ("x",), period=ms(1), offset=-1)


def test_samples_digest_orders_canonically():
    rows_a = [[0, "d", "x", 1], [1, "d", "x", 2]]
    assert samples_digest(rows_a) == samples_digest(list(rows_a))
    assert samples_digest(rows_a) != samples_digest(rows_a[::-1])


def test_attach_world_generic_measurements():
    class World:
        pass

    from repro.sim import Simulator, Trace

    world = World()
    world.sim = Simulator()
    world.trace = Trace()
    world.trace.log(0, "a", "b")
    service = attach_world(world, node="MEAS:test")
    service.connect()
    polled = service.poll()
    assert polled["sim.now"] == 0
    assert polled["trace.records"] == 1
    assert service.config is None  # no calibration plane on worlds
