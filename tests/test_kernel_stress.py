"""Randomized stress tests: kernel invariants must hold for arbitrary
workloads under every scheduling policy."""

from hypothesis import given, settings, strategies as st

from repro.osek import (DeferrableServerScheduler, EcuKernel,
                        FixedPriorityScheduler, ServerSpec, TaskSpec,
                        TdmaScheduler, Window)
from repro.sim import Simulator
from repro.units import ms

HORIZON = ms(200)

task_params = st.lists(
    st.tuples(st.integers(min_value=1, max_value=8),     # wcet ms
              st.sampled_from([10, 20, 25, 40, 50]),      # period ms
              st.integers(min_value=1, max_value=9),      # priority
              st.integers(min_value=1, max_value=3)),     # max_activations
    min_size=1, max_size=6)


def build_specs(params):
    specs = []
    for index, (wcet, period, priority, max_act) in enumerate(params):
        specs.append(TaskSpec(
            f"t{index}", wcet=ms(min(wcet, period)), period=ms(period),
            priority=priority, partition=f"P{index % 2}",
            deadline=ms(1000), max_activations=max_act))
    return specs


def check_invariants(kernel, horizon):
    total_responses = 0
    for task in kernel.tasks.values():
        assert task.jobs_completed <= task.jobs_activated
        assert (task.jobs_activated + task.activations_lost
                >= task.jobs_completed)
        responses = kernel.response_times(task.name)
        total_responses += len(responses)
        assert len(responses) == task.jobs_completed
        for response in responses:
            # A job cannot finish faster than its execution demand.
            assert response >= task.spec.wcet
        # Per-job trace sanity: start never precedes activation,
        # completion never precedes start.
        starts = kernel.trace.times("task.start", task.name)
        completes = kernel.trace.times("task.complete", task.name)
        for s, c in zip(starts, completes):
            assert s <= c
    assert 0 <= kernel.busy_ns <= horizon
    # CPU conservation: busy time equals the sum of completed demand
    # plus work in progress; it is at least completed work.
    completed_demand = sum(t.jobs_completed * t.spec.wcet
                           for t in kernel.tasks.values())
    assert kernel.busy_ns >= completed_demand - ms(8)  # wip tolerance


@settings(max_examples=20, deadline=None)
@given(task_params, st.booleans())
def test_fixed_priority_invariants(params, preemptive):
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler(preemptive=preemptive))
    for spec in build_specs(params):
        kernel.add_task(spec)
    sim.run_until(HORIZON)
    check_invariants(kernel, HORIZON)


@settings(max_examples=20, deadline=None)
@given(task_params)
def test_tdma_invariants(params):
    sim = Simulator()
    scheduler = TdmaScheduler([Window(0, ms(4), "P0"),
                               Window(ms(5), ms(4), "P1")],
                              major_frame=ms(10))
    kernel = EcuKernel(sim, scheduler)
    for spec in build_specs(params):
        kernel.add_task(spec)
    sim.run_until(HORIZON)
    check_invariants(kernel, HORIZON)
    # Strict TDMA: no execution segments outside the owning window.
    for record in kernel.trace.records("task.start"):
        phase = record.time % ms(10)
        partition = kernel.tasks[record.subject].spec.partition
        if partition == "P0":
            assert 0 <= phase < ms(4)
        else:
            assert ms(5) <= phase < ms(9)


@settings(max_examples=20, deadline=None)
@given(task_params)
def test_server_invariants(params):
    sim = Simulator()
    scheduler = DeferrableServerScheduler([
        ServerSpec("P0", budget=ms(3), period=ms(10), priority=2),
        ServerSpec("P1", budget=ms(3), period=ms(10), priority=1),
    ])
    kernel = EcuKernel(sim, scheduler)
    for spec in build_specs(params):
        kernel.add_task(spec)
    sim.run_until(HORIZON)
    check_invariants(kernel, HORIZON)
    # Reservation cap: each partition may consume at most budget per
    # period (3 ms / 10 ms) plus one budget of carry-in.
    for partition in ("P0", "P1"):
        served = sum(
            t.jobs_completed * t.spec.wcet
            for t in kernel.tasks.values()
            if t.spec.partition == partition)
        assert served <= (HORIZON // ms(10) + 1) * ms(3)


@settings(max_examples=15, deadline=None)
@given(task_params, st.integers(min_value=1, max_value=5))
def test_budget_enforcement_never_lets_consumption_exceed_budget(params,
                                                                 budget_ms):
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    budget = ms(budget_ms)
    for spec in build_specs(params):
        spec.budget = budget
        kernel.add_task(spec)
    sim.run_until(HORIZON)
    for record in kernel.trace.records("task.budget_overrun"):
        assert record.data["consumed"] <= budget
    for task in kernel.tasks.values():
        for job in task.pending_jobs:
            assert job.consumed <= budget
