"""Adversarial interaction tests across subsystem boundaries."""

from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.osek import (EcuKernel, Execute, TaskSpec, TdmaScheduler,
                        WaitEvent, Window)
from repro.sim import Simulator
from repro.units import ms, us

DATA_IF = SenderReceiverInterface("d", {"v": UINT16})


def test_rte_sporadic_queue_overflow_is_graceful():
    """A producer flooding 100x faster than the consumer can complete
    must overflow the sporadic activation queue (losses counted), not
    wedge or crash the ECU — and service must recover afterwards."""
    producer = SwComponent("P")
    producer.provide("out", DATA_IF)

    def flood(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        ctx.write("out", "v", ctx.state["n"] % 65536)

    producer.runnable("tick", TimingEvent(us(100)), flood, wcet=us(10))
    consumer = SwComponent("C")
    consumer.require("in", DATA_IF)
    consumer.runnable("slow", DataReceivedEvent("in", "v"),
                      lambda ctx: None, wcet=ms(1))
    app = Composition("App")
    app.add(producer.instantiate("p"))
    app.add(consumer.instantiate("c"))
    app.connect("p", "out", "c", "in")
    system = SystemModel("flood")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("p", "E1")
    system.map("c", "E2")
    system.configure_bus("can")
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(100))
    task = runtime.kernels["E2"].tasks["c.slow"]
    # The consumer stayed saturated: ~100 completions (1 ms each)...
    assert 90 <= task.jobs_completed <= 101
    # ...while the surplus activations were dropped against the queue.
    assert task.activations_lost > 100
    assert len(task.pending_jobs) <= 16  # SPORADIC_QUEUE


def test_extended_task_woken_outside_its_tdma_window():
    """An event set while the task's partition window is closed must
    defer execution to the next window — strict TDMA holds even for
    event-driven continuation."""
    sim = Simulator()
    scheduler = TdmaScheduler([Window(0, ms(2), "A"),
                               Window(ms(5), ms(2), "B")],
                              major_frame=ms(10))
    kernel = EcuKernel(sim, scheduler)
    event = kernel.event("GO")
    progress = []

    def body(job):
        yield Execute(us(500))
        progress.append(("waiting", sim.now))
        yield WaitEvent(event)
        progress.append(("resumed", sim.now))
        yield Execute(us(500))

    task = kernel.add_task(TaskSpec("EXT", wcet=ms(1), priority=1,
                                    deadline=None, partition="A"),
                           body=body)
    kernel.activate(task)
    # Wake at t=3 ms: partition A's window [0,2) is closed.
    sim.schedule(ms(3), event.set)
    sim.run_until(ms(15))
    assert progress[0] == ("waiting", us(500))
    # Resumed (starts executing) only at the next A window: t=10 ms.
    assert progress[1] == ("resumed", ms(10))
    assert task.jobs_completed == 1


def test_same_instant_event_set_and_periodic_activation():
    """Deterministic ordering when an alarm-driven event set coincides
    with a periodic activation at the same instant."""
    sim = Simulator()
    from repro.osek import FixedPriorityScheduler
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    event = kernel.event("E")
    order = []

    def waiter_body(job):
        while True:
            yield WaitEvent(event)
            order.append(("woken", sim.now))
            yield Execute(us(100))

    waiter = kernel.add_task(TaskSpec("W", wcet=us(100), priority=5,
                                      deadline=None), body=waiter_body)
    kernel.activate(waiter)
    kernel.add_task(TaskSpec("P", wcet=us(100), period=ms(5), priority=1),
                    on_complete=lambda job: order.append(("periodic",
                                                          sim.now)))
    alarm = kernel.alarm_set_event("A", event)
    alarm.set_rel(ms(5), cycle=ms(5))
    sim.run_until(ms(12))
    # At t=5 ms both fire; the higher-priority waiter runs first
    # ("woken" is logged at wake, its execution occupies [5, 5.1] ms),
    # so the periodic job completes only at 5.2 ms.
    woken = [t for kind, t in order if kind == "woken"]
    periodic = [t for kind, t in order if kind == "periodic"]
    assert ms(5) in woken and ms(10) in woken
    assert min(t for t in periodic if t >= ms(5)) == ms(5) + us(200)
