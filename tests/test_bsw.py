"""Tests for basic software services."""

import pytest

from repro.errors import ConfigurationError
from repro.bsw import (AWAKE, BUS_SLEEP, CanGateway, CLEAR_DTC,
                       DiagnosticServer, ErrorEvent, ErrorManager, FAILED,
                       ModeMachine, NEGATIVE_RESPONSE, NmCluster,
                       NvramManager, PASSED, READ_DATA, READ_DTC,
                       READY_TO_SLEEP, WatchdogManager)
from repro.network import CanBus, CanFrameSpec
from repro.sim import Simulator
from repro.units import ms, us


# ----------------------------------------------------------------------
# Mode management
# ----------------------------------------------------------------------
def brake_modes():
    machine = ModeMachine("brakes", ["normal", "degraded", "safe_stop"],
                          "normal")
    machine.allow_chain("normal", "degraded", "safe_stop")
    machine.allow("degraded", "normal")
    return machine


def test_mode_switch_follows_declared_transitions():
    machine = brake_modes()
    assert machine.request("degraded")
    assert machine.current == "degraded"
    assert machine.request("normal")
    assert machine.request("degraded")
    assert machine.request("safe_stop")


def test_undeclared_transition_denied():
    machine = brake_modes()
    assert not machine.request("safe_stop")  # normal -> safe_stop missing
    assert machine.current == "normal"
    assert len(machine.trace.records("mode.denied")) == 1


def test_mode_entry_exit_callbacks_and_history():
    machine = brake_modes()
    calls = []
    machine.on_exit("normal", lambda: calls.append("exit-normal"))
    machine.on_entry("degraded", lambda: calls.append("enter-degraded"))
    machine.request("degraded")
    assert calls == ["exit-normal", "enter-degraded"]
    assert [m for __, m in machine.history] == ["normal", "degraded"]


def test_mode_request_current_is_noop():
    machine = brake_modes()
    assert machine.request("normal")
    assert len(machine.history) == 1


def test_mode_validation():
    with pytest.raises(ConfigurationError):
        ModeMachine("m", [], "x")
    with pytest.raises(ConfigurationError):
        ModeMachine("m", ["a", "a"], "a")
    with pytest.raises(ConfigurationError):
        ModeMachine("m", ["a"], "b")
    machine = brake_modes()
    with pytest.raises(ConfigurationError):
        machine.allow("normal", "ghost")


# ----------------------------------------------------------------------
# Error manager
# ----------------------------------------------------------------------
def test_debounce_confirms_after_threshold():
    dem = ErrorManager("ECU1")
    dem.register(ErrorEvent("sensor_open", dtc=0x1234, threshold=3))
    dem.report("sensor_open", FAILED)
    dem.report("sensor_open", FAILED)
    assert not dem.event("sensor_open").confirmed
    dem.report("sensor_open", FAILED)
    assert dem.event("sensor_open").confirmed
    assert dem.stored_dtcs() == [0x1234]


def test_debounce_passed_heals():
    dem = ErrorManager("ECU1")
    dem.register(ErrorEvent("e", dtc=1, threshold=2))
    changes = []
    dem.on_status_change(lambda ev, confirmed: changes.append(confirmed))
    dem.report("e", FAILED)
    dem.report("e", FAILED)
    dem.report("e", PASSED)
    dem.report("e", PASSED)
    assert changes == [True, False]
    # Healed, but the occurrence stays in diagnostic memory.
    assert dem.stored_dtcs() == [1]


def test_intermittent_fault_below_threshold_never_confirms():
    dem = ErrorManager("ECU1")
    dem.register(ErrorEvent("e", dtc=1, threshold=3))
    for __ in range(10):
        dem.report("e", FAILED)
        dem.report("e", PASSED)
        dem.report("e", PASSED)
    assert not dem.event("e").confirmed
    assert dem.stored_dtcs() == []


def test_freeze_frame_captured_with_context():
    dem = ErrorManager("ECU1", now=lambda: 42)
    dem.register(ErrorEvent("e", dtc=1, threshold=1))
    dem.report("e", FAILED, context={"speed": 88})
    frame = dem.event("e").freeze_frame
    assert frame["speed"] == 88 and frame["time"] == 42


def test_clear_dtcs():
    dem = ErrorManager("ECU1")
    dem.register(ErrorEvent("e", dtc=1, threshold=1))
    dem.report("e", FAILED)
    assert dem.clear_dtcs() == 1
    assert dem.stored_dtcs() == []


def test_snapshot_seq_increases_across_freeze_frame_refreshes():
    dem = ErrorManager("ECU1", now=lambda: 7)
    dem.register(ErrorEvent("a", dtc=1, threshold=1))
    dem.register(ErrorEvent("b", dtc=2, threshold=1))
    dem.report("a", FAILED)                      # confirm: seq 1
    seq_confirm = dem.snapshot()["a"]["seq"]
    dem.report("a", FAILED, context={"n": 1})    # refresh: seq 2
    seq_refresh1 = dem.snapshot()["a"]["seq"]
    dem.report("a", FAILED, context={"n": 2})    # refresh: seq 3
    seq_refresh2 = dem.snapshot()["a"]["seq"]
    # The simulated clock never moved, but the sequence numbers still
    # order the refreshes.
    assert seq_confirm < seq_refresh1 < seq_refresh2
    # Manager-wide monotonicity: a second event continues the sequence.
    dem.report("b", FAILED)
    assert dem.snapshot()["b"]["seq"] > seq_refresh2
    # Healing is a state change too.
    dem.report("a", PASSED)
    assert dem.snapshot()["a"]["seq"] > dem.snapshot()["b"]["seq"]


def test_snapshot_seq_zero_before_any_state_change():
    dem = ErrorManager("ECU1")
    dem.register(ErrorEvent("e", dtc=1, threshold=3))
    dem.report("e", FAILED)  # below threshold: no confirm, no seq
    assert dem.snapshot()["e"]["seq"] == 0


def test_error_manager_emits_dlt_on_confirm_and_heal():
    from repro import obs

    obs.disable()
    obs.reset()
    dem = ErrorManager("ECU1", now=lambda: 10)
    dem.register(ErrorEvent("e", dtc=0x42, threshold=1))
    obs.enable()
    try:
        dem.report("e", FAILED)
        dem.report("e", PASSED)
    finally:
        obs.disable()
    records = obs.dlt_channel().records
    assert [(r.severity, r.message) for r in records] == [
        ("error", "dem.confirmed"), ("info", "dem.healed")]
    assert all(r.app_id == "DEM" and r.ecu == "ECU1" for r in records)
    assert records[0].payload["dtc"] == 0x42
    obs.reset()


def test_error_manager_validation():
    dem = ErrorManager("ECU1")
    dem.register(ErrorEvent("e", dtc=1))
    with pytest.raises(ConfigurationError):
        dem.register(ErrorEvent("e", dtc=2))
    with pytest.raises(ConfigurationError):
        dem.report("ghost", FAILED)
    with pytest.raises(ConfigurationError):
        dem.report("e", "maybe")
    with pytest.raises(ConfigurationError):
        ErrorEvent("bad", dtc=1, threshold=0)


# ----------------------------------------------------------------------
# NVRAM
# ----------------------------------------------------------------------
def test_nvram_write_read_roundtrip():
    nv = NvramManager("ECU1")
    nv.define("calib", 16, default=b"\x01\x02")
    assert nv.read("calib")[:2] == b"\x01\x02"
    nv.write("calib", b"hello")
    assert nv.read("calib")[:5] == b"hello"


def test_nvram_corruption_recovered_from_mirror():
    failures = []
    nv = NvramManager("ECU1", on_failure=lambda b, o: failures.append(o))
    nv.define("crit", 8, redundant=True)
    nv.write("crit", b"DATA")
    nv.block("crit").corrupt(offset=0)
    assert nv.read("crit")[:4] == b"DATA"
    assert failures == ["recovered"]
    assert nv.recoveries == 1
    # Primary was repaired: subsequent reads are clean.
    assert nv.read("crit")[:4] == b"DATA"
    assert failures == ["recovered"]


def test_nvram_double_corruption_falls_back_to_defaults():
    failures = []
    nv = NvramManager("ECU1", on_failure=lambda b, o: failures.append(o))
    nv.define("crit", 8, redundant=True, default=b"\xAA")
    nv.write("crit", b"DATA")
    nv.block("crit").corrupt(offset=0)
    nv.block("crit").corrupt(offset=0, mirror=True)
    assert nv.read("crit")[0] == 0xAA
    assert failures == ["lost"]


def test_nvram_non_redundant_loss():
    nv = NvramManager("ECU1")
    nv.define("plain", 4)
    nv.write("plain", b"ab")
    nv.block("plain").corrupt(offset=1)
    assert nv.read("plain") == b"\x00" * 4
    assert nv.losses == 1


def test_nvram_validation():
    nv = NvramManager("ECU1")
    nv.define("b", 4)
    with pytest.raises(ConfigurationError):
        nv.define("b", 4)
    with pytest.raises(ConfigurationError):
        nv.write("b", b"toolong")
    with pytest.raises(ConfigurationError):
        nv.read("ghost")
    with pytest.raises(ConfigurationError):
        nv.block("b").corrupt(mirror=True)


# ----------------------------------------------------------------------
# Watchdog
# ----------------------------------------------------------------------
def test_watchdog_happy_path_no_violation():
    sim = Simulator()
    wdg = WatchdogManager(sim)
    wdg.supervise("task", window=ms(10))

    def kick():
        wdg.kick("task")
        sim.schedule(ms(5), kick)

    kick()
    sim.run_until(ms(100))
    assert wdg.status("task") == {"violated": False, "missed_windows": 0}


def test_watchdog_detects_silence():
    sim = Simulator()
    violations = []
    wdg = WatchdogManager(sim, on_violation=violations.append)
    wdg.supervise("task", window=ms(10), tolerance=1)

    # Kick twice then go silent.
    sim.schedule(ms(2), lambda: wdg.kick("task"))
    sim.schedule(ms(12), lambda: wdg.kick("task"))
    sim.run_until(ms(100))
    assert violations == ["task"]
    # Tolerance 1: violation after the 2nd consecutive missed window
    # (windows end at 30 and 40 ms).
    assert wdg.trace.records("wdg.violation")[0].time == ms(40)


def test_watchdog_tolerance_resets_on_kick():
    sim = Simulator()
    violations = []
    wdg = WatchdogManager(sim, on_violation=violations.append)
    wdg.supervise("task", window=ms(10), tolerance=1)
    # Miss one window, then resume kicking: no violation.
    for t in range(15, 100, 5):
        sim.schedule(ms(t), lambda: wdg.kick("task"))
    sim.run_until(ms(100))
    assert violations == []


def test_watchdog_validation():
    sim = Simulator()
    wdg = WatchdogManager(sim)
    wdg.supervise("e", window=ms(1))
    with pytest.raises(ConfigurationError):
        wdg.supervise("e", window=ms(1))
    with pytest.raises(ConfigurationError):
        wdg.kick("ghost")


# ----------------------------------------------------------------------
# Network management
# ----------------------------------------------------------------------
def test_bus_sleeps_when_all_release():
    sim = Simulator()
    nm = NmCluster(sim, ["a", "b"], nm_cycle=ms(1), sleep_timeout=ms(5))
    sim.schedule(ms(10), nm.node("a").release_network)
    sim.schedule(ms(20), nm.node("b").release_network)
    sim.run_until(ms(50))
    assert nm.bus_asleep
    assert nm.node("a").state == BUS_SLEEP
    sleep_time = nm.trace.records("nm.bus_sleep")[0].time
    assert sleep_time >= ms(24)  # last alive ~19-20ms + timeout 5ms


def test_bus_stays_awake_while_any_node_requests():
    sim = Simulator()
    nm = NmCluster(sim, ["a", "b"], nm_cycle=ms(1), sleep_timeout=ms(5))
    nm.node("a").release_network()
    sim.run_until(ms(50))
    assert not nm.bus_asleep
    assert nm.node("a").state == READY_TO_SLEEP
    assert nm.node("b").state == AWAKE


def test_wakeup_from_sleep():
    sim = Simulator()
    nm = NmCluster(sim, ["a", "b"], nm_cycle=ms(1), sleep_timeout=ms(5))
    nm.node("a").release_network()
    nm.node("b").release_network()
    sim.run_until(ms(20))
    assert nm.bus_asleep
    nm.node("a").request_network()
    sim.run_until(ms(40))
    assert not nm.bus_asleep
    assert nm.wake_count == 1
    assert nm.node("a").state == AWAKE
    assert nm.node("b").state == READY_TO_SLEEP


def test_nm_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        NmCluster(sim, [], ms(1), ms(5))
    with pytest.raises(ConfigurationError):
        NmCluster(sim, ["a"], ms(5), ms(5))


# ----------------------------------------------------------------------
# Diagnostics
# ----------------------------------------------------------------------
def test_diag_read_and_clear_dtcs():
    dem = ErrorManager("ECU1")
    dem.register(ErrorEvent("e", dtc=0xC0FFEE, threshold=1))
    dem.report("e", FAILED)
    diag = DiagnosticServer(dem)
    response = diag.handle(READ_DTC)
    assert response["service"] == READ_DTC + 0x40
    assert response["dtcs"] == [0xC0FFEE]
    assert diag.handle(CLEAR_DTC)["cleared"] == 1
    assert diag.handle(READ_DTC)["dtcs"] == []


def test_diag_read_data_by_identifier():
    dem = ErrorManager("ECU1")
    diag = DiagnosticServer(dem)
    diag.publish_data(0xF190, lambda: 777)
    response = diag.handle(READ_DATA, 0xF190)
    assert response["value"] == 777
    missing = diag.handle(READ_DATA, 0xDEAD)
    assert missing["service"] == NEGATIVE_RESPONSE


def test_diag_unsupported_service():
    diag = DiagnosticServer(ErrorManager("E"))
    response = diag.handle(0x99)
    assert response["service"] == NEGATIVE_RESPONSE
    assert response["rejected"] == 0x99


def test_diag_duplicate_data_id():
    diag = DiagnosticServer(ErrorManager("E"))
    diag.publish_data(1, lambda: 0)
    with pytest.raises(ConfigurationError):
        diag.publish_data(1, lambda: 0)


# ----------------------------------------------------------------------
# Gateway
# ----------------------------------------------------------------------
def test_gateway_forwards_between_buses():
    sim = Simulator()
    bus_a = CanBus(sim, 500_000, name="CAN-A")
    bus_b = CanBus(sim, 500_000, name="CAN-B")
    sender = bus_a.attach("sender")
    receiver = bus_b.attach("receiver")
    gw = CanGateway(sim, "GW", bus_a, bus_b, processing_delay=us(100))
    spec = CanFrameSpec("wheel_speed", 0x120, dlc=8)
    gw.route("wheel_speed", from_port="a", in_spec=spec)
    got = []
    receiver.on_receive(lambda s, m: got.append((sim.now, m.payload)))
    sender.send(spec, payload=55)
    sim.run()
    assert len(got) == 1
    assert got[0][1] == 55
    # Latency: one frame on A + gateway delay + one frame on B.
    assert got[0][0] == 2 * 270_000 + us(100)
    assert gw.forwarded == 1


def test_gateway_id_translation():
    sim = Simulator()
    bus_a = CanBus(sim, 500_000, name="A")
    bus_b = CanBus(sim, 500_000, name="B")
    sender = bus_a.attach("s")
    bus_b.attach("r")
    gw = CanGateway(sim, "GW", bus_a, bus_b)
    in_spec = CanFrameSpec("sig", 0x100, dlc=8)
    out_spec = CanFrameSpec("sig", 0x300, dlc=8)
    gw.route("sig", from_port="a", out_spec=out_spec)
    sender.send(in_spec, payload=1)
    sim.run()
    tx_b = bus_b.trace.records("can.tx_start", "sig")
    assert tx_b and tx_b[0].data["can_id"] == 0x300


def test_gateway_ignores_unrouted_frames():
    sim = Simulator()
    bus_a = CanBus(sim, 500_000, name="A")
    bus_b = CanBus(sim, 500_000, name="B")
    sender = bus_a.attach("s")
    bus_b.attach("r")
    gw = CanGateway(sim, "GW", bus_a, bus_b)
    sender.send(CanFrameSpec("noise", 0x100, dlc=8))
    sim.run()
    assert gw.forwarded == 0
    assert bus_b.frames_delivered == 0


def test_gateway_validation():
    sim = Simulator()
    bus_a = CanBus(sim, 500_000, name="A")
    bus_b = CanBus(sim, 500_000, name="B")
    with pytest.raises(ConfigurationError):
        CanGateway(sim, "GW", bus_a, bus_a)
    gw = CanGateway(sim, "GW", bus_a, bus_b)
    with pytest.raises(ConfigurationError):
        gw.route("f", from_port="c",
                 in_spec=CanFrameSpec("f", 1))
    with pytest.raises(ConfigurationError):
        gw.route("f", from_port="a")  # neither spec given
