"""Tests for the FlexRay model: static TDMA and dynamic minislots."""

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.network import (DynamicFrameSpec, FlexRayBus, FlexRayConfig,
                           StaticSlotAssignment)
from repro.sim import Simulator
from repro.units import ms, us


def make_bus(n_static=4, slot=us(100), minislots=0, minislot_len=us(10),
             nit=0):
    sim = Simulator()
    cfg = FlexRayConfig(slot_length=slot, n_static_slots=n_static,
                        minislot_length=minislot_len if minislots else 0,
                        n_minislots=minislots, nit_length=nit)
    bus = FlexRayBus(sim, cfg)
    return sim, bus


def test_cycle_length_composition():
    cfg = FlexRayConfig(slot_length=us(100), n_static_slots=4,
                        minislot_length=us(10), n_minislots=20,
                        nit_length=us(50))
    assert cfg.static_segment_length == us(400)
    assert cfg.dynamic_segment_length == us(200)
    assert cfg.cycle_length == us(650)


def test_static_frame_delivered_at_slot_end_every_cycle():
    sim, bus = make_bus()
    a = bus.attach("A")
    bus.attach("B")
    bus.assign_slot(StaticSlotAssignment(2, "A", "F"))
    bus.start()

    # Keep the buffer filled.
    def refill():
        a.send_static(2, payload="v")
        sim.schedule(us(400), refill)

    refill()
    sim.run_until(ms(1) + us(350))
    cycle = bus.config.cycle_length
    rx = bus.trace.times("flexray.rx", "F")
    assert rx[0] == 2 * us(100)
    assert rx[1] == cycle + 2 * us(100)


def test_empty_buffer_sends_null_frame():
    sim, bus = make_bus()
    bus.attach("A")
    bus.attach("B")
    bus.assign_slot(StaticSlotAssignment(1, "A", "F"))
    bus.start()
    sim.run_until(us(450))
    assert len(bus.trace.records("flexray.null_frame", "F")) == 1
    assert bus.latencies("F") == []


def test_send_static_requires_slot_ownership():
    sim, bus = make_bus()
    a = bus.attach("A")
    b = bus.attach("B")
    bus.assign_slot(StaticSlotAssignment(1, "A", "F"))
    with pytest.raises(ProtocolError):
        b.send_static(1)
    with pytest.raises(ProtocolError):
        a.send_static(3)  # unassigned slot


def test_slot_exclusivity_and_range_checked():
    sim, bus = make_bus(n_static=2)
    bus.attach("A")
    bus.attach("B")
    bus.assign_slot(StaticSlotAssignment(1, "A", "F"))
    with pytest.raises(ConfigurationError):
        bus.assign_slot(StaticSlotAssignment(1, "B", "G"))
    with pytest.raises(ConfigurationError):
        bus.assign_slot(StaticSlotAssignment(3, "B", "G"))
    with pytest.raises(ConfigurationError):
        bus.assign_slot(StaticSlotAssignment(2, "NOPE", "G"))


def test_cycle_multiplexing_base_and_repetition():
    sim, bus = make_bus()
    a = bus.attach("A")
    bus.attach("B")
    bus.assign_slot(StaticSlotAssignment(1, "A", "F", base_cycle=1,
                                         repetition=2))
    bus.start()

    def refill():
        a.send_static(1, payload="v")
        sim.schedule(us(100), refill)

    refill()
    cycle = bus.config.cycle_length
    sim.run_until(4 * cycle)
    rx = bus.trace.times("flexray.rx", "F")
    # Active only in odd cycles.
    assert rx == [cycle + us(100), 3 * cycle + us(100)]


def test_repetition_must_be_power_of_two():
    with pytest.raises(ConfigurationError):
        StaticSlotAssignment(1, "A", "F", repetition=3)
    with pytest.raises(ConfigurationError):
        StaticSlotAssignment(1, "A", "F", base_cycle=2, repetition=2)


def test_static_latency_independent_of_other_slot_load():
    """The composability property: slot 2's timing never changes, however
    much traffic slot 1's owner generates."""

    def run(slot1_busy):
        sim, bus = make_bus()
        a = bus.attach("A")
        v = bus.attach("V")
        bus.assign_slot(StaticSlotAssignment(1, "A", "NOISE"))
        bus.assign_slot(StaticSlotAssignment(2, "V", "VICTIM"))
        bus.start()
        if slot1_busy:
            def noise():
                a.send_static(1, payload="x")
                sim.schedule(us(100), noise)
            noise()

        def victim():
            v.send_static(2, payload="v")
            sim.schedule(us(400), victim)

        victim()
        sim.run_until(ms(2))
        return bus.trace.times("flexray.rx", "VICTIM")

    assert run(False) == run(True)


def test_dynamic_segment_orders_by_frame_id():
    sim, bus = make_bus(minislots=30)
    a = bus.attach("A")
    b = bus.attach("B")
    bus.start()
    # Enqueue in "wrong" order during the static segment of cycle 0.
    a.queue_dynamic(DynamicFrameSpec("LATE", frame_id=9, size_bytes=2))
    b.queue_dynamic(DynamicFrameSpec("EARLY", frame_id=5, size_bytes=2))
    sim.run_until(bus.config.cycle_length)
    rx = bus.trace.records("flexray.rx_dynamic")
    assert [r.subject for r in rx] == ["EARLY", "LATE"]


def test_dynamic_frame_postponed_when_minislots_exhausted():
    sim, bus = make_bus(minislots=12)
    a = bus.attach("A")
    bus.attach("B")
    bus.start()
    # 10 Mbit/s: (8B*8+80)*100ns = 14.4 us -> 2 minislots of 10 us each.
    a.queue_dynamic(DynamicFrameSpec("F1", 1, size_bytes=8))
    a.queue_dynamic(DynamicFrameSpec("F2", 2, size_bytes=8))
    a.queue_dynamic(DynamicFrameSpec("F3", 3, size_bytes=8))
    a.queue_dynamic(DynamicFrameSpec("F4", 4, size_bytes=8))
    a.queue_dynamic(DynamicFrameSpec("F5", 5, size_bytes=8))
    a.queue_dynamic(DynamicFrameSpec("F6", 6, size_bytes=8))
    a.queue_dynamic(DynamicFrameSpec("F7", 7, size_bytes=8))
    # F6's reception lands exactly at the cycle boundary (12 minislots
    # consumed), so run through the full first cycle.
    sim.run_until(bus.config.cycle_length)
    first_cycle = [r.subject for r in bus.trace.records("flexray.rx_dynamic")]
    assert first_cycle == ["F1", "F2", "F3", "F4", "F5", "F6"]
    sim.run_until(2 * bus.config.cycle_length)
    all_rx = [r.subject for r in bus.trace.records("flexray.rx_dynamic")]
    assert all_rx == first_cycle + ["F7"]


def test_fault_model_drops_slot():
    sim, bus = make_bus()
    a = bus.attach("A")
    bus.attach("B")
    bus.assign_slot(StaticSlotAssignment(1, "A", "F"))
    bus.fault_model = lambda assignment, cycle: cycle == 0
    bus.start()

    def refill():
        a.send_static(1, payload="x")
        sim.schedule(us(100), refill)

    refill()
    sim.run_until(2 * bus.config.cycle_length - 1)
    assert len(bus.trace.records("flexray.slot_lost", "F")) == 1
    assert len(bus.trace.records("flexray.rx", "F")) == 1


def test_payload_capacity():
    cfg = FlexRayConfig(slot_length=us(100), n_static_slots=2)
    # 100us at 10Mbit/s = 1000 bits; (1000-80)/8 = 115 bytes.
    assert cfg.payload_capacity_bytes() == 115


def test_config_validation():
    with pytest.raises(ConfigurationError):
        FlexRayConfig(slot_length=0, n_static_slots=2)
    with pytest.raises(ConfigurationError):
        FlexRayConfig(slot_length=us(10), n_static_slots=2, n_minislots=5,
                      minislot_length=0)
