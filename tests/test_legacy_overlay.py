"""Tests for the CAN overlay on a time-triggered platform."""

import pytest

from repro.errors import ConfigurationError
from repro.legacy import CanOverlay
from repro.network import CanFrameSpec
from repro.sim import Simulator
from repro.units import ms, us


def make_overlay(nodes=("A", "B", "C"), slot=us(200), capacity=32):
    sim = Simulator()
    overlay = CanOverlay(sim, list(nodes), slot_length=slot,
                         slot_capacity_bytes=capacity)
    overlay.start()
    return sim, overlay


def test_frame_delivered_in_senders_slot():
    sim, overlay = make_overlay()
    tx = overlay.attach("B")
    got = []
    overlay.attach("A").on_receive(lambda s, m: got.append(sim.now))
    tx.send(CanFrameSpec("F", 0x100, dlc=8))
    sim.run_until(ms(2))
    # B's slot is the 2nd: ends at 400 us.
    assert got == [us(400)]


def test_sender_does_not_receive_own_frame():
    sim, overlay = make_overlay()
    tx = overlay.attach("A")
    own = []
    tx.on_receive(lambda s, m: own.append(m))
    tx.send(CanFrameSpec("F", 0x100))
    sim.run_until(ms(2))
    assert own == []


def test_batch_ordered_by_can_id():
    sim, overlay = make_overlay(capacity=64)
    tx = overlay.attach("A")
    order = []
    overlay.attach("B").on_receive(lambda s, m: order.append(s.can_id))
    tx.send(CanFrameSpec("HI_ID", 0x300, dlc=2))
    tx.send(CanFrameSpec("LO_ID", 0x050, dlc=2))
    sim.run_until(ms(2))
    assert order == [0x050, 0x300]


def test_capacity_defers_excess_frames_to_next_round():
    # capacity 22 bytes: two 8B frames (8+3 each) fit, the third waits.
    sim, overlay = make_overlay(capacity=22)
    tx = overlay.attach("A")
    times = []
    overlay.attach("B").on_receive(lambda s, m: times.append(sim.now))
    for i in range(3):
        tx.send(CanFrameSpec(f"F{i}", 0x100 + i, dlc=8))
    sim.run_until(ms(3))
    assert times[:2] == [us(200), us(200)]
    assert times[2] == us(200) + overlay.round_length


def test_latency_bound_holds_under_light_load():
    sim, overlay = make_overlay()
    tx = overlay.attach("C")
    spec = CanFrameSpec("P", 0x10, dlc=8)

    def periodic():
        tx.send(spec)
        sim.schedule(ms(1) + us(70), periodic)  # drifting phase

    periodic()
    sim.run_until(ms(50))
    lats = overlay.latencies("P")
    assert lats and max(lats) <= overlay.worst_case_latency()


def test_legacy_code_runs_unchanged_against_overlay():
    """The same send/on_receive code drives a real CanBus and the
    overlay — the API-compatibility claim."""
    from repro.network import CanBus

    def legacy_app(controller_tx, controller_rx, sim):
        received = []
        controller_rx.on_receive(
            lambda spec, msg: received.append((spec.name, msg.payload)))
        controller_tx.send(CanFrameSpec("cmd", 0x42, dlc=1), payload=9)
        sim.run_until(ms(5))
        return received

    sim1 = Simulator()
    bus = CanBus(sim1, 500_000)
    native = legacy_app(bus.attach("A"), bus.attach("B"), sim1)

    sim2, overlay = make_overlay(("A", "B"))
    rehosted = legacy_app(overlay.attach("A"), overlay.attach("B"), sim2)
    assert native == rehosted == [("cmd", 9)]


def test_overlay_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        CanOverlay(sim, [], us(100))
    with pytest.raises(ConfigurationError):
        CanOverlay(sim, ["a", "a"], us(100))
    with pytest.raises(ConfigurationError):
        CanOverlay(sim, ["a"], 0)
    overlay = CanOverlay(sim, ["a", "b"], us(100))
    with pytest.raises(ConfigurationError):
        overlay.attach("ghost")
    overlay.start()
    with pytest.raises(ConfigurationError):
        overlay.start()
