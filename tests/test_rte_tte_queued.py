"""Regression: queued elements over TT-Ethernet deliver each written
value exactly once, despite periodic stream re-shipment."""

from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.sim import Simulator
from repro.units import ms, us

EVENT_IF = SenderReceiverInterface("ev", {"code": UINT16},
                                   queued={"code"})


def test_queued_over_tte_no_duplicates():
    producer = SwComponent("P")
    producer.provide("out", EVENT_IF)

    def emit(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        ctx.write("out", "code", ctx.state["n"])

    producer.runnable("emit", TimingEvent(ms(10)), emit, wcet=us(100))
    consumer = SwComponent("C")
    consumer.require("in", EVENT_IF)

    def drain(ctx):
        while True:
            code = ctx.receive("in", "code")
            if code is None:
                break
            ctx.state.setdefault("seen", []).append(code)

    consumer.runnable("drain", DataReceivedEvent("in", "code"), drain,
                      wcet=us(100))
    app = Composition("App")
    app.add(producer.instantiate("p"))
    app.add(consumer.instantiate("c"))
    app.connect("p", "out", "c", "in")
    system = SystemModel("tte-queued")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("p", "E1")
    system.map("c", "E2")
    system.configure_bus("tte", tt_period=ms(2))  # re-ships 5x per write
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(48))
    seen = runtime.ecus["E2"].instances["c"].state["seen"]
    # Writes at 0,10,20,30,40: each delivered exactly once, in order.
    assert seen == [1, 2, 3, 4, 5]
    assert runtime.queue_overflows == 0
