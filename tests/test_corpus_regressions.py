"""Regression replay of the fuzzer's minimized counterexample corpus.

Every ``tests/corpus/*.json`` file is a minimal system the fuzzer
found and the shrinker reduced (see ``repro fuzz --corpus-dir``).
Each carries a ``status``:

* ``"open"`` — a live defect.  The persisted failure must still
  reproduce at the persisted horizon, must be covered by a documented
  entry in ``tests/corpus/known_issues.json``, and the system must be
  shrink-minimal (re-running the shrinker is a no-op).  An open
  failure that silently stopped reproducing fails the suite — that
  means the defect was fixed: flip the file to ``"fixed"`` and delete
  its known-issue entry.
* ``"fixed"`` — a defect that has since been repaired.  The persisted
  failure must **not** reproduce any more; the corpus file stays
  forever as the regression that pins the fix.  (The three
  ``soundness-tdma-*`` seeds are the multi-activation TDMA busy-window
  fix's regressions.)

Regardless of status, every file must be structurally valid and its
JSON round-trip faithful — re-serializing the loaded system
reproduces the file's ``system`` dict byte-for-byte.
"""

import json
import os

import pytest

from repro.verify.oracle import verify_system
from repro.verify.mutate import validate_system
from repro.verify.serialize import system_from_dict, system_to_dict
from repro.verify.shrink import failure_keys, shrink

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
KNOWN_ISSUES_PATH = os.path.join(CORPUS_DIR, "known_issues.json")


def corpus_files():
    return sorted(name for name in os.listdir(CORPUS_DIR)
                  if name.endswith(".json") and name != "known_issues.json")


def load(name):
    with open(os.path.join(CORPUS_DIR, name), encoding="utf-8") as handle:
        return json.load(handle)


def known_issues():
    with open(KNOWN_ISSUES_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def matching_issue(key):
    kind, detail, _subject = key
    for issue in known_issues():
        if issue["kind"] == kind and issue["detail"] == detail:
            return issue
    return None


def failure_key(payload):
    failure = payload["failure"]
    return (failure["kind"], failure["detail"], failure["subject"])


def test_corpus_is_seeded():
    """The corpus ships with at least the counterexamples found while
    developing the fuzzer (now pinned as fixed-defect regressions)."""
    assert len(corpus_files()) >= 2


@pytest.mark.parametrize("name", corpus_files())
def test_entry_declares_a_status(name):
    assert load(name).get("status") in ("open", "fixed")


@pytest.mark.parametrize("name", corpus_files())
def test_counterexample_is_well_formed(name):
    payload = load(name)
    system = system_from_dict(payload["system"])
    assert validate_system(system) == []


@pytest.mark.parametrize("name", corpus_files())
def test_counterexample_roundtrips_byte_exactly(name):
    payload = load(name)
    system = system_from_dict(payload["system"])
    assert system_to_dict(system) == payload["system"]


@pytest.mark.parametrize("name", corpus_files())
def test_failure_status_matches_reality(name):
    """Open failures must reproduce and be documented; fixed failures
    must stay fixed."""
    payload = load(name)
    system = system_from_dict(payload["system"])
    key = failure_key(payload)
    keys = failure_keys(verify_system(system, payload["horizon"]))
    if payload["status"] == "open":
        if key not in keys:
            issue = matching_issue(key)
            pytest.fail(
                f"{name}: open failure {key} no longer reproduces — "
                f"the underlying defect appears fixed; flip this file "
                f"to status 'fixed' and delete its known-issues entry"
                + ("" if issue is None else f" ({issue['reason']})"))
        assert matching_issue(key) is not None, (
            f"{name}: failure {key} reproduces but has no entry in "
            f"known_issues.json — either fix the defect or document it")
    else:
        assert key not in keys, (
            f"{name}: fixed failure {key} reproduces again — the "
            f"defect this corpus entry pins has REGRESSED")


@pytest.mark.parametrize(
    "name", [n for n in corpus_files() if load(n)["status"] == "open"])
def test_open_counterexample_is_shrink_minimal(name):
    """Re-running the shrinker on a persisted open counterexample is a
    no-op (the acceptance bar for everything the fuzzer persists).
    Fixed entries are exempt: their failure no longer reproduces, so
    the shrinker has nothing to preserve."""
    payload = load(name)
    system = system_from_dict(payload["system"])
    result = shrink(system, failure_key(payload),
                    horizon=payload["horizon"])
    assert result.accepted == 0, (
        f"{name}: shrinker removed {result.accepted} more component(s) "
        f"— re-minimize and re-persist this counterexample")
    assert system_to_dict(result.system) == payload["system"]


def test_every_known_issue_is_exercised():
    """No stale documentation: each known-issue entry matches at least
    one *open* corpus file."""
    used = set()
    for name in corpus_files():
        payload = load(name)
        if payload["status"] != "open":
            continue
        failure = payload["failure"]
        for index, issue in enumerate(known_issues()):
            if issue["kind"] == failure["kind"] \
                    and issue["detail"] == failure["detail"]:
                used.add(index)
    assert used == set(range(len(known_issues())))
