"""Regression replay of the fuzzer's minimized counterexample corpus.

Every ``tests/corpus/*.json`` file is a minimal failing system the
fuzzer found and the shrinker reduced (see ``repro fuzz
--corpus-dir``).  This suite replays each one through the oracle
forever after:

* the persisted failure must still reproduce at the persisted horizon
  **and** be covered by a documented entry in
  ``tests/corpus/known_issues.json`` — an *undocumented* reproducing
  failure fails the suite, as does a documented one that silently
  stopped reproducing (that means the defect was fixed: delete the
  corpus file and its known-issue entry together);
* the persisted system must be shrink-minimal — re-running the
  shrinker on it is a no-op;
* the JSON round-trip must be faithful — re-serializing the loaded
  system reproduces the file's ``system`` dict byte-for-byte.
"""

import json
import os

import pytest

from repro.verify.oracle import verify_system
from repro.verify.mutate import validate_system
from repro.verify.serialize import system_from_dict, system_to_dict
from repro.verify.shrink import failure_keys, shrink

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
KNOWN_ISSUES_PATH = os.path.join(CORPUS_DIR, "known_issues.json")


def corpus_files():
    return sorted(name for name in os.listdir(CORPUS_DIR)
                  if name.endswith(".json") and name != "known_issues.json")


def load(name):
    with open(os.path.join(CORPUS_DIR, name), encoding="utf-8") as handle:
        return json.load(handle)


def known_issues():
    with open(KNOWN_ISSUES_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def matching_issue(key):
    kind, detail, _subject = key
    for issue in known_issues():
        if issue["kind"] == kind and issue["detail"] == detail:
            return issue
    return None


def test_corpus_is_seeded():
    """The corpus ships with at least the two counterexamples found
    while developing the fuzzer."""
    assert len(corpus_files()) >= 2


@pytest.mark.parametrize("name", corpus_files())
def test_counterexample_is_well_formed(name):
    payload = load(name)
    system = system_from_dict(payload["system"])
    assert validate_system(system) == []


@pytest.mark.parametrize("name", corpus_files())
def test_counterexample_roundtrips_byte_exactly(name):
    payload = load(name)
    system = system_from_dict(payload["system"])
    assert system_to_dict(system) == payload["system"]


@pytest.mark.parametrize("name", corpus_files())
def test_failure_reproduces_and_is_documented(name):
    payload = load(name)
    system = system_from_dict(payload["system"])
    failure = payload["failure"]
    key = (failure["kind"], failure["detail"], failure["subject"])
    verdict = verify_system(system, payload["horizon"])
    keys = failure_keys(verdict)
    issue = matching_issue(key)
    if key in keys:
        assert issue is not None, (
            f"{name}: failure {key} reproduces but has no entry in "
            f"known_issues.json — either fix the defect or document it")
    else:
        pytest.fail(
            f"{name}: persisted failure {key} no longer reproduces — "
            f"the underlying defect appears fixed; delete this corpus "
            f"file and its known-issues entry"
            + ("" if issue is None else f" ({issue['reason']})"))


@pytest.mark.parametrize("name", corpus_files())
def test_counterexample_is_shrink_minimal(name):
    """Re-running the shrinker on a persisted counterexample is a
    no-op (the acceptance bar for everything the fuzzer persists)."""
    payload = load(name)
    system = system_from_dict(payload["system"])
    failure = payload["failure"]
    key = (failure["kind"], failure["detail"], failure["subject"])
    result = shrink(system, key, horizon=payload["horizon"])
    assert result.accepted == 0, (
        f"{name}: shrinker removed {result.accepted} more component(s) "
        f"— re-minimize and re-persist this counterexample")
    assert system_to_dict(result.system) == payload["system"]


def test_every_known_issue_is_exercised():
    """No stale documentation: each known-issue entry matches at least
    one corpus file."""
    used = set()
    for name in corpus_files():
        failure = load(name)["failure"]
        for index, issue in enumerate(known_issues()):
            if issue["kind"] == failure["kind"] \
                    and issue["detail"] == failure["detail"]:
                used.add(index)
    assert used == set(range(len(known_issues())))
