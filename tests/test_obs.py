"""Unit tests for the repro.obs telemetry layer: registry semantics,
span nesting, DLT channel ordering, and exporter round-trips."""

import json

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.obs.dlt import DltChannel, severity_for_category
from repro.obs.exporters import (events_from_jsonl, events_to_jsonl,
                                 parse_prometheus_text, to_chrome_trace,
                                 to_prometheus_text, validate_chrome_trace)
from repro.obs.registry import (DEFAULT_NS_BUCKETS, MetricsRegistry,
                                RATIO_BUCKETS)
from repro.obs.spans import SpanRecorder


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test runs against a fresh, disabled ambient scope."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.counter("c").inc(4)
    reg.gauge("g").set(2.5)
    h = reg.histogram("h")
    h.observe(500)          # first bucket (<= 1000)
    h.observe(5_000_000)    # mid bucket
    snap = reg.snapshot()
    assert snap["counters"]["c"] == 5
    assert snap["gauges"]["g"]["value"] == 2.5
    assert snap["histograms"]["h"]["count"] == 2
    assert snap["histograms"]["h"]["min"] == 500
    assert snap["histograms"]["h"]["max"] == 5_000_000


def test_instrument_kind_collision_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ConfigurationError):
        reg.gauge("x")


def test_histogram_bucket_mismatch_raises():
    reg = MetricsRegistry()
    reg.histogram("h", buckets=(1, 2, 3))
    with pytest.raises(ConfigurationError):
        reg.histogram("h", buckets=(1, 2))


def test_histogram_buckets_must_ascend():
    reg = MetricsRegistry()
    with pytest.raises(ConfigurationError):
        reg.histogram("bad", buckets=(10, 5))
    # The stock bucket sets are valid by construction.
    reg.histogram("ns", buckets=DEFAULT_NS_BUCKETS)
    reg.histogram("ratio", buckets=RATIO_BUCKETS)


def test_percentiles_clamped_to_observed_range():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(100, 1000, 10_000))
    for value in (150, 200, 900, 5000):
        h.observe(value)
    assert h.percentile(0.0) >= 150
    assert h.percentile(1.0) <= 5000
    p50 = h.percentile(0.5)
    assert 150 <= p50 <= 1000
    with pytest.raises(ConfigurationError):
        h.percentile(1.5)


def test_percentile_single_sample_is_exact():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(1000,))
    h.observe(700)
    assert h.percentile(0.5) == 700  # clamped to [min, max], not mid-bucket


def test_overflow_bucket_reports_observed_max():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=(10,))
    h.observe(99)
    assert h.counts[-1] == 1
    assert h.percentile(0.99) == 99


def test_merge_is_associative_and_order_fixes_gauges():
    a, b, merged = MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
    a.counter("n").inc(2)
    b.counter("n").inc(3)
    a.gauge("last").set(1)
    b.gauge("last").set(2)
    a.histogram("h").observe(100)
    b.histogram("h").observe(2000)
    merged.merge(a.snapshot())
    merged.merge(b.snapshot())
    snap = merged.snapshot()
    assert snap["counters"]["n"] == 5
    assert snap["gauges"]["last"]["value"] == 2  # later merge wins
    assert snap["histograms"]["h"]["count"] == 2
    assert snap["histograms"]["h"]["min"] == 100
    assert snap["histograms"]["h"]["max"] == 2000


def test_digest_excludes_nondeterministic_instruments():
    a, b = MetricsRegistry(), MetricsRegistry()
    for reg, wall in ((a, 123), (b, 456_000)):
        reg.counter("n").inc()
        reg.histogram("wall_ns", deterministic=False).observe(wall)
        reg.gauge("pid", deterministic=False).set(id(reg))
    assert a.digest() == b.digest()
    b.counter("n").inc()  # deterministic difference must show
    assert a.digest() != b.digest()


# ---------------------------------------------------------------------------
# enable/disable and helpers
# ---------------------------------------------------------------------------
def test_helpers_are_noops_while_disabled():
    obs.count("x")
    obs.observe("y", 5)
    obs.gauge_set("z", 1)
    obs.dlt(0, obs.ERROR, "E", "APP", "CTX", "nope")
    with obs.span("s"):
        pass
    assert len(obs.registry()) == 0
    assert len(obs.spans().records) == 0
    assert len(obs.dlt_channel()) == 0


def test_disabled_span_is_shared_singleton():
    assert obs.span("a") is obs.span("b") is obs.NULL_SPAN


def test_span_nesting_depth_and_counters():
    obs.enable()
    with obs.span("outer"):
        with obs.span("inner"):
            pass
        with obs.span("inner"):
            pass
    records = obs.spans().records
    assert [r.name for r in records] == ["inner", "inner", "outer"]
    depths = {r.name: r.depth for r in records}
    assert depths == {"inner": 1, "outer": 0}
    assert [r.seq for r in records] == [1, 2, 3]
    counters = obs.registry().snapshot()["counters"]
    assert counters["span.outer"] == 1
    assert counters["span.inner"] == 2


def test_traced_decorator():
    obs.enable()

    @obs.traced("work")
    def work(x):
        return x + 1

    assert work(1) == 2
    assert [r.name for r in obs.spans().records] == ["work"]


# ---------------------------------------------------------------------------
# DLT
# ---------------------------------------------------------------------------
def test_dlt_channel_monotonic_seq_and_queries():
    channel = DltChannel()
    channel.log(10, obs.ERROR, "EcuA", "DEM", "ev1", "confirmed")
    channel.log(10, obs.INFO, "EcuA", "DEM", "ev1", "healed")
    channel.log(20, obs.FATAL, "EcuB", "WDG", "t1", "violation")
    assert [r.seq for r in channel.records] == [1, 2, 3]
    assert channel.severity_counts() == {"fatal": 1, "error": 1, "info": 1}
    assert len(channel.by_severity(obs.FATAL)) == 1


def test_dlt_merge_resequences():
    a, b, merged = DltChannel(), DltChannel(), DltChannel()
    a.log(1, obs.ERROR, "E", "DEM", "x", "m1")
    b.log(2, obs.WARN, "E", "RECOVERY", "x", "m2")
    merged.merge(a.snapshot())
    merged.merge(b.snapshot())
    assert [r.seq for r in merged.records] == [1, 2]
    assert [r.message for r in merged.records] == ["m1", "m2"]


def test_severity_for_category_table():
    assert severity_for_category("wdg.violation") == obs.FATAL
    assert severity_for_category("dem.confirmed") == obs.ERROR
    assert severity_for_category("dem.healed") == obs.INFO
    assert severity_for_category("recovery.escalate") == obs.WARN
    assert severity_for_category("unknown.thing") == obs.WARN


def test_harvest_trace_filters_and_counts():
    from repro.sim.trace import Trace

    trace = Trace()
    trace.log(5, "dem.confirmed", "ev", dtc=1)
    trace.log(6, "task.activate", "t")       # not BSW-relevant
    trace.log(7, "task.budget_overrun", "t")
    trace.log(8, "com.timeout", "sig")
    trace.log(9, "can.rx", "frame")          # not BSW-relevant
    obs.enable()
    added = obs.harvest_trace(trace, node="EcuX")
    assert added == 3
    counters = obs.registry().snapshot()["counters"]
    assert counters["dlt.error"] == 3
    assert all(r.ecu == "EcuX" for r in obs.dlt_channel().records)


# ---------------------------------------------------------------------------
# exporters
# ---------------------------------------------------------------------------
def _sample_snapshot():
    reg = MetricsRegistry()
    reg.counter("can.frames").inc(7)
    reg.gauge("depth").set(3)
    h = reg.histogram("lat_ns", buckets=(100, 1000))
    for value in (50, 150, 5000):
        h.observe(value)
    return reg.snapshot()


def test_prometheus_round_trip():
    snap = _sample_snapshot()
    text = to_prometheus_text(snap)
    parsed = parse_prometheus_text(text)
    assert parsed["counters"]["repro_can_frames"] == 7
    assert parsed["gauges"]["repro_depth"]["value"] == 3
    hist = parsed["histograms"]["repro_lat_ns"]
    assert hist["buckets"] == [100, 1000]
    assert hist["counts"] == snap["histograms"]["lat_ns"]["counts"]
    assert hist["sum"] == 5200 and hist["count"] == 3


def test_prometheus_quantile_lines_round_trip():
    from repro.obs.registry import Histogram

    snap = _sample_snapshot()
    text = to_prometheus_text(snap)
    # Exposition text carries p50/p90/p99 summary-style quantile lines.
    assert 'repro_lat_ns{quantile="0.5"}' in text
    assert 'repro_lat_ns{quantile="0.99"}' in text
    parsed = parse_prometheus_text(text)
    quantiles = parsed["histograms"]["repro_lat_ns"]["quantiles"]
    # Parsed quantiles equal the interpolation over the same snapshot.
    scratch = MetricsRegistry()
    reference: Histogram = scratch.histogram(
        "ref", snap["histograms"]["lat_ns"]["buckets"])
    reference.counts = list(snap["histograms"]["lat_ns"]["counts"])
    reference.count = snap["histograms"]["lat_ns"]["count"]
    reference.sum = snap["histograms"]["lat_ns"]["sum"]
    reference.min = snap["histograms"]["lat_ns"]["min"]
    reference.max = snap["histograms"]["lat_ns"]["max"]
    for token in ("0.5", "0.9", "0.99"):
        assert quantiles[token] == reference.percentile(float(token))


def test_prometheus_empty_histogram_emits_no_quantiles():
    reg = MetricsRegistry()
    reg.histogram("empty_ns", buckets=(100, 1000))
    text = to_prometheus_text(reg.snapshot())
    assert "quantile=" not in text
    parsed = parse_prometheus_text(text)
    assert "quantiles" not in parsed["histograms"]["repro_empty_ns"]


def test_prometheus_rejects_unknown_lines():
    with pytest.raises(ConfigurationError):
        parse_prometheus_text("weird_metric 42\n")
    with pytest.raises(ConfigurationError):
        # A labeled line that is neither a bucket nor a known-histogram
        # quantile must still raise, not silently vanish.
        parse_prometheus_text('mystery{quantile="0.5"} 1\n')


def test_chrome_trace_valid_and_rebased():
    obs.enable()
    with obs.span("outer"):
        with obs.span("inner"):
            pass
    obs.dlt(123, obs.ERROR, "E", "DEM", "ev", "confirmed")
    trace = to_chrome_trace(obs.spans().snapshot(),
                            obs.dlt_channel().snapshot())
    assert validate_chrome_trace(trace) == []
    xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert min(e["ts"] for e in xs) == 0.0
    instants = [e for e in trace["traceEvents"] if e["ph"] == "i"]
    assert instants[0]["args"]["sim_time_ns"] == 123
    # Must survive a JSON round trip (what --trace-out writes).
    assert validate_chrome_trace(json.loads(json.dumps(trace))) == []


def test_validate_chrome_trace_reports_problems():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({"traceEvents": [{"ph": "X"}]}) != []


def test_events_jsonl_round_trip():
    obs.enable()
    obs.count("c", 2)
    with obs.span("s"):
        pass
    obs.dlt(5, obs.WARN, "E", "APP", "ctx", "msg", extra=1)
    text = events_to_jsonl(obs.registry().snapshot(),
                           obs.spans().snapshot(),
                           obs.dlt_channel().snapshot())
    events = events_from_jsonl(text)
    kinds = {e["type"] for e in events}
    assert {"counter", "span", "dlt", "histogram"} <= kinds
    dlt_rows = [e for e in events if e["type"] == "dlt"]
    assert dlt_rows[0]["payload"] == {"extra": 1}


def test_stats_summarize_all_formats(tmp_path):
    from repro.obs.stats import summarize_paths

    obs.enable()
    obs.count("n", 3)
    obs.observe("lat_ns", 500)
    with obs.span("phase"):
        pass
    obs.dlt(1, obs.ERROR, "E", "DEM", "ev", "confirmed")
    prom = obs.write_prometheus(tmp_path / "m.prom")
    chrome = obs.write_chrome_trace(tmp_path / "t.json")
    events = obs.write_events_jsonl(tmp_path / "e.jsonl")
    text = summarize_paths([prom, chrome, events], top=5)
    assert "repro_n" in text
    assert "phase" in text
    assert "DEM" in text
