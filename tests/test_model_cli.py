"""Exit-code and output coverage for the ``repro model`` CLI.

The subcommand contract: exit 0 when everything is valid / every
obligation is met, 1 when a document is invalid or a verification
fails, 2 when an input cannot be read at all (argparse's own usage
convention).  ``repro verify/resilience/fuzz --model`` reuse the same
reference resolution, so one bad-reference test covers them too.
"""

import json

import pytest

from repro.__main__ import main
from repro.model.cli import (EXIT_INVALID, EXIT_OK, EXIT_UNREADABLE,
                             model_command, model_from_ref)
from repro.model.scenarios import scenario_path


@pytest.fixture
def valid_file(tmp_path):
    """A valid model document file (copy of a bundled scenario)."""
    with open(scenario_path("adas-fusion"), encoding="utf-8") as handle:
        doc = json.load(handle)
    path = tmp_path / "valid.json"
    path.write_text(json.dumps(doc))
    return str(path)


@pytest.fixture
def invalid_file(tmp_path):
    path = tmp_path / "invalid.json"
    path.write_text(json.dumps(
        {"format": "repro.model", "format_version": 99}))
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    return str(path)


def test_help_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        model_command(["--help"])
    assert excinfo.value.code == 0
    assert "scenarios" in capsys.readouterr().out


def test_no_subcommand_is_usage_error():
    with pytest.raises(SystemExit) as excinfo:
        model_command([])
    assert excinfo.value.code == 2


def test_validate_valid(valid_file, capsys):
    assert model_command(["validate", valid_file]) == EXIT_OK
    assert "OK digest=" in capsys.readouterr().out


def test_validate_scenario_by_name():
    assert model_command(["validate", "adas-fusion"]) == EXIT_OK


def test_validate_invalid(invalid_file, capsys):
    assert model_command(["validate", invalid_file]) == EXIT_INVALID
    out = capsys.readouterr().out
    assert "INVALID" in out
    assert "unknown version 99" in out


def test_validate_missing_file(capsys):
    assert model_command(["validate", "/no/such/file.json"]) \
        == EXIT_UNREADABLE
    assert "UNREADABLE" in capsys.readouterr().err


def test_validate_broken_json(broken_file):
    assert model_command(["validate", broken_file]) == EXIT_UNREADABLE


def test_validate_worst_status_wins(valid_file, invalid_file):
    assert model_command(["validate", valid_file, invalid_file]) \
        == EXIT_INVALID


def test_digest_valid(valid_file, capsys):
    assert model_command(["digest", valid_file]) == EXIT_OK
    line = capsys.readouterr().out.strip()
    digest, ref = line.split()
    assert len(digest) == 64
    assert ref == valid_file


def test_digest_matches_scenario(valid_file, capsys):
    model_command(["digest", valid_file, "adas-fusion"])
    lines = capsys.readouterr().out.splitlines()
    assert lines[0].split()[0] == lines[1].split()[0]


def test_digest_invalid(invalid_file):
    assert model_command(["digest", invalid_file]) == EXIT_INVALID


def test_convert_legacy_corpus(tmp_path, capsys):
    import glob
    import os
    corpus = sorted(
        p for p in glob.glob("tests/corpus/*.json")
        if os.path.basename(p) != "known_issues.json")
    out = str(tmp_path / "model.json")
    assert model_command(["convert", corpus[0], "-o", out]) == EXIT_OK
    assert model_command(["validate", out]) == EXIT_OK


def test_convert_unrecognized(tmp_path):
    path = tmp_path / "junk.json"
    path.write_text(json.dumps({"hello": "world"}))
    assert model_command(["convert", str(path)]) == EXIT_INVALID


def test_scenarios_list(capsys):
    assert model_command(["scenarios", "list"]) == EXIT_OK
    out = capsys.readouterr().out
    for name in ("adas-fusion", "gateway-multibus", "tdma-overload",
                 "flexray-mixed", "limp-home"):
        assert name in out


def test_scenarios_validate(capsys):
    assert model_command(["scenarios", "validate"]) == EXIT_OK
    out = capsys.readouterr().out
    assert out.count("round-trip=identical") == 5


def test_scenarios_run_one(capsys):
    assert model_command(["scenarios", "run", "tdma-overload"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "verify=PASS" in out
    assert "resilience=PASS" in out


def test_scenarios_run_unknown_name(capsys):
    assert model_command(["scenarios", "run", "nope"]) == EXIT_UNREADABLE


def test_scenarios_run_with_telemetry_exports(tmp_path, capsys):
    metrics = tmp_path / "metrics.prom"
    events = tmp_path / "events.jsonl"
    assert model_command(
        ["scenarios", "run", "tdma-overload",
         "--metrics", str(metrics), "--events", str(events)]) == EXIT_OK
    out = capsys.readouterr().out
    assert "telemetry digest: sha256:" in out
    # Both exports exist and parse with the obs tooling.
    from repro.obs.exporters import (events_from_jsonl,
                                     parse_prometheus_text)

    parsed = parse_prometheus_text(metrics.read_text())
    assert parsed["counters"]  # the run produced real telemetry
    rows = events_from_jsonl(events.read_text())
    assert any(row.get("type") == "counter" for row in rows)


def test_scenarios_run_without_telemetry_prints_no_digest(capsys):
    assert model_command(["scenarios", "run", "tdma-overload"]) == EXIT_OK
    assert "telemetry digest" not in capsys.readouterr().out


def test_model_from_ref_rejects_unreadable():
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        model_from_ref("/no/such/file.json")


def test_main_dispatches_model(capsys):
    assert main(["repro", "model", "scenarios", "list"]) == 0
    assert "limp-home" in capsys.readouterr().out


def test_main_unknown_command_mentions_model(capsys):
    assert main(["repro", "bogus"]) == 2
    assert "'model'" in capsys.readouterr().out


def test_verify_model_flag_bad_reference(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["repro", "verify", "--model", "/no/such/file.json"])
    assert excinfo.value.code == 2


def test_verify_model_flag_runs_scenario(capsys):
    assert main(["repro", "verify", "--model", "tdma-overload"]) == 0
    out = capsys.readouterr().out
    assert "size=model" in out
    assert "verdict: PASS" in out
