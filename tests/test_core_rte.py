"""Tests for RTE generation and deployed-system semantics.

The central property: component code written against ``ctx`` runs
unchanged on the VFB and on any deployment (1 ECU, N ECUs over CAN or
FlexRay) — only timing differs.
"""

import pytest

from repro.errors import ConfigurationError
from repro.core import (Composition, DataReceivedEvent, InitEvent,
                        ClientServerInterface, Operation,
                        OperationInvokedEvent, SenderReceiverInterface,
                        SwComponent, SystemModel, TimingEvent, UINT8, UINT16,
                        VfbSimulation)
from repro.sim import Simulator
from repro.units import ms, us

SPEED_IF = SenderReceiverInterface("speed_if", {"value": UINT16})
CMD_IF = SenderReceiverInterface("cmd_if", {"value": UINT16})


def sensor_component():
    sensor = SwComponent("Sensor")
    sensor.provide("out", SPEED_IF)

    def sample(ctx):
        ctx.state.setdefault("count", 0)
        ctx.state["count"] += 1
        ctx.write("out", "value", ctx.state["count"] * 10)

    sensor.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(200))
    return sensor


def controller_component():
    controller = SwComponent("Controller")
    controller.require("in", SPEED_IF)
    controller.provide("cmd", CMD_IF)

    def on_speed(ctx):
        ctx.write("cmd", "value", ctx.read("in", "value") + 1)

    controller.runnable("on_speed", DataReceivedEvent("in", "value"),
                        on_speed, wcet=us(300))
    return controller


def two_node_system(bus="can"):
    comp = Composition("Sys")
    comp.add(sensor_component().instantiate("s"))
    comp.add(controller_component().instantiate("c"))
    comp.connect("s", "out", "c", "in")
    system = SystemModel("demo")
    system.add_ecu("ECU1")
    system.add_ecu("ECU2")
    system.set_root(comp)
    system.map("s", "ECU1")
    system.map("c", "ECU2")
    system.configure_bus(bus)
    return system


def test_validate_catches_unmapped_instances():
    system = two_node_system()
    del system.mapping["c"]
    issues = system.validate()
    assert any("not mapped" in issue for issue in issues)
    with pytest.raises(ConfigurationError):
        system.build(Simulator())


def test_validate_requires_bus_for_cross_ecu():
    system = two_node_system()
    system.configure_bus(None)
    issues = system.validate()
    assert any("needs a bus in domain" in issue for issue in issues)


def test_single_ecu_deployment_no_bus_needed():
    comp = Composition("Sys")
    comp.add(sensor_component().instantiate("s"))
    comp.add(controller_component().instantiate("c"))
    comp.connect("s", "out", "c", "in")
    system = SystemModel("single")
    system.add_ecu("ECU1")
    system.set_root(comp)
    system.map_all("ECU1")
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(25))
    assert runtime.bus is None
    # Sensor samples at 0,10,20; chain completes locally.
    assert runtime.value_of("c", "cmd", "value") == 31


def test_cross_ecu_data_flows_over_can():
    system = two_node_system("can")
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(25))
    assert runtime.value_of("c", "in", "value") == 30
    assert runtime.value_of("c", "cmd", "value") == 31
    # The value actually crossed the CAN bus.
    assert runtime.bus.frames_delivered >= 3


def test_cross_ecu_data_flows_over_flexray():
    system = two_node_system("flexray")
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(30))
    # FlexRay adds cycle latency; at least two samples must be through.
    assert runtime.value_of("c", "cmd", "value") >= 21
    assert len(runtime.trace.records("flexray.rx")) >= 2


def test_rte_and_vfb_produce_same_functional_values():
    """Transferability: identical component code, same steady-state
    values, on the VFB and on a 2-ECU CAN deployment."""
    comp = Composition("Sys")
    comp.add(sensor_component().instantiate("s"))
    comp.add(controller_component().instantiate("c"))
    comp.connect("s", "out", "c", "in")
    sim_v = Simulator()
    vfb = VfbSimulation(sim_v, comp)
    vfb.start()
    sim_v.run_until(ms(50))

    system = two_node_system("can")
    sim_r = Simulator()
    runtime = system.build(sim_r)
    sim_r.run_until(ms(50) + ms(5))  # allow bus+task latency to settle

    assert runtime.value_of("c", "cmd", "value") == \
        vfb.value_of("c", "cmd", "value")


def test_deployment_adds_latency_vfb_does_not():
    system = two_node_system("can")
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(10) - 1)  # exactly one sample at t=0
    write_time = runtime.trace.records("rte.write", "s.out.value")[0].time
    rx = runtime.trace.records("can.rx")
    assert len(rx) == 1
    assert rx[0].time > write_time  # wire time elapsed


def test_rate_monotonic_default_priorities():
    fast = SwComponent("Fast")
    fast.provide("out", SPEED_IF)
    fast.runnable("tick", TimingEvent(ms(5)), lambda ctx: None, wcet=us(100))
    slow = SwComponent("Slow")
    slow.provide("out", SPEED_IF)
    slow.runnable("tick", TimingEvent(ms(50)), lambda ctx: None,
                  wcet=us(100))
    comp = Composition("Sys")
    comp.add(fast.instantiate("f"))
    comp.add(slow.instantiate("sl"))
    system = SystemModel("prio")
    system.add_ecu("E")
    system.set_root(comp)
    system.map_all("E")
    sim = Simulator()
    runtime = system.build(sim)
    tasks = runtime.kernels["E"].tasks
    assert tasks["f.tick"].spec.priority > tasks["sl.tick"].spec.priority


def test_explicit_priority_overrides_rm():
    system = two_node_system("can")
    system.ecus["ECU1"].set_priority("s.sample", 42)
    sim = Simulator()
    runtime = system.build(sim)
    assert runtime.kernels["ECU1"].tasks["s.sample"].spec.priority == 42


def test_init_runnable_activated_once():
    comp_type = SwComponent("C")
    comp_type.provide("out", SPEED_IF)
    runs = []
    comp_type.runnable("boot", InitEvent(),
                       lambda ctx: runs.append(ctx.now), wcet=us(50))
    comp = Composition("Sys")
    comp.add(comp_type.instantiate("i"))
    system = SystemModel("init")
    system.add_ecu("E")
    system.set_root(comp)
    system.map_all("E")
    sim = Simulator()
    system.build(sim)
    sim.run_until(ms(100))
    assert runs == [us(50)]  # executed at task completion


def test_intra_ecu_client_server_synchronous():
    calib_if = ClientServerInterface(
        "calib", {"get": Operation("get", {"index": UINT8},
                                   returns=UINT16)})
    server = SwComponent("Server")
    server.provide("srv", calib_if)
    server.runnable("h", OperationInvokedEvent("srv", "get"),
                    lambda ctx, index: 100 + index, wcet=us(10))
    client = SwComponent("Client")
    client.require("cal", calib_if)
    results = []
    client.runnable("tick", TimingEvent(ms(10)),
                    lambda ctx: results.append(ctx.call("cal", "get",
                                                        index=7)),
                    wcet=us(100))
    comp = Composition("Sys")
    comp.add(server.instantiate("srv"))
    comp.add(client.instantiate("cli"))
    comp.connect("srv", "srv", "cli", "cal")
    system = SystemModel("cs")
    system.add_ecu("E")
    system.set_root(comp)
    system.map_all("E")
    sim = Simulator()
    system.build(sim)
    sim.run_until(ms(15))
    assert results == [107, 107]


def test_remote_client_server_with_return_rejected():
    calib_if = ClientServerInterface(
        "calib", {"get": Operation("get", returns=UINT16)})
    server = SwComponent("Server")
    server.provide("srv", calib_if)
    server.runnable("h", OperationInvokedEvent("srv", "get"),
                    lambda ctx: 1, wcet=us(10))
    client = SwComponent("Client")
    client.require("cal", calib_if)
    client.runnable("tick", TimingEvent(ms(10)), lambda ctx: None,
                    wcet=us(10))
    comp = Composition("Sys")
    comp.add(server.instantiate("srv"))
    comp.add(client.instantiate("cli"))
    comp.connect("srv", "srv", "cli", "cal")
    system = SystemModel("cs")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(comp)
    system.map("srv", "E1")
    system.map("cli", "E2")
    system.configure_bus("can")
    issues = system.validate()
    assert any("return values" in issue for issue in issues)


def test_remote_void_call_executes_on_server_ecu():
    actuate_if = ClientServerInterface(
        "act", {"set": Operation("set", {"level": UINT8})})
    server = SwComponent("Actuator")
    server.provide("srv", actuate_if)
    levels = []
    server.runnable("apply", OperationInvokedEvent("srv", "set"),
                    lambda ctx, level: levels.append((ctx.now, level)),
                    wcet=us(50))
    client = SwComponent("Commander")
    client.require("act", actuate_if)

    def tick(ctx):
        ctx.state.setdefault("n", 0)
        ctx.state["n"] += 1
        ctx.call("act", "set", level=ctx.state["n"])

    client.runnable("tick", TimingEvent(ms(10)), tick, wcet=us(100))
    comp = Composition("Sys")
    comp.add(server.instantiate("a"))
    comp.add(client.instantiate("cmd"))
    comp.connect("a", "srv", "cmd", "act")
    system = SystemModel("remote_cs")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(comp)
    system.map("a", "E1")
    system.map("cmd", "E2")
    system.configure_bus("can")
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(35))
    assert [level for __, level in levels] == [1, 2, 3, 4]
    # Executed on the server ECU, after bus latency.
    assert all(t > 0 for t, __ in levels)


def test_snapshot_semantics_inputs_fixed_at_task_start():
    """A task started before a new value arrives must compute with the
    old value (implicit/buffered communication)."""
    producer = SwComponent("P")
    producer.provide("out", SPEED_IF)
    producer.runnable("tick", TimingEvent(ms(10), offset=ms(1)),
                      lambda ctx: ctx.write("out", "value", 99),
                      wcet=us(100))
    consumer = SwComponent("C")
    consumer.require("in", SPEED_IF)
    seen = []
    # Long-running low-priority task: starts at 0, completes at 5 ms,
    # after the producer wrote at ~1.1 ms.
    consumer.runnable("slow", TimingEvent(ms(20)),
                      lambda ctx: seen.append(ctx.read("in", "value")),
                      wcet=ms(5))
    comp = Composition("Sys")
    comp.add(producer.instantiate("p"))
    comp.add(consumer.instantiate("c"))
    comp.connect("p", "out", "c", "in")
    system = SystemModel("snap")
    system.add_ecu("E")
    system.ecus["E"].set_priority("p.tick", 10)
    system.ecus["E"].set_priority("c.slow", 1)
    system.set_root(comp)
    system.map_all("E")
    sim = Simulator()
    system.build(sim)
    sim.run_until(ms(8))
    assert seen == [0]  # snapshot taken at t=0, before the write


def test_can_id_override_is_used():
    system = two_node_system("can")
    system.set_can_id("s.out", 0x42)
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(5))
    starts = runtime.trace.records("can.tx_start", "s.out")
    assert starts and starts[0].data["can_id"] == 0x42
