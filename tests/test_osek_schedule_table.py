"""Tests for OSEK/AUTOSAR schedule tables."""

import pytest

from repro.errors import ConfigurationError
from repro.osek import (EcuKernel, ExpiryPoint, FixedPriorityScheduler,
                        ScheduleTable, TaskSpec)
from repro.sim import Simulator
from repro.units import ms, us


def make_kernel():
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    return sim, kernel


def test_expiry_points_activate_tasks_cyclically():
    sim, kernel = make_kernel()
    task_a = kernel.add_task(TaskSpec("A", wcet=us(100), priority=2,
                                      deadline=ms(20)))
    task_b = kernel.add_task(TaskSpec("B", wcet=us(100), priority=1,
                                      deadline=ms(20)))
    table = ScheduleTable(kernel, "tbl", duration=ms(10), expiry_points=[
        ExpiryPoint(0, activate=[task_a]),
        ExpiryPoint(ms(4), activate=[task_b]),
    ])
    table.start_rel()
    sim.run_until(ms(25))
    assert kernel.trace.times("task.activate", "A") == [0, ms(10), ms(20)]
    assert kernel.trace.times("task.activate", "B") == [ms(4), ms(14),
                                                        ms(24)]
    assert table.cycles == 2


def test_start_rel_offsets_whole_table():
    sim, kernel = make_kernel()
    task = kernel.add_task(TaskSpec("A", wcet=us(100), priority=1,
                                    deadline=ms(20)))
    table = ScheduleTable(kernel, "tbl", duration=ms(10),
                          expiry_points=[ExpiryPoint(ms(2),
                                                     activate=[task])])
    table.start_rel(ms(3))
    sim.run_until(ms(20))
    assert kernel.trace.times("task.activate", "A") == [ms(5), ms(15)]


def test_one_shot_table_stops_after_cycle():
    sim, kernel = make_kernel()
    task = kernel.add_task(TaskSpec("A", wcet=us(100), priority=1,
                                    deadline=ms(20)))
    table = ScheduleTable(kernel, "tbl", duration=ms(10),
                          expiry_points=[ExpiryPoint(0, activate=[task])],
                          repeating=False)
    table.start_rel()
    sim.run_until(ms(50))
    assert kernel.trace.times("task.activate", "A") == [0]
    assert table.state == "stopped"


def test_stop_cancels_pending_expiries():
    sim, kernel = make_kernel()
    task = kernel.add_task(TaskSpec("A", wcet=us(100), priority=1,
                                    deadline=ms(20)))
    table = ScheduleTable(kernel, "tbl", duration=ms(10),
                          expiry_points=[ExpiryPoint(ms(8),
                                                     activate=[task])])
    table.start_rel()
    sim.schedule(ms(12), table.stop)
    sim.run_until(ms(50))
    # Only the first cycle's expiry (t=8) fired; the one at 18 was
    # cancelled by the stop at 12.
    assert kernel.trace.times("task.activate", "A") == [ms(8)]


def test_next_table_switches_at_cycle_boundary():
    sim, kernel = make_kernel()
    normal_task = kernel.add_task(TaskSpec("NORMAL", wcet=us(100),
                                           priority=1, deadline=ms(50)))
    limp_task = kernel.add_task(TaskSpec("LIMP", wcet=us(100),
                                         priority=1, deadline=ms(50)))
    normal = ScheduleTable(kernel, "normal", duration=ms(10),
                           expiry_points=[ExpiryPoint(
                               0, activate=[normal_task])])
    limp = ScheduleTable(kernel, "limp", duration=ms(20),
                         expiry_points=[ExpiryPoint(
                             ms(5), activate=[limp_task])])
    normal.start_rel()
    # Mode change request mid-cycle at t=13: takes effect at t=20.
    sim.schedule(ms(13), lambda: normal.next_table(limp))
    sim.run_until(ms(60))
    assert kernel.trace.times("task.activate", "NORMAL") == [0, ms(10)]
    assert kernel.trace.times("task.activate", "LIMP") == [ms(25), ms(45)]
    assert normal.state == "stopped"
    assert limp.state == "running"
    switches = kernel.trace.records("schedtable.switch")
    assert len(switches) == 1 and switches[0].time == ms(20)


def test_event_and_callback_actions():
    sim, kernel = make_kernel()
    event = kernel.event("TICK")
    hits = []
    table = ScheduleTable(kernel, "tbl", duration=ms(10), expiry_points=[
        ExpiryPoint(ms(1), set_events=[event]),
        ExpiryPoint(ms(2), callback=lambda: hits.append(sim.now)),
    ])
    table.start_rel()
    sim.run_until(ms(15))
    assert event.set_count == 2
    assert hits == [ms(2), ms(12)]


def test_table_validation():
    sim, kernel = make_kernel()
    task = kernel.add_task(TaskSpec("A", wcet=1, priority=1,
                                    deadline=ms(1)))
    with pytest.raises(ConfigurationError):
        ScheduleTable(kernel, "t", duration=0,
                      expiry_points=[ExpiryPoint(0)])
    with pytest.raises(ConfigurationError):
        ScheduleTable(kernel, "t", duration=ms(10), expiry_points=[])
    with pytest.raises(ConfigurationError):
        ScheduleTable(kernel, "t", duration=ms(10),
                      expiry_points=[ExpiryPoint(ms(10),
                                                 activate=[task])])
    with pytest.raises(ConfigurationError):
        ScheduleTable(kernel, "t", duration=ms(10),
                      expiry_points=[ExpiryPoint(0), ExpiryPoint(0)])
    with pytest.raises(ConfigurationError):
        ExpiryPoint(-1)
    table = ScheduleTable(kernel, "t", duration=ms(10),
                          expiry_points=[ExpiryPoint(0)])
    table.start_rel()
    with pytest.raises(ConfigurationError):
        table.start_rel()
    other = ScheduleTable(kernel, "o", duration=ms(10),
                          expiry_points=[ExpiryPoint(0)])
    stopped = ScheduleTable(kernel, "s", duration=ms(10),
                            expiry_points=[ExpiryPoint(0)])
    with pytest.raises(ConfigurationError):
        other.next_table(stopped)  # other is not running


def test_mode_machine_drives_table_switch():
    """Integration: a mode switch requests the degraded table."""
    from repro.bsw import ModeMachine
    sim, kernel = make_kernel()
    fast = kernel.add_task(TaskSpec("FAST", wcet=us(100), priority=1,
                                    deadline=ms(50)))
    slow = kernel.add_task(TaskSpec("SLOW", wcet=us(100), priority=1,
                                    deadline=ms(100)))
    normal = ScheduleTable(kernel, "normal", duration=ms(5),
                           expiry_points=[ExpiryPoint(0,
                                                      activate=[fast])])
    degraded = ScheduleTable(kernel, "degraded", duration=ms(50),
                             expiry_points=[ExpiryPoint(
                                 0, activate=[slow])])
    modes = ModeMachine("ecu", ["normal", "degraded"], "normal")
    modes.allow("normal", "degraded")
    modes.on_entry("degraded", lambda: normal.next_table(degraded))
    normal.start_rel()
    sim.schedule(ms(12), lambda: modes.request("degraded"))
    sim.run_until(ms(100))
    fast_acts = kernel.trace.times("task.activate", "FAST")
    assert fast_acts == [0, ms(5), ms(10)]  # stops at the boundary (15)
    slow_acts = kernel.trace.times("task.activate", "SLOW")
    assert slow_acts == [ms(15), ms(65)]
