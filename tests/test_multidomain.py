"""Tests for multi-domain deployments: per-domain buses with automatic
gateway routing (the simulated federated architecture of E5)."""

import pytest

from repro.errors import ConfigurationError
from repro.bsw import MultiCanGateway
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.network import CanBus, CanFrameSpec
from repro.sim import Simulator
from repro.units import ms, us

DATA_IF = SenderReceiverInterface("d", {"v": UINT16})


def producer(name="Producer", period=ms(10)):
    comp = SwComponent(name)
    comp.provide("out", DATA_IF)

    def tick(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        ctx.write("out", "v", ctx.state["n"])

    comp.runnable("tick", TimingEvent(period), tick, wcet=us(100))
    return comp


def consumer(name="Consumer"):
    comp = SwComponent(name)
    comp.require("in", DATA_IF)
    comp.runnable("on_data", DataReceivedEvent("in", "v"),
                  lambda ctx: ctx.state.__setitem__(
                      "last", ctx.read("in", "v")),
                  wcet=us(100))
    return comp


def federated_system():
    """Powertrain and body domains, one cross-domain signal."""
    app = Composition("App")
    app.add(producer().instantiate("engine_tx"))
    app.add(consumer().instantiate("pt_local"))
    app.add(consumer().instantiate("dash"))
    app.connect("engine_tx", "out", "pt_local", "in")
    app.connect("engine_tx", "out", "dash", "in")
    system = SystemModel("federated")
    system.add_ecu("ENGINE", domain="powertrain")
    system.add_ecu("TRANS", domain="powertrain")
    system.add_ecu("DASH", domain="body")
    system.set_root(app)
    system.map("engine_tx", "ENGINE")
    system.map("pt_local", "TRANS")
    system.map("dash", "DASH")
    system.configure_domain_bus("powertrain", "can", bitrate_bps=500_000)
    system.configure_domain_bus("body", "can", bitrate_bps=125_000)
    return system


def test_validation_requires_every_involved_domain_bus():
    system = federated_system()
    system.domain_buses.pop("body")
    issues = system.validate()
    assert any("domain 'body'" in issue for issue in issues)


def test_validation_rejects_non_can_cross_domain():
    system = federated_system()
    system.configure_domain_bus("body", "flexray")
    issues = system.validate()
    assert any("only supports CAN domains" in issue for issue in issues)


def test_cross_domain_signal_flows_through_gateway():
    system = federated_system()
    assert system.validate() == []
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(100))
    # Same-domain consumer got the data directly...
    assert runtime.value_of("pt_local", "in", "v") == 10
    # ...and the cross-domain consumer got it through the gateway.
    assert runtime.value_of("dash", "in", "v") >= 9
    assert runtime.gateway is not None
    assert runtime.gateway.forwarded >= 9
    # Two physical buses exist and both carried the frame.
    assert set(runtime.buses) == {"powertrain", "body"}
    assert runtime.buses["powertrain"].frames_delivered >= 10
    assert runtime.buses["body"].frames_delivered >= 9


def test_gateway_adds_latency_vs_same_domain():
    system = federated_system()
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(100))
    pt_rx = [r.time for r in
             runtime.buses["powertrain"].records("can.rx",
                                                 "engine_tx.out")]
    body_rx = [r.time for r in
               runtime.buses["body"].records("can.rx", "engine_tx.out")]
    # Gateway hop: body reception lags powertrain by delay + body wire
    # time (slower 125k bus).
    assert body_rx[0] > pt_rx[0] + us(100)


def test_single_domain_systems_unchanged():
    """Backward compatibility: default-domain systems keep runtime.bus
    and build no gateway."""
    app = Composition("App")
    app.add(producer().instantiate("p"))
    app.add(consumer().instantiate("c"))
    app.connect("p", "out", "c", "in")
    system = SystemModel("single")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("p", "E1")
    system.map("c", "E2")
    system.configure_bus("can")
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(50))
    assert runtime.gateway is None
    assert runtime.bus is not None
    assert runtime.value_of("c", "in", "v") == 5


def test_mixed_domains_without_cross_traffic_need_no_gateway():
    app = Composition("App")
    app.add(producer("P1").instantiate("p1"))
    app.add(consumer("C1").instantiate("c1"))
    app.add(producer("P2").instantiate("p2"))
    app.add(consumer("C2").instantiate("c2"))
    app.connect("p1", "out", "c1", "in")
    app.connect("p2", "out", "c2", "in")
    system = SystemModel("islands")
    system.add_ecu("A1", domain="a")
    system.add_ecu("A2", domain="a")
    system.add_ecu("B1", domain="b")
    system.add_ecu("B2", domain="b")
    system.set_root(app)
    system.map("p1", "A1")
    system.map("c1", "A2")
    system.map("p2", "B1")
    system.map("c2", "B2")
    system.configure_domain_bus("a", "can")
    system.configure_domain_bus("b", "flexray")
    assert system.validate() == []
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(60))
    assert runtime.gateway is None
    assert runtime.value_of("c1", "in", "v") >= 5
    assert runtime.value_of("c2", "in", "v") >= 4


def test_remote_void_call_crosses_domains():
    """C/S request PDUs are gateway-routed like data PDUs."""
    from repro.core import ClientServerInterface, Operation, UINT8
    from repro.core import OperationInvokedEvent
    act_if = ClientServerInterface(
        "act", {"set": Operation("set", {"level": UINT8})})
    server = SwComponent("Actuator")
    server.provide("srv", act_if)
    levels = []
    server.runnable("apply", OperationInvokedEvent("srv", "set"),
                    lambda ctx, level: levels.append((ctx.now, level)),
                    wcet=us(50))
    client = SwComponent("Commander")
    client.require("act", act_if)

    def tick(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        ctx.call("act", "set", level=ctx.state["n"] % 256)

    client.runnable("tick", TimingEvent(ms(20)), tick, wcet=us(100))
    app = Composition("App")
    app.add(server.instantiate("a"))
    app.add(client.instantiate("cmd"))
    app.connect("a", "srv", "cmd", "act")
    system = SystemModel("cs-domains")
    system.add_ecu("BODY_ECU", domain="body")
    system.add_ecu("PT_ECU", domain="powertrain")
    system.map("a", "BODY_ECU")
    system.map("cmd", "PT_ECU")
    system.set_root(app)
    system.configure_domain_bus("body", "can")
    system.configure_domain_bus("powertrain", "can")
    assert system.validate() == []
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(100))
    assert [level for __, level in levels] == [1, 2, 3, 4, 5]
    assert runtime.gateway.forwarded == 5
    # Calls executed after the double wire + gateway hop.
    assert all(t % ms(20) > us(500) for t, __ in levels)


def test_multicangateway_validation():
    sim = Simulator()
    bus_a = CanBus(sim, 500_000, name="A")
    bus_b = CanBus(sim, 500_000, name="B")
    with pytest.raises(ConfigurationError):
        MultiCanGateway(sim, "GW", {"a": bus_a})
    gw = MultiCanGateway(sim, "GW", {"a": bus_a, "b": bus_b})
    spec = CanFrameSpec("f", 0x100)
    gw.route("f", "a", {"b": spec})
    with pytest.raises(ConfigurationError):
        gw.route("f", "a", {"b": spec})  # duplicate
    with pytest.raises(ConfigurationError):
        gw.route("g", "a", {"a": spec})  # self-domain
    with pytest.raises(ConfigurationError):
        gw.route("h", "ghost", {"b": spec})
