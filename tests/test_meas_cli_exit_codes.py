"""Exit-code and digest-preservation contracts of the measurement CLIs.

``repro meas`` follows the ``repro model`` convention — 0 ok, 1 a
readable-but-invalid document or failed operation, 2 an unreadable
input — and this file pins every branch: registry/daq over a missing
file (2), over an invalid model document (1), and the ``mtf``
subcommand over damaged stores (2, with the reader's message, no
traceback).

It also pins what EXPERIMENTS calls digest preservation at the CLI
level: attaching the DAQ plane to ``repro campaign`` (``--daq``,
``--mtf-out``) must not change the campaign's own report digest —
measurement is an observer, not a participant.
"""

import json

import pytest

from repro.__main__ import main
from repro.meas.cli import meas_command
from repro.meas.mtf import MtfReader, MtfWriter
from repro.model.cli import EXIT_INVALID, EXIT_OK, EXIT_UNREADABLE


@pytest.fixture
def invalid_doc(tmp_path):
    """Readable JSON, recognizably a model document, but invalid."""
    path = tmp_path / "invalid.json"
    path.write_text(json.dumps({"format": "repro.model",
                                "format_version": 1}))
    return str(path)


# ----------------------------------------------------------------------
# repro meas registry / daq
# ----------------------------------------------------------------------
def test_registry_ok_prints_table_and_digest(capsys):
    assert meas_command(["registry", "adas-fusion"]) == EXIT_OK
    out = capsys.readouterr().out
    assert "registry digest" in out
    assert "calib.chain.timeout" in out


def test_registry_missing_file_exits_2(capsys):
    assert meas_command(["registry",
                         "/no/such/model.json"]) == EXIT_UNREADABLE
    assert "cannot read" in capsys.readouterr().err


def test_registry_invalid_document_exits_1(invalid_doc, capsys):
    assert meas_command(["registry", invalid_doc]) == EXIT_INVALID
    assert "invalid model document" in capsys.readouterr().err


def test_daq_missing_file_exits_2(capsys):
    assert meas_command(["daq",
                         "/no/such/model.json"]) == EXIT_UNREADABLE
    assert "cannot read" in capsys.readouterr().err


def test_daq_invalid_document_exits_1(invalid_doc, capsys):
    assert meas_command(["daq", invalid_doc]) == EXIT_INVALID
    assert "invalid model document" in capsys.readouterr().err


def test_daq_ok_prints_digest_and_writes_mtf(tmp_path, capsys):
    path = str(tmp_path / "daq.mtf")
    assert meas_command(["daq", "adas-fusion", "--horizon-ms", "5",
                         "--mtf-out", path]) == EXIT_OK
    out = capsys.readouterr().out
    assert "measurement digest: sha256:" in out
    assert f"wrote {path}" in out
    with MtfReader(path) as reader:
        assert reader.records > 0


# ----------------------------------------------------------------------
# repro meas mtf over damaged stores
# ----------------------------------------------------------------------
def test_mtf_missing_file_exits_2(capsys):
    assert meas_command(["mtf", "/no/such.mtf"]) == EXIT_UNREADABLE
    assert "not an MTF file" in capsys.readouterr().err


def test_mtf_foreign_file_exits_2(tmp_path, capsys):
    path = tmp_path / "notes.txt"
    path.write_text("not a trace store")
    assert meas_command(["mtf", str(path)]) == EXIT_UNREADABLE
    assert "not an MTF file" in capsys.readouterr().err


def test_mtf_truncated_store_exits_2_with_message(tmp_path, capsys):
    """Right magic, chopped body: the reader's readable diagnosis must
    reach stderr as an exit-2 failure — not a traceback."""
    whole = str(tmp_path / "whole.mtf")
    with MtfWriter(whole) as writer:
        writer.write_batch([(t, "cat", "s", {"v": t})
                            for t in range(50)])
    with open(whole, "rb") as handle:
        blob = handle.read()
    chopped = tmp_path / "chopped.mtf"
    chopped.write_bytes(blob[:len(blob) // 2])
    assert meas_command(["mtf", str(chopped)]) == EXIT_UNREADABLE
    err = capsys.readouterr().err
    assert "truncated" in err or "corrupt" in err


def test_mtf_corrupt_block_read_exits_2(tmp_path, capsys):
    path = str(tmp_path / "t.mtf")
    with MtfWriter(path) as writer:
        writer.write_batch([(t, "cat", "s", {"v": t})
                            for t in range(50)])
    with MtfReader(path) as reader:
        offset = reader._blocks["cat:s"][0]["values_offset"]
    with open(path, "r+b") as handle:
        handle.seek(offset + 1)
        handle.write(b"\x00\xff")
    assert meas_command(["mtf", path,
                         "--signal", "cat:s"]) == EXIT_UNREADABLE
    assert "corrupt MTF block" in capsys.readouterr().err


# ----------------------------------------------------------------------
# campaign --daq / --mtf-out: measurement is an observer
# ----------------------------------------------------------------------
def _report_digest(out: str) -> str:
    (line,) = [l for l in out.splitlines()
               if l.startswith("report digest:")]
    return line.split("sha256:")[1]


def test_campaign_report_digest_unchanged_by_daq(tmp_path, capsys):
    """The campaign's report digest with --daq (and --mtf-out) attached
    is byte-identical to the plain run, the measurement digest is
    printed, and the MTF store holds every emitted sample."""
    assert main(["repro", "campaign", "--smoke"]) == 0
    plain = capsys.readouterr().out

    path = str(tmp_path / "campaign.mtf")
    assert main(["repro", "campaign", "--smoke", "--daq",
                 "--mtf-out", path]) == 0
    with_daq = capsys.readouterr().out

    assert _report_digest(plain) == _report_digest(with_daq)
    assert "measurement digest: sha256:" in with_daq
    (samples_line,) = [l for l in with_daq.splitlines()
                       if l.startswith("daq samples:")]
    samples = int(samples_line.split(":")[1])
    assert samples > 0
    with MtfReader(path) as reader:
        assert reader.records == samples


def test_campaign_mtf_out_requires_daq(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["repro", "campaign", "--smoke", "--mtf-out", "x.mtf"])
    assert excinfo.value.code == 2
    assert "--mtf-out requires --daq" in capsys.readouterr().err
