"""Tests for the COM stack over CAN: modes, update bits, timeouts."""

import pytest

from repro.errors import ConfigurationError
from repro.com import (CanComAdapter, ComStack, DIRECT, IPdu, MIXED, PERIODIC,
                       SignalMapping, SignalSpec, TRIGGERED,
                       pack_sequentially)
from repro.network import CanBus, CanFrameSpec
from repro.sim import Simulator
from repro.units import ms


def make_pair(tx_pdu_specs, rx_timeout=None):
    """Two nodes on one CAN bus; A transmits PDU 'P', B receives it."""
    sim = Simulator()
    bus = CanBus(sim, 500_000)
    sender = ComStack(sim, CanComAdapter(
        bus.attach("A"), {"P": CanFrameSpec("P", 0x100)}), "A")
    receiver = ComStack(sim, CanComAdapter(
        bus.attach("B"), {}), "B")
    return sim, bus, sender, receiver


def speed_pdu(timeout=None, update_bits=False):
    return pack_sequentially(
        "P", 8, [SignalSpec("speed", 16, timeout=timeout)],
        with_update_bits=update_bits)


def test_periodic_transmission_carries_latest_value():
    sim, bus, tx, rx = make_pair(None)
    tx.add_tx_pdu(speed_pdu(), mode=PERIODIC, period=ms(10))
    rx.add_rx_pdu(speed_pdu())
    got = []
    rx.on_signal("speed", got.append)
    tx.write_signal("speed", 55)
    sim.run_until(ms(25))
    assert got == [55, 55]
    assert rx.read_signal("speed") == 55


def test_direct_mode_transmits_on_triggered_write():
    sim, bus, tx, rx = make_pair(None)
    pdu_tx = pack_sequentially(
        "P", 8, [SignalSpec("cmd", 8, transfer=TRIGGERED)])
    pdu_rx = pack_sequentially(
        "P", 8, [SignalSpec("cmd", 8, transfer=TRIGGERED)])
    tx.add_tx_pdu(pdu_tx, mode=DIRECT)
    rx.add_rx_pdu(pdu_rx)
    got = []
    rx.on_signal("cmd", lambda v: got.append((sim.now, v)))
    sim.schedule(ms(3), lambda: tx.write_signal("cmd", 9))
    sim.run_until(ms(10))
    assert len(got) == 1
    assert got[0][1] == 9
    assert got[0][0] < ms(4)  # immediate, not periodic


def test_pending_write_does_not_trigger_direct_pdu():
    sim, bus, tx, rx = make_pair(None)
    pdu = pack_sequentially("P", 8, [SignalSpec("val", 8)])  # PENDING
    tx.add_tx_pdu(pdu, mode=DIRECT)
    tx.write_signal("val", 1)
    sim.run_until(ms(50))
    assert bus.frames_delivered == 0


def test_mixed_mode_periodic_plus_triggered():
    sim, bus, tx, rx = make_pair(None)
    pdu = pack_sequentially(
        "P", 8, [SignalSpec("x", 8, transfer=TRIGGERED)])
    tx.add_tx_pdu(pdu, mode=MIXED, period=ms(20))
    sim.schedule(ms(5), lambda: tx.write_signal("x", 1))
    sim.run_until(ms(45))
    # One triggered at ~5ms plus periodic at 20 and 40 ms.
    assert tx._tx_pdus["P"].tx_count == 3


def test_update_bits_suppress_stale_callbacks():
    sim, bus, tx, rx = make_pair(None)
    tx.add_tx_pdu(speed_pdu(update_bits=True), mode=PERIODIC, period=ms(10))
    rx.add_rx_pdu(speed_pdu(update_bits=True))
    got = []
    rx.on_signal("speed", got.append)
    tx.write_signal("speed", 7)
    sim.run_until(ms(45))
    # 4 transmissions, but only the first carries the update bit.
    assert got == [7]
    assert rx.read_signal("speed") == 7


def test_rx_timeout_fires_and_recovers():
    sim, bus, tx, rx = make_pair(None)
    tx.add_tx_pdu(speed_pdu(timeout=ms(25)), mode=PERIODIC, period=ms(10))
    rx.add_rx_pdu(speed_pdu(timeout=ms(25)))
    timeouts = []
    rx.on_timeout("speed", lambda: timeouts.append(sim.now))

    # Kill the sender's periodic transmission at 35 ms by bus-off.
    sim.schedule(ms(35), bus.controllers["A"].set_bus_off)
    sim.run_until(ms(100))
    assert len(timeouts) == 1
    # Last reception ~30ms, timeout 25ms later.
    assert ms(54) <= timeouts[0] <= ms(56)
    assert "speed" in rx.timed_out


def test_timeout_recovery_logged_on_reception():
    sim, bus, tx, rx = make_pair(None)
    rx.add_rx_pdu(speed_pdu(timeout=ms(5)))
    tx.add_tx_pdu(speed_pdu(timeout=ms(5)), mode=PERIODIC, period=ms(20))
    # Timeout (5 ms) fires before the first reception (~20.3 ms); stop
    # right after that reception, before the timeout re-fires at ~25.3 ms.
    sim.run_until(ms(21))
    assert len(rx.trace.records("com.timeout", "speed")) == 1
    assert len(rx.trace.records("com.timeout_recovered", "speed")) == 1
    assert "speed" not in rx.timed_out


def test_signal_age_tracks_reception():
    sim, bus, tx, rx = make_pair(None)
    tx.add_tx_pdu(speed_pdu(), mode=PERIODIC, period=ms(10))
    rx.add_rx_pdu(speed_pdu())
    assert rx.signal_age("speed") is None
    sim.run_until(ms(12))
    age = rx.signal_age("speed")
    assert age is not None and age < ms(2)


def test_unknown_signal_rejected():
    sim, bus, tx, rx = make_pair(None)
    with pytest.raises(ConfigurationError):
        tx.write_signal("nope", 1)
    with pytest.raises(ConfigurationError):
        rx.read_signal("nope")


def test_on_timeout_requires_configured_timeout():
    sim, bus, tx, rx = make_pair(None)
    rx.add_rx_pdu(speed_pdu())  # no timeout
    with pytest.raises(ConfigurationError):
        rx.on_timeout("speed", lambda: None)


def test_periodic_mode_requires_period():
    sim, bus, tx, rx = make_pair(None)
    with pytest.raises(ConfigurationError):
        tx.add_tx_pdu(speed_pdu(), mode=PERIODIC, period=None)


def test_duplicate_pdu_registration_rejected():
    sim, bus, tx, rx = make_pair(None)
    tx.add_tx_pdu(speed_pdu(), mode=PERIODIC, period=ms(10))
    with pytest.raises(ConfigurationError):
        tx.add_tx_pdu(speed_pdu(), mode=PERIODIC, period=ms(10))
