"""Tests for cost-driven platform sizing and composition-wide contract
checking."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.contracts import (CPU, Contract, Predicate, RichComponent,
                             TIMING, Var, VerticalAssumption,
                             check_composition_contracts)
from repro.core import Composition, SenderReceiverInterface, SwComponent, \
    UINT16
from repro.dse import EcuType, size_platform

DATA_IF = SenderReceiverInterface("d", {"v": UINT16})


# ----------------------------------------------------------------------
# Platform sizing
# ----------------------------------------------------------------------
CATALOGUE = [
    EcuType("small", cpu_capacity=0.5, cost=10.0),
    EcuType("medium", cpu_capacity=1.0, cost=16.0),
    EcuType("large", cpu_capacity=2.0, cost=28.0),
]


def claims(demands):
    return [VerticalAssumption(f"r{i}", CPU, demand)
            for i, demand in enumerate(demands)]


def test_single_small_claim_buys_smallest_ecu():
    choice = size_platform(claims([0.3]), CATALOGUE)
    assert len(choice.ecus) == 1
    assert choice.ecus[0].ecu_type.name == "small"
    assert choice.total_cost == 10.0


def test_claims_are_packed_not_scattered():
    choice = size_platform(claims([0.4, 0.4, 0.4, 0.4]), CATALOGUE)
    # 1.6 total: one large (2.0, cost 28) beats scattering smalls
    # (4 x 10 = 40) — FFD opens the large for the first claim? No: the
    # cheapest type fitting 0.4 is small; FFD then packs pairwise.
    assert sum(e.load for e in choice.ecus) == pytest.approx(1.6)
    assert choice.total_cost <= 40.0
    for ecu in choice.ecus:
        assert ecu.load <= ecu.ecu_type.cpu_capacity + 1e-9


def test_downsizing_pass_reduces_cost():
    # One claim of 1.2 forces a large; a second of 0.1 joins it; the
    # downsizing pass cannot shrink (load 1.3 needs large) — but a lone
    # 0.6 opened on a medium stays medium while 0.3 would downsize.
    choice = size_platform(claims([0.6]), CATALOGUE)
    assert choice.ecus[0].ecu_type.name == "medium"
    choice = size_platform(claims([1.2, 0.1]), CATALOGUE)
    assert len(choice.ecus) == 1
    assert choice.ecus[0].ecu_type.name == "large"


def test_utilization_ceiling_derates_capacity():
    # 0.45 fits a small at full rating but not at a 0.8 ceiling.
    full = size_platform(claims([0.45]), CATALOGUE)
    assert full.ecus[0].ecu_type.name == "small"
    derated = size_platform(claims([0.45]), CATALOGUE,
                            utilization_ceiling=0.8)
    assert derated.ecus[0].ecu_type.name == "medium"


def test_oversized_claim_rejected():
    with pytest.raises(AnalysisError):
        size_platform(claims([2.5]), CATALOGUE)
    with pytest.raises(AnalysisError):
        size_platform([], CATALOGUE)
    with pytest.raises(AnalysisError):
        size_platform(claims([0.1]), [])
    with pytest.raises(AnalysisError):
        EcuType("bad", cpu_capacity=0, cost=1)


def test_allocation_covers_every_claim():
    demands = [0.3, 0.7, 0.2, 1.5, 0.05]
    choice = size_platform(claims(demands), CATALOGUE)
    allocation = choice.allocation()
    assert sorted(allocation) == [f"r{i}" for i in range(len(demands))]


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=1.9),
                min_size=1, max_size=12))
def test_sizing_properties(demands):
    choice = size_platform(claims(demands), CATALOGUE)
    # Every claim placed exactly once; no ECU over capacity.
    assert len(choice.allocation()) == len(demands)
    for ecu in choice.ecus:
        assert ecu.load <= ecu.ecu_type.cpu_capacity + 1e-9
    # Cost never exceeds the naive one-large-per-claim bound.
    assert choice.total_cost <= 28.0 * len(demands)


# ----------------------------------------------------------------------
# Composition-wide contract checking
# ----------------------------------------------------------------------
X = Var("x", range(0, 64, 4))
UNIVERSE = {"x": X}


def rich_pair(source_limit):
    producer = SwComponent("Producer")
    producer.provide("out", DATA_IF)
    rich_producer = RichComponent(producer)
    rich_producer.add_contract(TIMING, Contract(
        "p", Predicate.true(),
        Predicate(lambda e, lim=source_limit: e["x"] <= lim, ["x"],
                  f"x<={source_limit}")))
    consumer = SwComponent("Consumer")
    consumer.require("in", DATA_IF)
    rich_consumer = RichComponent(consumer)
    rich_consumer.add_contract(TIMING, Contract(
        "c", Predicate(lambda e: e["x"] <= 32, ["x"], "x<=32"),
        Predicate.true()))
    return producer, consumer, {"Producer": rich_producer,
                                "Consumer": rich_consumer}


def build(producer, consumer):
    app = Composition("App")
    app.add(producer.instantiate("p"))
    app.add(consumer.instantiate("c"))
    app.connect("p", "out", "c", "in")
    return app


def test_composition_check_passes_compatible_wiring():
    producer, consumer, rich_of = rich_pair(source_limit=24)
    rows = check_composition_contracts(build(producer, consumer),
                                       rich_of, UNIVERSE)
    assert len(rows) == 1
    assert rows[0]["ok"] is True
    assert rows[0]["viewpoint"] == TIMING


def test_composition_check_finds_violation_with_counterexample():
    producer, consumer, rich_of = rich_pair(source_limit=60)
    rows = check_composition_contracts(build(producer, consumer),
                                       rich_of, UNIVERSE)
    assert rows[0]["ok"] is False
    assert 32 < rows[0]["counterexample"]["x"] <= 60


def test_composition_check_reports_unspecified_components():
    producer, consumer, rich_of = rich_pair(source_limit=24)
    del rich_of["Consumer"]
    rows = check_composition_contracts(build(producer, consumer),
                                       rich_of, UNIVERSE)
    assert rows[0]["ok"] is None
    assert "no rich specification" in rows[0]["note"]
