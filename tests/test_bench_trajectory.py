"""The bench-trajectory aggregator and its committed aggregate.

``benchmarks/trajectory.py`` normalises every ``BENCH_*.json`` at the
repo root into one flat, plottable ``BENCH_trajectory.json``.  Pinned
here: the flattener's numeric-leaf semantics, the schema validator's
readable problem rows, byte-determinism, the committed aggregate being
in sync with its sources (the same regenerate-on-change contract the
generated test suite lives under), and readable errors for malformed
inputs.
"""

import importlib.util
import json
import os

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "bench_trajectory",
    os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "benchmarks", "trajectory.py"))
trajectory = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(trajectory)


def write_bench(root, name, doc):
    path = os.path.join(root, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)
    return path


@pytest.fixture
def bench_root(tmp_path):
    write_bench(tmp_path, "alpha", {
        "bench": "alpha", "quick": False,
        "gates": {"enforced": True, "floor": 2.0, "ok": True},
        "timing": {"events_per_s": 1000.5, "events": 90,
                   "label": "warm", "nested": {"deep": 3}},
    })
    write_bench(tmp_path, "beta", {
        "bench": "beta", "quick": True,
        "speedup": 4.5,
    })
    return str(tmp_path)


# ----------------------------------------------------------------------
# flattening + building
# ----------------------------------------------------------------------
def test_flatten_keeps_numeric_leaves_only():
    flat = trajectory.flatten_numeric({
        "a": {"b": 1, "c": 2.5, "ok": True, "name": "x"},
        "d": 3, "e": {"f": {"g": 4}}})
    assert flat == {"a.b": 1, "a.c": 2.5, "d": 3, "e.f.g": 4}


def test_build_trajectory_shape(bench_root):
    doc = trajectory.build_trajectory(bench_root)
    assert doc["format"] == trajectory.TRAJECTORY_FORMAT
    assert doc["benchmarks"] == 2
    alpha, beta = doc["entries"]
    assert [alpha["bench"], beta["bench"]] == ["alpha", "beta"]
    assert alpha["gates"] == {"enforced": True, "floor": 2.0,
                              "ok": True}
    assert alpha["metrics"] == {"timing.events_per_s": 1000.5,
                                "timing.events": 90,
                                "timing.nested.deep": 3}
    assert beta["quick"] is True and beta["gates"] == {}
    assert len(alpha["sha256"]) == 64
    assert trajectory.validate_trajectory(doc) == []


def test_build_is_byte_deterministic(bench_root):
    first = trajectory.trajectory_json(
        trajectory.build_trajectory(bench_root))
    second = trajectory.trajectory_json(
        trajectory.build_trajectory(bench_root))
    assert first == second


def test_malformed_source_is_a_readable_error(bench_root):
    bad = os.path.join(bench_root, "BENCH_broken.json")
    with open(bad, "w", encoding="utf-8") as handle:
        handle.write("{not json")
    with pytest.raises(ValueError) as excinfo:
        trajectory.build_trajectory(bench_root)
    assert "not valid JSON" in str(excinfo.value)


def test_source_without_bench_name_is_rejected(bench_root):
    write_bench(bench_root, "anon", {"speedup": 2.0})
    with pytest.raises(ValueError) as excinfo:
        trajectory.build_trajectory(bench_root)
    assert "missing its 'bench' name" in str(excinfo.value)


def test_duplicate_bench_names_are_rejected(bench_root):
    write_bench(bench_root, "alpha2", {"bench": "alpha", "x": 1})
    with pytest.raises(ValueError) as excinfo:
        trajectory.build_trajectory(bench_root)
    assert "duplicate bench names" in str(excinfo.value)


# ----------------------------------------------------------------------
# schema validation
# ----------------------------------------------------------------------
def test_validator_reports_each_problem(bench_root):
    doc = trajectory.build_trajectory(bench_root)
    doc["format_version"] = 99
    doc["benchmarks"] = 7
    doc["entries"][0]["sha256"] = "short"
    doc["entries"][1]["metrics"]["speedup"] = "fast"
    problems = trajectory.validate_trajectory(doc)
    assert any("format_version" in p for p in problems)
    assert any("benchmarks: says 7" in p for p in problems)
    assert any("sha256 must be 64 hex chars" in p for p in problems)
    assert any("metric 'speedup' is not numeric" in p
               for p in problems)


def test_validator_rejects_unsorted_entries(bench_root):
    doc = trajectory.build_trajectory(bench_root)
    doc["entries"].reverse()
    assert any("not sorted" in p
               for p in trajectory.validate_trajectory(doc))


# ----------------------------------------------------------------------
# the committed aggregate
# ----------------------------------------------------------------------
def test_committed_trajectory_is_in_sync():
    """BENCH_trajectory.json must match a rebuild from the committed
    BENCH_*.json files — the tier-1 mirror of `--check`."""
    rebuilt = trajectory.trajectory_json(
        trajectory.build_trajectory(trajectory.REPO_ROOT))
    path = os.path.join(trajectory.REPO_ROOT, trajectory.OUTPUT_NAME)
    with open(path, encoding="utf-8") as handle:
        assert handle.read() == rebuilt
    doc = json.loads(rebuilt)
    assert trajectory.validate_trajectory(doc) == []
    assert {e["bench"] for e in doc["entries"]} >= {"e17_perf",
                                                    "e19_meas"}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_write_then_check_round_trip(bench_root, capsys):
    assert trajectory.main(["--root", bench_root]) == 0
    assert "wrote" in capsys.readouterr().out
    assert trajectory.main(["--root", bench_root, "--check"]) == 0
    assert "IN SYNC" in capsys.readouterr().out


def test_cli_check_fails_on_drift(bench_root, capsys):
    assert trajectory.main(["--root", bench_root]) == 0
    capsys.readouterr()
    write_bench(bench_root, "alpha", {"bench": "alpha",
                                      "speedup": 9.9})
    assert trajectory.main(["--root", bench_root, "--check"]) == 1
    assert "DRIFT" in capsys.readouterr().out


def test_cli_check_missing_aggregate_fails(bench_root, capsys):
    assert trajectory.main(["--root", bench_root, "--check"]) == 1
    assert "missing" in capsys.readouterr().err


def test_cli_malformed_source_exits_2(bench_root, capsys):
    with open(os.path.join(bench_root, "BENCH_bad.json"), "w",
              encoding="utf-8") as handle:
        handle.write("[1, 2")
    assert trajectory.main(["--root", bench_root]) == 2
    assert "not valid JSON" in capsys.readouterr().err
