"""The model→pytest generator and its SHA-256 sync tracking.

Contracts pinned here: generation is byte-deterministic (two runs
render identical modules and an identical manifest), the committed
suite under ``tests/generated/`` is in sync with the bundled scenario
library, and ``repro model testgen --check`` classifies every way the
model↔test mapping can drift — STALE (model or behaviour changed
without regeneration), EDITED (a generated file was touched by hand),
MISSING, EXTRA — with the ``repro model`` 0/1/2 exit-code contract.
"""

import json
import os
import shutil

import pytest

from repro.errors import ConfigurationError
from repro.model import testgen
from repro.model.cli import (EXIT_INVALID, EXIT_OK, EXIT_UNREADABLE,
                             model_command)
from repro.model.scenarios import scenario_names, scenario_path


# ----------------------------------------------------------------------
# rendering determinism + content
# ----------------------------------------------------------------------
def test_plan_is_byte_deterministic():
    first = testgen.plan_modules(["adas-fusion"])
    second = testgen.plan_modules(["adas-fusion"])
    assert [m.content for m in first] == [m.content for m in second]
    assert [m.sha256 for m in first] == [m.sha256 for m in second]
    assert testgen.manifest_json(testgen.build_manifest(first)) == \
        testgen.manifest_json(testgen.build_manifest(second))


def test_rendered_module_carries_provenance_and_requirements():
    (module,) = testgen.plan_modules(["tdma-overload"])
    assert module.filename == "test_gen_tdma_overload.py"
    assert "GENERATED TEST SUITE — DO NOT EDIT BY HAND" in module.content
    assert f"Generator    : repro.model.testgen " \
           f"v{testgen.GENERATOR_VERSION}" in module.content
    assert module.model_digest in module.content
    # one requirement-traced test function per contract, 001..008
    for number in range(1, testgen.TESTS_PER_MODEL + 1):
        assert f"REQ-TDMA-OVERLOAD-{number:03d}" in module.content
    assert module.content.count("def test_REQ_") == \
        testgen.TESTS_PER_MODEL


def test_manifest_maps_model_digest_to_file_sha():
    modules = testgen.plan_modules(["limp-home"])
    manifest = testgen.build_manifest(modules)
    assert manifest["format"] == testgen.MANIFEST_FORMAT
    assert manifest["generator_version"] == testgen.GENERATOR_VERSION
    (entry,) = manifest["entries"]
    assert entry["file"] == "test_gen_limp_home.py"
    assert entry["model_digest"] == modules[0].model_digest
    assert entry["sha256"] == modules[0].sha256
    assert entry["tests"] == testgen.TESTS_PER_MODEL


def test_slug_collision_is_rejected(tmp_path):
    copy = tmp_path / "other.json"
    shutil.copyfile(scenario_path("adas-fusion"), copy)
    with pytest.raises(ConfigurationError) as excinfo:
        testgen.plan_modules(["adas-fusion", str(copy)])
    assert "collides" in str(excinfo.value)


def test_unreadable_ref_raises_configuration_error():
    with pytest.raises(ConfigurationError):
        testgen.plan_modules(["/no/such/model.json"])


# ----------------------------------------------------------------------
# the committed suite is in sync
# ----------------------------------------------------------------------
def test_committed_suite_is_in_sync():
    """The acceptance gate, as a tier-1 test: the files under
    tests/generated/ must match an in-memory regeneration exactly."""
    in_sync, lines = testgen.check_suite()
    assert in_sync, "\n".join(lines)
    assert lines[-1].startswith("generated suite: IN SYNC")
    assert sum(1 for line in lines if ": OK " in line) == \
        len(scenario_names())


def test_committed_manifest_matches_disk_bytes():
    path = os.path.join(testgen.DEFAULT_OUTPUT_DIR,
                        testgen.MANIFEST_NAME)
    with open(path, encoding="utf-8") as handle:
        manifest = json.load(handle)
    for entry in manifest["entries"]:
        generated = os.path.join(testgen.DEFAULT_OUTPUT_DIR,
                                 entry["file"])
        with open(generated, encoding="utf-8") as handle:
            assert testgen.file_sha256(handle.read()) == entry["sha256"]


# ----------------------------------------------------------------------
# drift classification (isolated in a tmp dir)
# ----------------------------------------------------------------------
@pytest.fixture
def suite(tmp_path):
    """A generated single-model suite over a mutable model copy."""
    model_file = tmp_path / "model.json"
    shutil.copyfile(scenario_path("adas-fusion"), model_file)
    out = tmp_path / "generated"
    testgen.write_suite([str(model_file)], output_dir=str(out))
    return str(model_file), str(out)


def _mutate(model_file: str) -> None:
    with open(model_file, encoding="utf-8") as handle:
        doc = json.load(handle)
    doc["meta"]["description"] += " (mutated)"
    with open(model_file, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)


def test_clean_generated_suite_checks_in_sync(suite):
    model_file, out = suite
    in_sync, lines = testgen.check_suite([model_file], output_dir=out)
    assert in_sync, "\n".join(lines)


def test_mutated_model_is_stale(suite):
    model_file, out = suite
    _mutate(model_file)
    in_sync, lines = testgen.check_suite([model_file], output_dir=out)
    assert not in_sync
    assert any("STALE" in line and "model changed" in line
               for line in lines)


def test_regeneration_after_mutation_restores_sync(suite):
    model_file, out = suite
    _mutate(model_file)
    testgen.write_suite([str(model_file)], output_dir=out)
    in_sync, lines = testgen.check_suite([model_file], output_dir=out)
    assert in_sync, "\n".join(lines)


def test_hand_edited_generated_file_is_flagged(suite):
    model_file, out = suite
    target = os.path.join(out, "test_gen_adas_fusion.py")
    with open(target, "a", encoding="utf-8") as handle:
        handle.write("\n# sneaky local tweak\n")
    in_sync, lines = testgen.check_suite([model_file], output_dir=out)
    assert not in_sync
    assert any("EDITED" in line for line in lines)


def test_missing_generated_file_is_flagged(suite):
    model_file, out = suite
    os.remove(os.path.join(out, "test_gen_adas_fusion.py"))
    in_sync, lines = testgen.check_suite([model_file], output_dir=out)
    assert not in_sync
    assert any("MISSING" in line for line in lines)


def test_stray_generated_file_is_flagged(suite):
    model_file, out = suite
    stray = os.path.join(out, "test_gen_stray.py")
    with open(stray, "w", encoding="utf-8") as handle:
        handle.write("def test_nothing():\n    pass\n")
    in_sync, lines = testgen.check_suite([model_file], output_dir=out)
    assert not in_sync
    assert any("EXTRA" in line for line in lines)


def test_missing_manifest_is_flagged(suite, tmp_path):
    model_file, _out = suite
    empty = tmp_path / "empty"
    empty.mkdir()
    in_sync, lines = testgen.check_suite([model_file],
                                         output_dir=str(empty))
    assert not in_sync
    assert "no sync manifest" in lines[0]


def test_write_suite_removes_stale_modules(suite):
    model_file, out = suite
    stray = os.path.join(out, "test_gen_removed_model.py")
    with open(stray, "w", encoding="utf-8") as handle:
        handle.write("# left over from a removed model\n")
    testgen.write_suite([model_file], output_dir=out)
    assert not os.path.exists(stray)


# ----------------------------------------------------------------------
# generated code is executable (path-sourced model)
# ----------------------------------------------------------------------
def test_generated_module_executes_for_file_sources(suite):
    """The cheap generated contracts (schema, digest sync, round-trip,
    inventory) pass when the module is executed directly — proof the
    rendered code is valid for user-supplied model files, not just
    bundled names."""
    model_file, out = suite
    path = os.path.join(out, "test_gen_adas_fusion.py")
    with open(path, encoding="utf-8") as handle:
        namespace: dict = {}
        exec(compile(handle.read(), path, "exec"), namespace)
    assert namespace["SOURCE"] == model_file
    for label in ("001_schema_valid", "002_source_digest_in_sync",
                  "003_roundtrip_digest_identical",
                  "004_structure_inventory"):
        namespace[f"test_REQ_ADAS_FUSION_{label}"]()


# ----------------------------------------------------------------------
# CLI exit codes
# ----------------------------------------------------------------------
def test_cli_check_passes_on_clean_tree(capsys):
    assert model_command(["testgen", "--check"]) == EXIT_OK
    assert "IN SYNC" in capsys.readouterr().out


def test_cli_check_fails_on_drift(suite, capsys):
    model_file, out = suite
    _mutate(model_file)
    assert model_command(["testgen", "--check", "--output-dir", out,
                          model_file]) == EXIT_INVALID
    assert "DRIFT" in capsys.readouterr().out


def test_cli_generate_writes_suite(tmp_path, capsys):
    out = tmp_path / "gen"
    assert model_command(["testgen", "--output-dir", str(out),
                          "tdma-overload"]) == EXIT_OK
    assert "wrote" in capsys.readouterr().out
    assert (out / "test_gen_tdma_overload.py").exists()
    assert (out / testgen.MANIFEST_NAME).exists()


def test_cli_unreadable_model_exits_2(tmp_path, capsys):
    assert model_command(["testgen", "--output-dir",
                          str(tmp_path / "g"),
                          "/no/such/model.json"]) == EXIT_UNREADABLE
    assert "cannot read" in capsys.readouterr().err


def test_cli_invalid_model_exits_1(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": "repro.model",
                               "format_version": 1}))
    assert model_command(["testgen", "--output-dir",
                          str(tmp_path / "g"),
                          str(bad)]) == EXIT_INVALID
    assert "invalid model document" in capsys.readouterr().err
