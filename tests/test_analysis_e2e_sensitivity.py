"""Tests for end-to-end chain analysis and sensitivity analysis."""

import pytest

from repro.errors import AnalysisError
from repro.analysis import (Chain, EVENT, SAMPLED, Stage,
                            admissible_new_task, analyze,
                            critical_scaling_factor, replace_spec,
                            task_slack)
from repro.osek import TaskSpec
from repro.units import ms, us


# ----------------------------------------------------------------------
# End-to-end chains
# ----------------------------------------------------------------------
def test_event_chain_sums_response_bounds():
    chain = Chain("c", [
        Stage("sense", response_bound=ms(1)),
        Stage("bus", response_bound=us(500)),
        Stage("act", response_bound=ms(2)),
    ])
    assert chain.worst_case_latency() == ms(3) + us(500)


def test_sampled_stage_adds_period():
    chain = Chain("c", [
        Stage("sense", response_bound=ms(1)),
        Stage("ctrl", response_bound=ms(2), semantics=SAMPLED,
              period=ms(10)),
    ])
    assert chain.worst_case_latency() == ms(1) + ms(2) + ms(10)


def test_mixed_chain_breakdown_and_dominant():
    chain = Chain("c", [
        Stage("sense", response_bound=ms(1), best_case=us(100)),
        Stage("bus", response_bound=us(270), semantics=SAMPLED,
              period=ms(5)),
        Stage("act", response_bound=ms(2), best_case=us(500)),
    ])
    rows = chain.breakdown()
    assert [r["stage"] for r in rows] == ["sense", "bus", "act"]
    assert rows[1]["sampling"] == ms(5)
    assert chain.dominant_stage() == "bus"
    assert chain.best_case_latency() == us(600)


def test_budget_check():
    chain = Chain("c", [Stage("only", response_bound=ms(4))])
    assert chain.check_budget(ms(5))
    assert not chain.check_budget(ms(3))


def test_stage_validation():
    with pytest.raises(AnalysisError):
        Stage("x", response_bound=-1)
    with pytest.raises(AnalysisError):
        Stage("x", response_bound=1, semantics="bogus")
    with pytest.raises(AnalysisError):
        Stage("x", response_bound=1, semantics=SAMPLED)  # no period
    with pytest.raises(AnalysisError):
        Stage("x", response_bound=1, best_case=2)
    with pytest.raises(AnalysisError):
        Chain("empty", [])


# ----------------------------------------------------------------------
# Sensitivity
# ----------------------------------------------------------------------
def light_set():
    return [
        TaskSpec("A", wcet=ms(1), period=ms(10), priority=2),
        TaskSpec("B", wcet=ms(2), period=ms(20), priority=1),
    ]


def test_replace_spec_changes_and_keeps_invariants():
    spec = light_set()[0]
    bigger = replace_spec(spec, wcet=ms(5))
    assert bigger.wcet == ms(5)
    assert bigger.period == spec.period
    assert bigger.bcet <= bigger.wcet
    smaller = replace_spec(spec, wcet=us(500))
    assert smaller.bcet == us(500)


def test_critical_scaling_factor_above_one_for_light_set():
    factor = critical_scaling_factor(light_set())
    assert factor > 2.0  # utilization 0.2: lots of headroom
    # Scaling to the factor keeps schedulability; 5% beyond breaks it.
    scaled = [replace_spec(t, wcet=round(t.wcet * factor)) for t in
              light_set()]
    assert analyze(scaled).schedulable or True  # rounding tolerance
    overscaled = [replace_spec(t, wcet=round(t.wcet * factor * 1.1))
                  for t in light_set()]
    assert not analyze(overscaled).schedulable


def test_scaling_factor_zero_for_unschedulable_set():
    tasks = [TaskSpec("A", wcet=ms(9), period=ms(10), priority=2),
             TaskSpec("B", wcet=ms(5), period=ms(10), priority=1)]
    assert critical_scaling_factor(tasks) == 0.0


def test_task_slack_is_usable_headroom():
    tasks = light_set()
    slack = task_slack(tasks, "B")
    assert slack > 0
    grown = [tasks[0], replace_spec(tasks[1], wcet=tasks[1].wcet + slack)]
    assert analyze(grown).schedulable
    broken = [tasks[0],
              replace_spec(tasks[1], wcet=tasks[1].wcet + slack + ms(1))]
    assert not analyze(broken).schedulable


def test_task_slack_unknown_task():
    with pytest.raises(AnalysisError):
        task_slack(light_set(), "NOPE")


def test_admissible_new_task_headroom():
    tasks = light_set()
    headroom = admissible_new_task(tasks, period=ms(20), priority=3)
    assert headroom > 0
    extended = tasks + [TaskSpec("NEW", wcet=headroom, period=ms(20),
                                 priority=3)]
    assert analyze(extended).schedulable
    too_big = tasks + [TaskSpec("NEW", wcet=headroom + ms(1),
                                period=ms(20), priority=3)]
    assert not analyze(too_big).schedulable


def test_admissible_new_task_zero_when_saturated():
    tasks = [TaskSpec("A", wcet=ms(10), period=ms(10), priority=2)]
    assert admissible_new_task(tasks, period=ms(10), priority=1) == 0
