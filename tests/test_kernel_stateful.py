"""Stateful property testing of the ECU kernel.

A hypothesis state machine drives the kernel with random interleavings
of sporadic activations, event sets, time advancement and priority
changes, checking conservation invariants after every step — the kind
of misuse-resistance a production OS layer needs.
"""

from hypothesis import settings
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, rule)
from hypothesis import strategies as st

from repro.osek import (EcuKernel, Execute, FixedPriorityScheduler,
                        TaskSpec, WaitEvent)
from repro.sim import Simulator
from repro.units import ms, us


class KernelMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.sim = Simulator()
        self.kernel = EcuKernel(self.sim, FixedPriorityScheduler())
        self.event = self.kernel.event("E")
        self.sporadic = []
        for index in range(3):
            task = self.kernel.add_task(
                TaskSpec(f"S{index}", wcet=us(300 + 100 * index),
                         priority=index + 1, deadline=ms(50),
                         max_activations=4))
            self.sporadic.append(task)
        self.kernel.add_task(TaskSpec("P", wcet=us(500), period=ms(7),
                                      priority=10))

        def waiter_body(job):
            yield Execute(us(100))
            yield WaitEvent(self.event)
            yield Execute(us(100))

        self.waiter = self.kernel.add_task(
            TaskSpec("W", wcet=us(200), priority=5, deadline=None,
                     max_activations=2), body=waiter_body)
        self.activations = 0

    @rule(index=st.integers(min_value=0, max_value=2))
    def activate_sporadic(self, index):
        job = self.kernel.activate(self.sporadic[index])
        if job is not None:
            self.activations += 1

    @rule()
    def activate_waiter(self):
        self.kernel.activate(self.waiter)

    @rule()
    def set_event(self):
        self.event.set()

    @rule(ticks=st.integers(min_value=1, max_value=5_000_000))
    def advance(self, ticks):
        self.sim.run_until(self.sim.now + ticks)

    @invariant()
    def conservation(self):
        kernel = getattr(self, "kernel", None)
        if kernel is None:
            return
        for task in kernel.tasks.values():
            assert task.jobs_completed <= task.jobs_activated
            assert len(task.pending_jobs) <= task.spec.max_activations
        assert 0 <= kernel.busy_ns <= max(1, self.sim.now)

    @invariant()
    def single_running_job(self):
        kernel = getattr(self, "kernel", None)
        if kernel is None:
            return
        running = kernel._running
        if running is not None:
            assert running not in kernel._ready
            assert running.state.value == "running"
        for job in kernel._ready:
            assert job.state.value == "ready"


KernelMachine.TestCase.settings = settings(max_examples=25,
                                           stateful_step_count=30,
                                           deadline=None)
TestKernelStateful = KernelMachine.TestCase
