"""Unit tests for the trace invariants, driven by hand-built traces
that provably violate (or satisfy) each property."""

from repro.sim import Trace
from repro.units import ms, us
from repro.verify import (AliveCounterInvariant, E2eContainmentInvariant,
                          InvariantChecker, NoOverlappingExecution,
                          PriorityCeilingInvariant, TdmaWindowInvariant)

ECUS = {"A": "E0", "B": "E0", "C": "E1"}


def check(trace, *invariants):
    return InvariantChecker(list(invariants)).run(trace)


# ----------------------------------------------------------------------
# NoOverlappingExecution
# ----------------------------------------------------------------------
def test_preempt_resume_sequence_is_clean():
    tr = Trace()
    tr.log(0, "task.start", "A")
    tr.log(5, "task.preempt", "A")
    tr.log(5, "task.start", "B")
    tr.log(9, "task.complete", "B")
    tr.log(9, "task.resume", "A")
    tr.log(12, "task.complete", "A")
    assert check(tr, NoOverlappingExecution(ECUS)) == []


def test_two_tasks_running_on_one_ecu_flagged():
    tr = Trace()
    tr.log(0, "task.start", "A")
    tr.log(5, "task.start", "B")  # A never yielded the CPU
    violations = check(tr, NoOverlappingExecution(ECUS))
    assert len(violations) == 1
    assert violations[0].time == 5
    assert violations[0].subject == "B"
    assert "A" in violations[0].message


def test_parallel_ecus_do_not_interfere():
    tr = Trace()
    tr.log(0, "task.start", "A")  # E0
    tr.log(1, "task.start", "C")  # E1: fine, different CPU
    assert check(tr, NoOverlappingExecution(ECUS)) == []


def test_unknown_tasks_are_ignored():
    tr = Trace()
    tr.log(0, "task.start", "A")
    tr.log(1, "task.start", "GHOST")
    assert check(tr, NoOverlappingExecution(ECUS)) == []


# ----------------------------------------------------------------------
# TdmaWindowInvariant
# ----------------------------------------------------------------------
WINDOWS = [(0, ms(2), "P0"), (ms(5), ms(2), "P1")]
PARTITION_OF = {"T0": "P0", "T1": "P1"}


def tdma():
    return TdmaWindowInvariant(WINDOWS, ms(10), PARTITION_OF)


def test_run_inside_own_window_is_clean():
    tr = Trace()
    tr.log(us(500), "task.start", "T0")
    tr.log(ms(1), "task.complete", "T0")
    # Next major frame occurrence of the same window.
    tr.log(ms(10), "task.start", "T0")
    tr.log(ms(11), "task.complete", "T0")
    assert check(tr, tdma()) == []


def test_run_outside_every_window_flagged():
    tr = Trace()
    tr.log(ms(3), "task.start", "T0")  # P0 owns [0, 2) only
    tr.log(ms(4), "task.complete", "T0")
    violations = check(tr, tdma())
    assert len(violations) == 1
    assert "outside every window" in violations[0].message


def test_run_in_foreign_window_flagged():
    tr = Trace()
    tr.log(ms(5) + us(100), "task.start", "T0")  # that's P1's window
    tr.log(ms(6), "task.complete", "T0")
    assert len(check(tr, tdma())) == 1


def test_run_past_window_end_flagged():
    tr = Trace()
    tr.log(ms(1), "task.start", "T0")
    tr.log(ms(3), "task.complete", "T0")  # window ended at 2 ms
    violations = check(tr, tdma())
    assert len(violations) == 1
    assert "past" in violations[0].message


# ----------------------------------------------------------------------
# PriorityCeilingInvariant
# ----------------------------------------------------------------------
PRIORITIES = {"low": 1, "mid": 5, "hi": 9}
SAME_ECU = {"low": "E0", "mid": "E0", "hi": "E0"}


def icpp():
    return PriorityCeilingInvariant(PRIORITIES, {"R": 5}, SAME_ECU)


def test_task_at_or_below_ceiling_running_during_hold_flagged():
    tr = Trace()
    tr.log(0, "task.start", "low")
    tr.log(1, "task.acquire", "low", resource="R")
    tr.log(2, "task.preempt", "low")
    tr.log(2, "task.start", "mid")  # priority 5 <= ceiling 5: forbidden
    violations = check(tr, icpp())
    assert len(violations) == 1
    assert violations[0].subject == "mid"
    assert "low" in violations[0].message


def test_task_above_ceiling_may_preempt_the_hold():
    tr = Trace()
    tr.log(0, "task.start", "low")
    tr.log(1, "task.acquire", "low", resource="R")
    tr.log(2, "task.preempt", "low")
    tr.log(2, "task.start", "hi")  # priority 9 > ceiling 5: fine
    tr.log(3, "task.complete", "hi")
    tr.log(3, "task.resume", "low")
    tr.log(4, "task.release", "low", resource="R")
    tr.log(5, "task.complete", "low")
    tr.log(6, "task.start", "mid")  # after release: fine
    assert check(tr, icpp()) == []


def test_acquire_record_without_resource_key_is_tolerated():
    tr = Trace()
    tr.log(0, "task.start", "low")
    tr.log(1, "task.acquire", "low")  # partially instrumented
    tr.log(2, "task.release", "low")
    assert check(tr, icpp()) == []


# ----------------------------------------------------------------------
# AliveCounterInvariant
# ----------------------------------------------------------------------
def alive():
    return AliveCounterInvariant("PDU", modulo=16, max_delta=1)


def test_wrapping_counter_stream_is_clean():
    tr = Trace()
    for t, counter in enumerate((14, 15, 0, 1)):
        tr.log(t, "e2e.ok", "PDU", counter=counter)
    assert check(tr, alive()) == []


def test_counter_jump_flagged():
    tr = Trace()
    tr.log(0, "e2e.ok", "PDU", counter=1)
    tr.log(1, "e2e.ok", "PDU", counter=5)
    violations = check(tr, alive())
    assert len(violations) == 1
    assert "delta 4" in violations[0].message


def test_stuck_counter_flagged():
    tr = Trace()
    tr.log(0, "e2e.ok", "PDU", counter=3)
    tr.log(1, "e2e.ok", "PDU", counter=3)
    assert len(check(tr, alive())) == 1


def test_records_without_counter_and_foreign_pdus_skipped():
    tr = Trace()
    tr.log(0, "e2e.ok", "PDU", counter=1)
    tr.log(1, "e2e.ok", "PDU")  # no counter data: skipped, no KeyError
    tr.log(2, "e2e.ok", "OTHER", counter=9)
    tr.log(3, "e2e.ok", "PDU", counter=2)
    assert check(tr, alive()) == []


# ----------------------------------------------------------------------
# E2eContainmentInvariant
# ----------------------------------------------------------------------
def test_rejected_reception_reaching_application_flagged():
    tr = Trace()
    tr.log(5, "e2e.crc_error", "PDU")
    tr.log(5, "com.rx", "PDU")  # containment failed
    violations = check(tr, E2eContainmentInvariant())
    assert len(violations) == 1
    assert violations[0].time == 5


def test_blocked_rejection_is_clean():
    tr = Trace()
    tr.log(5, "e2e.wrong_sequence", "PDU")
    tr.log(5, "com.rx_blocked", "PDU")
    tr.log(7, "com.rx", "PDU")  # a later, valid reception
    assert check(tr, E2eContainmentInvariant()) == []


# ----------------------------------------------------------------------
# InvariantChecker
# ----------------------------------------------------------------------
def test_checker_merges_and_sorts_violations():
    tr = Trace()
    tr.log(9, "e2e.crc_error", "PDU")
    tr.log(9, "com.rx", "PDU")
    tr.log(0, "task.start", "A")
    tr.log(5, "task.start", "B")
    violations = check(tr, NoOverlappingExecution(ECUS),
                       E2eContainmentInvariant())
    assert [v.time for v in violations] == [5, 9]
    assert {v.invariant for v in violations} == \
        {"no-overlap", "e2e-containment"}
