"""Tests for CAN response-time analysis, cross-validated against the
simulated bus."""

import pytest

from repro.errors import AnalysisError
from repro.analysis.can_rta import (analyze, blocking_time, bus_utilization,
                                    response_time, transmission_time)
from repro.network import CanBus, CanFrameSpec
from repro.sim import Simulator
from repro.units import bit_time, ms

BITRATE = 500_000
TBIT = bit_time(BITRATE)


def frame_set():
    return [
        CanFrameSpec("F1", 0x10, dlc=8, period=ms(5)),
        CanFrameSpec("F2", 0x20, dlc=8, period=ms(10)),
        CanFrameSpec("F3", 0x30, dlc=8, period=ms(20)),
    ]


def test_transmission_time_full_frame():
    assert transmission_time(CanFrameSpec("F", 1, dlc=8, period=ms(10)),
                             BITRATE) == 135 * TBIT


def test_highest_priority_blocked_by_one_lower_frame():
    frames = frame_set()
    c = 135 * TBIT
    # F1 waits at most one lower frame then transmits.
    assert response_time(frames[0], frames, BITRATE) == c + c
    assert blocking_time(frames[0], frames, BITRATE) == c


def test_lowest_priority_no_blocking_but_interference():
    frames = frame_set()
    c = 135 * TBIT  # 270 us
    # F3: B=0; w = ceil((w+tbit)/5ms)*C + ceil((w+tbit)/10ms)*C
    # w0 = 0 -> C+C = 540us -> still < 5ms -> C+C stable.
    assert response_time(frames[2], frames, BITRATE) == 2 * c + c


def test_analyze_full_set_schedulable():
    frames = frame_set()
    result = analyze(frames, BITRATE)
    assert result.schedulable
    c = 135 * TBIT
    assert result.utilization == pytest.approx(
        c / ms(5) + c / ms(10) + c / ms(20))


def test_duplicate_ids_rejected():
    frames = [CanFrameSpec("A", 0x10, period=ms(10)),
              CanFrameSpec("B", 0x10, period=ms(10))]
    with pytest.raises(AnalysisError):
        analyze(frames, BITRATE)


def test_overload_reported_not_raised():
    # 3 frames of 270us every 600us cannot all fit before their periods.
    frames = [CanFrameSpec(f"F{i}", 0x10 + i, dlc=8, period=600_000)
              for i in range(3)]
    result = analyze(frames, BITRATE)
    assert not result.schedulable
    assert "F2" in result.unschedulable_frames


def test_missing_period_rejected():
    frames = [CanFrameSpec("F", 0x10)]
    with pytest.raises(AnalysisError):
        response_time(frames[0], frames, BITRATE)
    with pytest.raises(AnalysisError):
        bus_utilization(frames, BITRATE)


def simulate_worst_case(frames, horizon=ms(200)):
    """Synchronous periodic release of all frames from distinct nodes —
    the critical instant for the highest-priority frame."""
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    controllers = {f.name: bus.attach(f"N_{f.name}") for f in frames}
    bus.attach("listener")

    def periodic(frame):
        def fire():
            controllers[frame.name].send(frame)
            sim.schedule(frame.period, fire)
        fire()

    for frame in frames:
        periodic(frame)
    sim.run_until(horizon)
    return {f.name: max(bus.latencies(f.name), default=0) for f in frames}


def test_simulated_latencies_within_analytic_bounds():
    frames = frame_set()
    result = analyze(frames, BITRATE)
    observed = simulate_worst_case(frames)
    for frame in frames:
        assert 0 < observed[frame.name] <= result.wcrt[frame.name]


def test_simulated_interference_grows_with_lower_priority():
    frames = frame_set()
    observed = simulate_worst_case(frames)
    assert observed["F1"] <= observed["F3"]
