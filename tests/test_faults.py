"""Tests for fault injection adapters and containment monitors."""

import pytest

from repro.errors import ConfigurationError, FaultContainmentViolation
from repro.faults import (BABBLING, CRASH, CanNodeAdapter, ComSignalAdapter,
                          CORRUPTION, Fault, FaultInjector, IpCoreAdapter,
                          OMISSION, TaskAdapter, TIMING_OVERRUN,
                          TtpNodeAdapter, assert_contained,
                          containment_violations, degradation, is_isolated)
from repro.com import (CanComAdapter, ComStack, PERIODIC, SignalSpec,
                       pack_sequentially)
from repro.network import CanBus, CanFrameSpec, TtpCluster
from repro.noc import MeshTopology, Mpsoc, TdmaNoc
from repro.osek import EcuKernel, FixedPriorityScheduler, TaskSpec
from repro.sim import Simulator, Trace
from repro.units import ms, us


def test_fault_model_validation():
    with pytest.raises(ConfigurationError):
        Fault("bogus", "t", 0)
    with pytest.raises(ConfigurationError):
        Fault(CRASH, "t", -1)
    with pytest.raises(ConfigurationError):
        Fault(CRASH, "t", 0, duration=0)
    fault = Fault(CRASH, "t", ms(1), duration=ms(2))
    assert fault.end == ms(3)
    assert Fault(CRASH, "t", 0).end is None


def test_adapter_kind_check():
    sim = Simulator()
    cluster = TtpCluster(sim, ["a", "b"], us(100))
    adapter = TtpNodeAdapter(cluster.node("a"))
    injector = FaultInjector(sim)
    with pytest.raises(ConfigurationError):
        injector.inject(adapter, Fault(TIMING_OVERRUN, "a", 0))


def test_ttp_crash_fault_window():
    sim = Simulator()
    cluster = TtpCluster(sim, ["a", "b", "c"], us(100))
    injector = FaultInjector(sim, cluster.trace)
    adapter = TtpNodeAdapter(cluster.node("b"))
    fault = Fault(CRASH, "b", start=us(600), duration=us(600))
    injector.inject(adapter, fault)
    cluster.start()
    sim.run_until(us(2400))
    # Dropped during the fault, rejoined after.
    assert len(cluster.trace.records("ttp.membership_drop", "b")) == 1
    assert len(cluster.trace.records("ttp.membership_join", "b")) == 1
    assert cluster.membership == {"a", "b", "c"}
    assert len(injector.trace.records("fault.activate")) == 1
    assert len(injector.trace.records("fault.deactivate")) == 1


def test_task_timing_overrun_adapter():
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    task = kernel.add_task(TaskSpec("T", wcet=ms(1), period=ms(10),
                                    budget=ms(2)))
    injector = FaultInjector(sim, kernel.trace)
    adapter = TaskAdapter(kernel, task)
    injector.inject(adapter, Fault(TIMING_OVERRUN, "T", start=ms(15),
                                   duration=ms(10),
                                   params={"factor": 5.0}))
    sim.run_until(ms(40))
    # Job at t=20 overran (5 ms demand vs 2 ms budget) and was killed;
    # jobs before and after behave.
    assert len(kernel.trace.records("task.budget_overrun", "T")) == 1
    assert task.jobs_completed == 3  # t=0, 10, 30


def test_task_crash_adapter_suppresses_activations():
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    task = kernel.add_task(TaskSpec("T", wcet=ms(1), period=ms(10)))
    injector = FaultInjector(sim)
    adapter = TaskAdapter(kernel, task)
    injector.inject(adapter, Fault(CRASH, "T", start=ms(15),
                                   duration=ms(20)))
    sim.run_until(ms(59))
    # Activations at 0,10 ran; 20,30 lost; 40,50 ran again.
    assert task.jobs_completed == 4
    assert task.activations_lost == 2


def test_can_babbling_adapter_starves_low_priority():
    sim = Simulator()
    bus = CanBus(sim, 500_000)
    victim_ctrl = bus.attach("victim")
    idiot_ctrl = bus.attach("idiot")
    bus.attach("rx")
    victim_spec = CanFrameSpec("V", 0x200, dlc=8, period=ms(5))

    def periodic():
        victim_ctrl.send(victim_spec)
        sim.schedule(ms(5), periodic)

    periodic()
    injector = FaultInjector(sim, bus.trace)
    adapter = CanNodeAdapter(sim, idiot_ctrl, flood_period=us(100))
    injector.inject(adapter, Fault(BABBLING, "idiot", start=ms(20),
                                   duration=ms(20)))
    sim.run_until(ms(60))
    records = bus.trace.records("can.rx", "V")
    before = [r.data["latency"] for r in records if r.time < ms(20)]
    # Frames queued during the flood drain only after it ends at 40 ms.
    affected = [r.data["latency"] for r in records
                if ms(20) <= r.time < ms(46)]
    assert before and affected
    assert max(affected) > 10 * max(before)


def test_ip_core_babbling_adapter():
    sim = Simulator()
    noc = TdmaNoc(sim, MeshTopology(2, 2), slot_length=us(1))
    mpsoc = Mpsoc(sim, noc)
    mpsoc.start()
    injector = FaultInjector(sim, noc.trace)
    adapter = IpCoreAdapter(mpsoc.cores[2], mpsoc.cores[1],
                            interval=us(1))
    injector.inject(adapter, Fault(BABBLING, "core2", start=0,
                                   duration=us(50)))
    sim.run_until(ms(1))
    assert mpsoc.cores[2].sent > 0
    # Flood stopped on revert: no rx from core2 long after the window.
    late = [r for r in noc.trace.records("noc.rx_tt", "core2->core1")
            if r.time > us(200)]
    assert late == []


def com_pair():
    sim = Simulator()
    bus = CanBus(sim, 500_000)
    pdu = pack_sequentially("P", 8, [SignalSpec("speed", 16)])
    tx = ComStack(sim, CanComAdapter(
        bus.attach("A"), {"P": CanFrameSpec("P", 0x100)}), "A")
    rx = ComStack(sim, CanComAdapter(bus.attach("B"), {}), "B")
    tx.add_tx_pdu(pdu, mode=PERIODIC, period=ms(10))
    rx.add_rx_pdu(pack_sequentially("P", 8, [SignalSpec("speed", 16)]))
    return sim, tx, rx


def test_com_omission_fault_drops_pdus():
    sim, tx, rx = com_pair()
    tx.write_signal("speed", 7)
    injector = FaultInjector(sim)
    adapter = ComSignalAdapter(rx, "speed")
    injector.inject(adapter, Fault(OMISSION, "speed", start=ms(15),
                                   duration=ms(20)))
    got = []
    rx.on_signal("speed", lambda v: got.append(sim.now))
    sim.run_until(ms(59))
    # Receptions ~10, (15-35 dropped), 40, 50.
    assert len(got) == 3


def test_com_corruption_fault_overwrites_value():
    sim, tx, rx = com_pair()
    tx.write_signal("speed", 7)
    injector = FaultInjector(sim)
    adapter = ComSignalAdapter(rx, "speed")
    injector.inject(adapter, Fault(CORRUPTION, "speed", start=ms(15),
                                   params={"value": 0xFFFF}))
    sim.run_until(ms(25))
    assert rx.read_signal("speed") == 0xFFFF


def test_containment_violations_region_matching():
    trace = Trace()
    trace.log(10, "task.deadline_miss", "N2.task")
    trace.log(20, "task.deadline_miss", "N3")
    trace.log(5, "com.timeout", "N3")  # before `since`
    violations = containment_violations(trace, {"N2"}, since=8)
    assert [v.subject for v in violations] == ["N3"]


def test_assert_contained_raises_with_detail():
    trace = Trace()
    trace.log(10, "ttp.collision", "victim")
    with pytest.raises(FaultContainmentViolation) as err:
        assert_contained(trace, {"idiot"})
    assert "victim" in str(err.value)
    # Damage inside the region is fine.
    assert_contained(trace, {"victim"})


def test_isolation_and_degradation_helpers():
    assert is_isolated([1, 2, 3], [1, 2, 3])
    assert not is_isolated([1, 2], [1, 3])
    assert degradation([100], [150]) == pytest.approx(0.5)
    assert degradation([], [1]) is None


def test_compare_runs_drives_both_variants():
    from repro.faults import compare_runs

    def build_and_run(faulted):
        return [100, 200 if faulted else 150]

    baseline, faulted = compare_runs(build_and_run)
    assert baseline == [100, 150]
    assert faulted == [100, 200]
    assert not is_isolated(baseline, faulted)


def test_com_adapters_stack_and_revert_out_of_order():
    sim = Simulator()
    bus = CanBus(sim, 500_000)
    signals = [SignalSpec("speed", 16), SignalSpec("rpm", 16)]
    tx = ComStack(sim, CanComAdapter(
        bus.attach("A"), {"P": CanFrameSpec("P", 0x100)}), "A")
    rx = ComStack(sim, CanComAdapter(bus.attach("B"), {}), "B")
    tx.add_tx_pdu(pack_sequentially("P", 8, signals),
                  mode=PERIODIC, period=ms(10))
    rx.add_rx_pdu(pack_sequentially(
        "P", 8, [SignalSpec("speed", 16), SignalSpec("rpm", 16)]))
    tx.write_signal("speed", 7)
    tx.write_signal("rpm", 900)
    injector = FaultInjector(sim)
    # Two interposers on the same stack; the speed window closes first
    # even though it was installed second (out-of-order revert).
    injector.inject(ComSignalAdapter(rx, "rpm"),
                    Fault(CORRUPTION, "rpm", start=ms(15),
                          duration=ms(40), params={"value": 0xBEEF}))
    injector.inject(ComSignalAdapter(rx, "speed"),
                    Fault(CORRUPTION, "speed", start=ms(15),
                          duration=ms(20), params={"value": 0xDEAD}))
    sim.run_until(ms(25))
    assert rx.read_signal("speed") == 0xDEAD  # both active
    assert rx.read_signal("rpm") == 0xBEEF
    sim.run_until(ms(45))
    assert rx.read_signal("speed") == 7       # speed reverted...
    assert rx.read_signal("rpm") == 0xBEEF    # ...rpm still faulty
    sim.run_until(ms(65))
    assert rx.read_signal("speed") == 7       # both clean again
    assert rx.read_signal("rpm") == 900


def test_com_adapter_install_is_idempotent():
    sim, tx, rx = com_pair()
    tx.write_signal("speed", 7)
    adapter = ComSignalAdapter(rx, "speed")
    injector = FaultInjector(sim)
    # Back-to-back windows through the same adapter: the second apply
    # must not install a second interposer (the old capture-the-callback
    # scheme double-wrapped the rx path here).
    injector.inject(adapter, Fault(OMISSION, "speed", start=ms(15),
                                   duration=ms(10)))
    injector.inject(adapter, Fault(OMISSION, "speed", start=ms(35),
                                   duration=ms(10)))
    sim.run_until(ms(60))
    assert len(rx._rx_filters) == 1
    assert rx.read_signal("speed") == 7  # passive filter passes through
    adapter.uninstall()
    assert rx._rx_filters == []


def test_inject_rejects_invalid_windows():
    sim = Simulator()
    injector = FaultInjector(sim)
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    task = kernel.add_task(TaskSpec("U", wcet=ms(1), period=ms(10)))
    adapter = TaskAdapter(kernel, task)
    with pytest.raises(ConfigurationError):
        injector.inject(adapter, Fault(CRASH, "U", start=ms(10),
                                       duration=0))
    with pytest.raises(ConfigurationError):
        injector.inject(adapter, Fault(CRASH, "U", start=ms(10),
                                       duration=-ms(5)))
    sim.run_until(ms(50))
    with pytest.raises(ConfigurationError):  # window entirely in the past
        injector.inject(adapter, Fault(CRASH, "U", start=ms(10),
                                       duration=ms(20)))
    assert injector.faults == []


def test_overlapping_task_faults_revert_out_of_order():
    sim = Simulator()
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    task = kernel.add_task(TaskSpec("T", wcet=ms(1), period=ms(10),
                                    budget=ms(2)))
    healthy_execution_time = task.execution_time
    healthy_max_activations = task.spec.max_activations
    injector = FaultInjector(sim, kernel.trace)
    adapter = TaskAdapter(kernel, task)
    # Overrun window [15, 55) wraps crash window [25, 40): the crash
    # reverts while the overrun is still active.
    injector.inject(adapter, Fault(TIMING_OVERRUN, "T", start=ms(15),
                                   duration=ms(40),
                                   params={"factor": 5.0}))
    injector.inject(adapter, Fault(CRASH, "T", start=ms(25),
                                   duration=ms(15)))
    sim.run_until(ms(45))
    # Crash reverted mid-overrun: activations resume, overrun persists.
    assert task.spec.max_activations == healthy_max_activations
    assert task.execution_time is not healthy_execution_time
    sim.run_until(ms(80))
    # Both windows closed: the healthy behaviour is fully restored.
    assert task.execution_time is healthy_execution_time
    assert task.spec.max_activations == healthy_max_activations
    assert len(kernel.trace.records("task.budget_overrun", "T")) > 0
    assert task.jobs_completed > 0
