"""Tests for OSEK alarms and events (extended tasks)."""

import pytest

from repro.errors import ConfigurationError
from repro.osek import (EcuKernel, Execute, FixedPriorityScheduler, TaskSpec,
                        WaitEvent)
from repro.sim import Simulator
from repro.units import ms


def make_kernel():
    sim = Simulator()
    return sim, EcuKernel(sim, FixedPriorityScheduler())


def test_alarm_activates_task_cyclically():
    sim, kernel = make_kernel()
    task = kernel.add_task(TaskSpec("T", wcet=ms(1), priority=1,
                                    deadline=ms(5)))
    alarm = kernel.alarm_activate("A", task)
    alarm.set_rel(ms(3), cycle=ms(10))
    sim.run_until(ms(25))
    assert kernel.trace.times("task.activate", "T") == [ms(3), ms(13), ms(23)]
    assert alarm.expirations == 3


def test_alarm_one_shot():
    sim, kernel = make_kernel()
    hits = []
    alarm = kernel.alarm("A", lambda: hits.append(sim.now))
    alarm.set_rel(ms(5))
    sim.run_until(ms(50))
    assert hits == [ms(5)]
    assert not alarm.armed


def test_alarm_set_abs():
    sim, kernel = make_kernel()
    hits = []
    alarm = kernel.alarm("A", lambda: hits.append(sim.now))
    alarm.set_abs(ms(7))
    sim.run_until(ms(10))
    assert hits == [ms(7)]


def test_alarm_cancel():
    sim, kernel = make_kernel()
    hits = []
    alarm = kernel.alarm("A", lambda: hits.append(sim.now))
    alarm.set_rel(ms(5), cycle=ms(5))
    sim.schedule(ms(12), alarm.cancel)
    sim.run_until(ms(40))
    assert hits == [ms(5), ms(10)]


def test_alarm_double_arm_rejected():
    sim, kernel = make_kernel()
    alarm = kernel.alarm("A", lambda: None)
    alarm.set_rel(ms(5))
    with pytest.raises(ConfigurationError):
        alarm.set_rel(ms(6))


def test_extended_task_waits_for_event():
    sim, kernel = make_kernel()
    ev = kernel.event("DATA")
    progress = []

    def body(job):
        yield Execute(ms(1))
        progress.append(("before_wait", sim.now))
        yield WaitEvent(ev)
        progress.append(("after_wait", sim.now))
        yield Execute(ms(1))

    task = kernel.add_task(TaskSpec("EXT", wcet=ms(2), priority=1,
                                    deadline=ms(100)), body=body)
    kernel.activate(task)
    sim.schedule(ms(10), ev.set)
    sim.run_until(ms(20))
    assert progress == [("before_wait", ms(1)), ("after_wait", ms(10))]
    assert kernel.response_times("EXT") == [ms(11)]


def test_event_set_before_wait_passes_through():
    sim, kernel = make_kernel()
    ev = kernel.event("E")
    ev.set()

    def body(job):
        yield WaitEvent(ev)
        yield Execute(ms(1))

    task = kernel.add_task(TaskSpec("T", wcet=ms(1), priority=1,
                                    deadline=ms(10)), body=body)
    kernel.activate(task)
    sim.run_until(ms(5))
    assert kernel.tasks["T"].jobs_completed == 1
    assert not ev.is_set  # consumed (clear=True default)


def test_wait_without_clear_leaves_event_set():
    sim, kernel = make_kernel()
    ev = kernel.event("E")
    ev.set()

    def body(job):
        yield WaitEvent(ev, clear=False)
        yield Execute(ms(1))

    task = kernel.add_task(TaskSpec("T", wcet=ms(1), priority=1,
                                    deadline=ms(10)), body=body)
    kernel.activate(task)
    sim.run_until(ms(5))
    assert ev.is_set


def test_cpu_free_while_task_waits():
    """A waiting extended task must not hold the CPU."""
    sim, kernel = make_kernel()
    ev = kernel.event("E")

    def waiter_body(job):
        yield WaitEvent(ev)
        yield Execute(ms(1))

    waiter = kernel.add_task(TaskSpec("W", wcet=ms(1), priority=9,
                                      deadline=ms(100)), body=waiter_body)
    kernel.add_task(TaskSpec("BG", wcet=ms(2), period=ms(10), priority=1))
    kernel.activate(waiter)
    sim.schedule(ms(5), ev.set)
    sim.run_until(ms(9))
    # BG (low priority) runs [0,2) because W is waiting, W runs [5,6).
    assert kernel.response_times("BG") == [ms(2)]
    assert kernel.trace.times("task.start", "W") == [ms(5)]


def test_alarm_set_event_wakes_task():
    sim, kernel = make_kernel()
    ev = kernel.event("TICK")

    def body(job):
        while True:
            yield WaitEvent(ev)
            yield Execute(ms(1))

    task = kernel.add_task(TaskSpec("SRV", wcet=ms(1), priority=1,
                                    deadline=None, max_activations=1),
                           body=body)
    kernel.activate(task)
    alarm = kernel.alarm_set_event("A", ev)
    alarm.set_rel(ms(5), cycle=ms(10))
    sim.run_until(ms(30))
    assert kernel.trace.times("task.wake", "SRV") == [ms(5), ms(15), ms(25)]
