"""Unit tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30, lambda: fired.append(30))
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(20, lambda: fired.append(20))
    sim.run()
    assert fired == [10, 20, 30]


def test_now_advances_to_event_time():
    sim = Simulator()
    seen = []
    sim.schedule(42, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [42]


def test_same_time_ties_broken_by_priority_then_insertion():
    sim = Simulator()
    fired = []
    sim.schedule(5, lambda: fired.append("late"), priority=10)
    sim.schedule(5, lambda: fired.append("first"), priority=0)
    sim.schedule(5, lambda: fired.append("second"), priority=0)
    sim.run()
    assert fired == ["first", "second", "late"]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(10, lambda: fired.append("x"))
    handle.cancel()
    sim.run()
    assert fired == []
    assert sim.pending == 0


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.schedule(10, lambda: None)
    handle.cancel()
    handle.cancel()
    assert sim.run() == 0


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(50, lambda: None)


def test_run_until_leaves_future_events_pending():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: fired.append(10))
    sim.schedule(100, lambda: fired.append(100))
    sim.run_until(50)
    assert fired == [10]
    assert sim.now == 50
    assert sim.pending == 1
    sim.run_until(200)
    assert fired == [10, 100]


def test_run_until_executes_events_at_exact_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(50, lambda: fired.append(50))
    sim.run_until(50)
    assert fired == [50]


def test_events_scheduled_during_run_execute():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 30:
            sim.schedule(10, chain)

    sim.schedule(10, chain)
    sim.run()
    assert fired == [10, 20, 30]


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(10, lambda: (fired.append(10), sim.stop()))
    sim.schedule(20, lambda: fired.append(20))
    sim.run()
    assert fired == [10]
    assert sim.pending == 1


def test_run_max_events_limits_execution():
    sim = Simulator()

    def forever():
        sim.schedule(1, forever)

    sim.schedule(1, forever)
    count = sim.run(max_events=500)
    assert count == 500


def test_zero_delay_event_runs_at_current_time():
    sim = Simulator()
    times = []

    def outer():
        sim.schedule(0, lambda: times.append(sim.now))

    sim.schedule(7, outer)
    sim.run()
    assert times == [7]


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                max_size=60))
def test_arbitrary_delays_fire_sorted(delays):
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    sim.run()
    assert fired == sorted(delays)
    assert sim.now == max(delays)


@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                          st.integers(min_value=0, max_value=5)),
                min_size=2, max_size=40))
def test_time_priority_ordering_invariant(specs):
    """Events must observe non-decreasing (time, priority) order."""
    sim = Simulator()
    observed = []
    for t, prio in specs:
        sim.schedule(t, lambda t=t, p=prio: observed.append((t, p)),
                     priority=prio)
    sim.run()
    assert observed == sorted(observed)
