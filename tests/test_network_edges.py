"""Edge-case tests for the network models and OSEK resources."""

import pytest

from repro.errors import ConfigurationError, SchedulingError, SimulationError
from repro.network import (CanBus, CanFrameSpec, ERROR_FRAME_BITS,
                           FlexRayBus, FlexRayConfig,
                           StaticSlotAssignment, TtEthernetSwitch,
                           TtFrameSpec, frame_time)
from repro.osek import OsekResource, TaskSpec
from repro.osek.task import Job, Task
from repro.sim import Simulator
from repro.units import bit_time, ms, us

BITRATE = 500_000
TBIT = bit_time(BITRATE)


# ----------------------------------------------------------------------
# CAN edges
# ----------------------------------------------------------------------
def test_can_repeated_errors_keep_retrying_until_success():
    sim = Simulator()
    failures = {"left": 3}

    def error_model(spec, msg):
        if failures["left"] > 0:
            failures["left"] -= 1
            return True
        return False

    bus = CanBus(sim, BITRATE, error_model=error_model)
    tx = bus.attach("A")
    bus.attach("B")
    tx.send(CanFrameSpec("F", 0x10, dlc=4))
    sim.run()
    assert bus.error_count == 3
    assert bus.frames_delivered == 1
    expected = 3 * ERROR_FRAME_BITS * TBIT + frame_time(4, BITRATE)
    assert bus.latencies("F") == [expected]


def test_can_zero_dlc_frame():
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    tx = bus.attach("A")
    bus.attach("B")
    tx.send(CanFrameSpec("EMPTY", 0x1, dlc=0))
    sim.run()
    assert bus.latencies("EMPTY") == [55 * TBIT]


def test_can_same_id_from_two_nodes_fifo_by_enqueue():
    """Two nodes sharing an id (bad practice but possible): the model
    breaks the tie deterministically by enqueue order."""
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    a = bus.attach("A")
    b = bus.attach("B")
    a.send(CanFrameSpec("first", 0x100, dlc=1))
    b.send(CanFrameSpec("second", 0x100, dlc=1))
    sim.run()
    order = [r.subject for r in bus.trace.records("can.tx_start")]
    assert order == ["first", "second"]


def test_can_flush_clears_backlog():
    sim = Simulator()
    bus = CanBus(sim, BITRATE)
    tx = bus.attach("A")
    bus.attach("B")
    for i in range(5):
        tx.send(CanFrameSpec(f"F{i}", 0x100 + i, dlc=8))
    # One frame is mid-transmission; four are queued.
    sim.run_until(frame_time(8, BITRATE) // 2)
    assert tx.flush() == 4
    sim.run()
    assert bus.frames_delivered == 1


# ----------------------------------------------------------------------
# FlexRay edges
# ----------------------------------------------------------------------
def test_flexray_sender_buffer_overwritten_not_queued():
    """Static slots carry state, not events: the newest write wins."""
    sim = Simulator()
    bus = FlexRayBus(sim, FlexRayConfig(slot_length=us(100),
                                        n_static_slots=2))
    tx = bus.attach("A")
    rx = bus.attach("B")
    bus.assign_slot(StaticSlotAssignment(2, "A", "F"))
    got = []
    rx.on_receive(lambda name, msg, slot: got.append(msg.payload))
    bus.start()
    tx.send_static(2, payload="old")
    sim.schedule(us(50), lambda: tx.send_static(2, payload="new"))
    sim.run_until(us(250))
    assert got == ["new"]


def test_flexray_empty_dynamic_segment_is_harmless():
    sim = Simulator()
    bus = FlexRayBus(sim, FlexRayConfig(slot_length=us(100),
                                        n_static_slots=1,
                                        minislot_length=us(10),
                                        n_minislots=5))
    bus.attach("A")
    bus.start()
    sim.run_until(3 * bus.config.cycle_length)
    assert bus.cycle == 3


def test_flexray_double_start_rejected():
    sim = Simulator()
    bus = FlexRayBus(sim, FlexRayConfig(slot_length=us(100),
                                        n_static_slots=1))
    bus.start()
    with pytest.raises(ConfigurationError):
        bus.start()


# ----------------------------------------------------------------------
# TT-Ethernet edges
# ----------------------------------------------------------------------
def test_tte_saturated_port_raises_for_best_effort():
    sim = Simulator()
    sw = TtEthernetSwitch(sim, bitrate_bps=100_000_000)
    sw.attach("A")
    sw.attach("B")
    # TT stream occupying essentially the whole period.
    sw.schedule_tt(TtFrameSpec("S", "A", ["B"], offset=0,
                               period=8160, size_bytes=64))
    sw.start()
    with pytest.raises(ConfigurationError):
        sw.send_be("A", "B", size_bytes=1500)


def test_tte_duplicate_attach_rejected():
    sim = Simulator()
    sw = TtEthernetSwitch(sim)
    sw.attach("A")
    with pytest.raises(ConfigurationError):
        sw.attach("A")


# ----------------------------------------------------------------------
# OSEK resource misuse
# ----------------------------------------------------------------------
def test_resource_double_acquire_and_foreign_release():
    resource = OsekResource("R", ceiling=5)
    task = Task(TaskSpec("T", wcet=ms(1), period=ms(10)))
    other = Task(TaskSpec("U", wcet=ms(1), period=ms(10)))
    job = Job(task, 0)
    intruder = Job(other, 0)
    resource.acquire(job)
    with pytest.raises(SchedulingError):
        resource.acquire(intruder)
    with pytest.raises(SchedulingError):
        resource.release(intruder)
    resource.release(job)
    assert resource.holder is None
    assert job.effective_priority == task.spec.priority


def test_resource_nested_ceilings_restore_correctly():
    low = OsekResource("LOW", ceiling=3)
    high = OsekResource("HIGH", ceiling=9)
    task = Task(TaskSpec("T", wcet=ms(1), period=ms(10), priority=1))
    job = Job(task, 0)
    low.acquire(job)
    assert job.effective_priority == 3
    high.acquire(job)
    assert job.effective_priority == 9
    low.release(job)
    assert job.effective_priority == 9  # still holding HIGH
    high.release(job)
    assert job.effective_priority == 1


# ----------------------------------------------------------------------
# Simulator edges
# ----------------------------------------------------------------------
def test_run_until_backwards_rejected():
    sim = Simulator()
    sim.schedule(100, lambda: None)
    sim.run_until(100)
    with pytest.raises(SimulationError):
        sim.run_until(50)
