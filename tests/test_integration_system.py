"""Cross-module integration tests: whole-system scenarios that exercise
several subsystems through their public APIs together."""

import pytest

from repro.bsw import (CanGateway, ErrorEvent, ErrorManager, FAILED,
                       ModeMachine, PASSED)
from repro.com import (CanComAdapter, ComStack, PERIODIC, SignalSpec,
                       pack_sequentially)
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.core.metamodel import export_system, import_system
from repro.faults import (Fault, FaultInjector, TIMING_OVERRUN, TaskAdapter)
from repro.legacy import CanOverlay
from repro.network import CanBus, CanFrameSpec
from repro.osek import TaskSpec
from repro.sim import Simulator
from repro.units import ms, us

SPEED_IF = SenderReceiverInterface("speed_if", {"v": UINT16})


# ----------------------------------------------------------------------
# RTE + BSW: communication failure drives modes via the error manager
# ----------------------------------------------------------------------
def test_com_timeout_to_degraded_mode_chain():
    """Sensor ECU dies mid-run; the receiver's COM deadline monitor
    feeds the DEM, which debounces and trips the mode machine."""
    sim = Simulator()
    bus = CanBus(sim, 500_000)
    tx = ComStack(sim, CanComAdapter(
        bus.attach("SENSOR"), {"P": CanFrameSpec("P", 0x100)}), "SENSOR")
    rx = ComStack(sim, CanComAdapter(bus.attach("BODY"), {}), "BODY")
    pdu = pack_sequentially("P", 8, [SignalSpec("speed", 16,
                                                timeout=ms(15))])
    tx.add_tx_pdu(pack_sequentially(
        "P", 8, [SignalSpec("speed", 16, timeout=ms(15))]),
        mode=PERIODIC, period=ms(5))
    rx.add_rx_pdu(pdu)

    dem = ErrorManager("BODY", now=lambda: sim.now)
    dem.register(ErrorEvent("speed_lost", dtc=0xBEEF, threshold=2))
    modes = ModeMachine("body", ["normal", "degraded"], "normal")
    modes.allow("normal", "degraded")
    modes.bind_clock(lambda: sim.now)
    dem.on_status_change(
        lambda event, confirmed: confirmed and modes.request("degraded"))

    def monitor():
        dem.report("speed_lost",
                   FAILED if "speed" in rx.timed_out else PASSED)
        sim.schedule(ms(5), monitor)

    monitor()
    sim.schedule(ms(50), bus.controllers["SENSOR"].set_bus_off)
    sim.run_until(ms(120))
    assert modes.current == "degraded"
    switch = modes.trace.records("mode.switch")[0]
    # Sensor died at 50; timeout 15; debounce 2 x 5 ms monitor.
    assert ms(65) <= switch.time <= ms(90)
    assert dem.stored_dtcs() == [0xBEEF]


# ----------------------------------------------------------------------
# OS timing protection + fault injection on a deployed system
# ----------------------------------------------------------------------
def test_timing_protection_contains_overrun_in_deployed_system():
    """A QM task with an injected WCET overrun on a mixed-criticality
    ECU must not disturb the ASIL task, thanks to execution budgets."""
    sim = Simulator()
    from repro.osek import EcuKernel, FixedPriorityScheduler
    kernel = EcuKernel(sim, FixedPriorityScheduler())
    qm = kernel.add_task(TaskSpec("qm_infotainment", wcet=ms(2),
                                  period=ms(10), priority=5,
                                  budget=ms(3), criticality="QM"))
    kernel.add_task(TaskSpec("asil_brakes", wcet=ms(3), period=ms(10),
                             priority=1, criticality="D"))
    injector = FaultInjector(sim, kernel.trace)
    injector.inject(TaskAdapter(kernel, qm),
                    Fault(TIMING_OVERRUN, "qm_infotainment",
                          start=ms(30), duration=ms(40),
                          params={"factor": 20.0}))
    sim.run_until(ms(100))
    # The ASIL task never misses, before, during or after the fault.
    assert kernel.deadline_misses("asil_brakes") == 0
    assert max(kernel.response_times("asil_brakes")) <= ms(6)
    # The overruns were caught by timing protection.
    assert len(kernel.trace.records("task.budget_overrun",
                                    "qm_infotainment")) >= 3


# ----------------------------------------------------------------------
# Gateway: COM stacks across two buses
# ----------------------------------------------------------------------
def test_com_signal_crosses_gateway_between_domains():
    sim = Simulator()
    powertrain = CanBus(sim, 500_000, name="PT")
    body = CanBus(sim, 500_000, name="BODY")
    spec = CanFrameSpec("P", 0x120, dlc=8)
    tx = ComStack(sim, CanComAdapter(
        powertrain.attach("ENGINE"), {"P": spec}), "ENGINE")
    rx = ComStack(sim, CanComAdapter(body.attach("DASH"), {}), "DASH")
    gateway = CanGateway(sim, "CGW", powertrain, body,
                         processing_delay=us(150))
    gateway.route("P", from_port="a", in_spec=spec)
    tx.add_tx_pdu(pack_sequentially("P", 8, [SignalSpec("rpm", 16)]),
                  mode=PERIODIC, period=ms(10))
    rx.add_rx_pdu(pack_sequentially("P", 8, [SignalSpec("rpm", 16)]))
    got = []
    rx.on_signal("rpm", lambda v: got.append((sim.now, v)))
    tx.write_signal("rpm", 3000)
    sim.run_until(ms(35))
    assert [v for __, v in got] == [3000, 3000, 3000]
    # Latency includes two wire times plus the gateway delay.
    first_rx = got[0][0]
    assert first_rx >= ms(10) + 2 * 270_000 + us(150)
    assert gateway.forwarded == 3


# ----------------------------------------------------------------------
# Legacy overlay under the COM stack (API compatibility in depth)
# ----------------------------------------------------------------------
def test_com_stack_runs_unmodified_over_the_tt_overlay():
    """ComStack only needs the controller API, so the whole COM layer —
    PDUs, update bits, timeouts — rehosts onto the TT overlay."""
    sim = Simulator()
    overlay = CanOverlay(sim, ["A", "B"], slot_length=us(500),
                         slot_capacity_bytes=32)
    tx = ComStack(sim, CanComAdapter(
        overlay.attach("A"), {"P": CanFrameSpec("P", 0x100)}), "A")
    rx = ComStack(sim, CanComAdapter(overlay.attach("B"), {}), "B")
    layout = [SignalSpec("speed", 16, timeout=ms(20))]
    tx.add_tx_pdu(pack_sequentially("P", 8, list(layout)),
                  mode=PERIODIC, period=ms(5))
    rx.add_rx_pdu(pack_sequentially("P", 8, list(layout)))
    overlay.start()
    tx.write_signal("speed", 77)
    sim.run_until(ms(30))
    assert rx.read_signal("speed") == 77
    assert rx.signal_age("speed") is not None
    assert "speed" not in rx.timed_out


def test_overlay_message_payloads_are_com_payload_ints():
    """Regression guard: the overlay must carry the packed integer
    payloads COM produces (not stringify/transform them)."""
    sim = Simulator()
    overlay = CanOverlay(sim, ["A", "B"], slot_length=us(500))
    got = []
    overlay.attach("B").on_receive(lambda s, m: got.append(m.payload))
    overlay.attach("A").send(CanFrameSpec("F", 0x10, dlc=8),
                             payload=0xDEADBEEF)
    overlay.start()
    sim.run_until(ms(5))
    assert got == [0xDEADBEEF]


# ----------------------------------------------------------------------
# Meta-model round trip of a deployed system produces identical traces
# ----------------------------------------------------------------------
def sample(ctx):
    ctx.state["n"] = ctx.state.get("n", 0) + 1
    ctx.write("out", "v", ctx.state["n"])


def react(ctx):
    ctx.write("cmd", "v", ctx.read("in", "v") * 2)


BEHAVIORS = {"Src.sample": sample, "Dst.react": react}


def build_model():
    src = SwComponent("Src")
    src.provide("out", SPEED_IF)
    src.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(100))
    dst = SwComponent("Dst")
    dst.require("in", SPEED_IF)
    dst.provide("cmd", SenderReceiverInterface("cmd_if", {"v": UINT16}))
    dst.runnable("react", DataReceivedEvent("in", "v"), react,
                 wcet=us(200))
    app = Composition("App")
    app.add(src.instantiate("src"))
    app.add(dst.instantiate("dst"))
    app.connect("src", "out", "dst", "in")
    system = SystemModel("roundtrip")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("src", "E1")
    system.map("dst", "E2")
    system.configure_bus("can")
    return system


def run_system(system):
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(95))
    completions = [(r.time, r.subject)
                   for r in runtime.trace.records("task.complete")]
    return completions, runtime.value_of("dst", "cmd", "v")


def test_exported_system_behaves_identically_after_import():
    original = build_model()
    rebuilt = import_system(export_system(original), BEHAVIORS)
    trace_a, value_a = run_system(original)
    trace_b, value_b = run_system(rebuilt)
    assert trace_a == trace_b
    assert value_a == value_b == 20  # 10 samples, doubled


# ----------------------------------------------------------------------
# Analysis vs deployed system: WCRT bounds hold for RTE-generated tasks
# ----------------------------------------------------------------------
def test_rta_bounds_hold_for_rte_generated_taskset():
    from repro.analysis.rta import analyze
    system = build_model()
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(200))
    for ecu_name, kernel in runtime.kernels.items():
        periodic = [t.spec for t in kernel.tasks.values()
                    if t.spec.period is not None]
        if not periodic:
            continue
        result = analyze(periodic)
        assert result.schedulable
        for spec in periodic:
            observed = kernel.response_times(spec.name)
            assert observed and max(observed) <= result.wcrt[spec.name]
