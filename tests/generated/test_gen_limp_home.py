"""GENERATED TEST SUITE — DO NOT EDIT BY HAND.

Source model : limp-home
Source file  : src/repro/model/scenarios/limp_home.json
Model digest : sha256:e420b9199c4477fc1e48d931b53875e490f5d105b4bdc03f90685bc4745c26e9
Generator    : repro.model.testgen v1

Regenerate after any intentional model or behaviour change:

    PYTHONPATH=src python -m repro model testgen

Drift between the model and this suite is detected by the CI
gate (testgen-smoke):

    PYTHONPATH=src python -m repro model testgen --check

The sync manifest next to this file maps the source model
digest to this file's SHA-256.
"""

import functools

from repro.model.build import Model, load_document
from repro.model.schema import model_digest, validate_document

MODEL_DIGEST = "e420b9199c4477fc1e48d931b53875e490f5d105b4bdc03f90685bc4745c26e9"
SOURCE = "limp-home"  # bundled scenario name


def _document() -> dict:
    from repro.model.scenarios import scenario_path
    return load_document(scenario_path(SOURCE))


@functools.lru_cache(maxsize=None)
def _model() -> Model:
    return Model.from_document(_document(), validate=False)


def test_REQ_LIMP_HOME_001_schema_valid():
    """REQ-LIMP-HOME-001 [meta, osek, com, network, resilience] — the committed document validates against format_version 1 with zero problems."""
    assert validate_document(_document()) == []


def test_REQ_LIMP_HOME_002_source_digest_in_sync():
    """REQ-LIMP-HOME-002 [meta] — the committed document is byte-for-byte the one this suite
    was generated from (the sync anchor — on mismatch,
    regenerate with `repro model testgen`)."""
    assert model_digest(_document()) == MODEL_DIGEST


def test_REQ_LIMP_HOME_003_roundtrip_digest_identical():
    """REQ-LIMP-HOME-003 [osek, com, network] — model -> live system -> model round-trips to the identical
    digest: the exchange format loses nothing any executable
    view needs."""
    assert _model().roundtrip().digest() == MODEL_DIGEST


def test_REQ_LIMP_HOME_004_structure_inventory():
    """REQ-LIMP-HOME-004 [osek, com, network, resilience] — the compiled system exposes exactly the modelled inventory:
    2 ECU(s), 6 task(s), 4 CAN frame(s),
    flexray=False, chain=True, 7 declared fault scenario(s)."""
    system = _model().build()
    tdma_tasks = (0 if system.tdma is None
                  else len(system.tdma.tasks))
    ecus = len(system.tasksets) + \
        (0 if system.tdma is None else 1)
    tasks = sum(len(ts) for ts in system.tasksets.values()) \
        + tdma_tasks
    assert ecus == 2
    assert tasks == 6
    frames = (0 if system.can is None
              else len(system.can.frames))
    assert frames == 4
    assert (system.flexray is not None) is False
    assert (system.chain is not None) is True
    assert len(system.faults) == 7


def test_REQ_LIMP_HOME_005_verify_sound():
    """REQ-LIMP-HOME-005 [osek, com, network] — every analytic bound holds against the simulated
    observation: 0 soundness violations, 0 trace-invariant
    violations, no declined layer."""
    from repro.model.build import verify_models
    report = verify_models([_model()])
    assert report.soundness_violations == 0
    assert report.invariant_violations == 0
    assert report.passed
    assert all(not v.declined for v in report.verdicts)


def test_REQ_LIMP_HOME_006_trace_invariants_hold():
    """REQ-LIMP-HOME-006 [osek, network] — replaying the nominal simulation trace through every
    pluggable invariant (CPU overlap, TDMA windows, priority
    ceiling, alive counter, E2E containment) yields zero
    violations."""
    from repro.verify import (InvariantChecker, build_system,
                              make_invariants)
    system = _model().build()
    built = build_system(system)
    built.sim.run_until(built.horizon)
    checker = InvariantChecker(make_invariants(system))
    assert checker.run(built.trace) == []


def test_REQ_LIMP_HOME_007_resilience_verdicts():
    """REQ-LIMP-HOME-007 [resilience] — all 7 fault scenario(s) (declared in resilience.scenarios) are
    detected within the analytic bound, contained, and
    recovered: 0 unmet obligations."""
    from repro.model.build import resilience_models
    report = resilience_models([_model()])
    assert report.unmet == 0
    assert report.passed
    scenarios = sum(len(row['verdicts'])
                    for row in report.rows)
    assert scenarios == 7


def test_REQ_LIMP_HOME_008_daq_measurement_digest_stable():
    """REQ-LIMP-HOME-008 [meas] — sampling the default DAQ list (period 1000000 ns, horizon
    20000000 ns of simulated time) reproduces the
    generation-time measurement digest byte-for-byte."""
    from repro.meas.batch import measure_models
    report = measure_models([_model()], period=1000000,
                            horizon=20000000)
    assert report.sample_count == 294
    assert report.digest() == \
        "75bfb04ebc4325190b654314ee1bb551e0de917ffdf777cb9a4946600b6aa819"
