"""GENERATED TEST SUITE — DO NOT EDIT BY HAND.

Source model : adas-fusion
Source file  : src/repro/model/scenarios/adas_fusion.json
Model digest : sha256:a4f00abdf83727120547795eb69b509153ae461d189be92de175c27318d033e7
Generator    : repro.model.testgen v1

Regenerate after any intentional model or behaviour change:

    PYTHONPATH=src python -m repro model testgen

Drift between the model and this suite is detected by the CI
gate (testgen-smoke):

    PYTHONPATH=src python -m repro model testgen --check

The sync manifest next to this file maps the source model
digest to this file's SHA-256.
"""

import functools

from repro.model.build import Model, load_document
from repro.model.schema import model_digest, validate_document

MODEL_DIGEST = "a4f00abdf83727120547795eb69b509153ae461d189be92de175c27318d033e7"
SOURCE = "adas-fusion"  # bundled scenario name


def _document() -> dict:
    from repro.model.scenarios import scenario_path
    return load_document(scenario_path(SOURCE))


@functools.lru_cache(maxsize=None)
def _model() -> Model:
    return Model.from_document(_document(), validate=False)


def test_REQ_ADAS_FUSION_001_schema_valid():
    """REQ-ADAS-FUSION-001 [meta, osek, com, network, resilience] — the committed document validates against format_version 1 with zero problems."""
    assert validate_document(_document()) == []


def test_REQ_ADAS_FUSION_002_source_digest_in_sync():
    """REQ-ADAS-FUSION-002 [meta] — the committed document is byte-for-byte the one this suite
    was generated from (the sync anchor — on mismatch,
    regenerate with `repro model testgen`)."""
    assert model_digest(_document()) == MODEL_DIGEST


def test_REQ_ADAS_FUSION_003_roundtrip_digest_identical():
    """REQ-ADAS-FUSION-003 [osek, com, network] — model -> live system -> model round-trips to the identical
    digest: the exchange format loses nothing any executable
    view needs."""
    assert _model().roundtrip().digest() == MODEL_DIGEST


def test_REQ_ADAS_FUSION_004_structure_inventory():
    """REQ-ADAS-FUSION-004 [osek, com, network, resilience] — the compiled system exposes exactly the modelled inventory:
    3 ECU(s), 8 task(s), 7 CAN frame(s),
    flexray=False, chain=True, 0 declared fault scenario(s)."""
    system = _model().build()
    tdma_tasks = (0 if system.tdma is None
                  else len(system.tdma.tasks))
    ecus = len(system.tasksets) + \
        (0 if system.tdma is None else 1)
    tasks = sum(len(ts) for ts in system.tasksets.values()) \
        + tdma_tasks
    assert ecus == 3
    assert tasks == 8
    frames = (0 if system.can is None
              else len(system.can.frames))
    assert frames == 7
    assert (system.flexray is not None) is False
    assert (system.chain is not None) is True
    assert len(system.faults) == 0


def test_REQ_ADAS_FUSION_005_verify_sound():
    """REQ-ADAS-FUSION-005 [osek, com, network] — every analytic bound holds against the simulated
    observation: 0 soundness violations, 0 trace-invariant
    violations, no declined layer."""
    from repro.model.build import verify_models
    report = verify_models([_model()])
    assert report.soundness_violations == 0
    assert report.invariant_violations == 0
    assert report.passed
    assert all(not v.declined for v in report.verdicts)


def test_REQ_ADAS_FUSION_006_trace_invariants_hold():
    """REQ-ADAS-FUSION-006 [osek, network] — replaying the nominal simulation trace through every
    pluggable invariant (CPU overlap, TDMA windows, priority
    ceiling, alive counter, E2E containment) yields zero
    violations."""
    from repro.verify import (InvariantChecker, build_system,
                              make_invariants)
    system = _model().build()
    built = build_system(system)
    built.sim.run_until(built.horizon)
    checker = InvariantChecker(make_invariants(system))
    assert checker.run(built.trace) == []


def test_REQ_ADAS_FUSION_007_resilience_verdicts():
    """REQ-ADAS-FUSION-007 [resilience] — all 7 fault scenario(s) (the standard fault matrix) are
    detected within the analytic bound, contained, and
    recovered: 0 unmet obligations."""
    from repro.model.build import resilience_models
    report = resilience_models([_model()])
    assert report.unmet == 0
    assert report.passed
    scenarios = sum(len(row['verdicts'])
                    for row in report.rows)
    assert scenarios == 7


def test_REQ_ADAS_FUSION_008_daq_measurement_digest_stable():
    """REQ-ADAS-FUSION-008 [meas] — sampling the default DAQ list (period 1000000 ns, horizon
    20000000 ns of simulated time) reproduces the
    generation-time measurement digest byte-for-byte."""
    from repro.meas.batch import measure_models
    report = measure_models([_model()], period=1000000,
                            horizon=20000000)
    assert report.sample_count == 357
    assert report.digest() == \
        "4fc0ce6bcea10ea48f269aa068e3a1fb83d499f2227dedf76ccba4983f2258b6"
