"""Tests for the recovery orchestrator and its ErrorManager/watchdog hooks."""

import pytest

from repro.bsw import (ErrorEvent, ErrorManager, FAILED, ModeMachine,
                       PASSED, RecoveryOrchestrator, RecoveryPolicy)
from repro.errors import ConfigurationError
from repro.sim import Simulator, Trace
from repro.units import ms


def make_world(**policy_kwargs):
    sim = Simulator()
    trace = Trace()
    errors = ErrorManager("SYS", trace=trace, now=lambda: sim.now)
    errors.register(ErrorEvent("sensor", 0x1111, threshold=2))
    modes = ModeMachine("vehicle", ["nominal", "limp"], "nominal",
                        trace=trace)
    modes.bind_clock(lambda: sim.now)
    modes.allow("nominal", "limp")
    modes.allow("limp", "nominal")
    orch = RecoveryOrchestrator(sim, errors, modes=modes, trace=trace)
    orch.add_policy(RecoveryPolicy("sensor", degraded_mode="limp",
                                   **policy_kwargs))
    return sim, trace, errors, modes, orch


def confirm(errors, name="sensor", times=2):
    for _ in range(times):
        errors.report(name, FAILED)


def heal(errors, name="sensor", times=2):
    for _ in range(times):
        errors.report(name, PASSED)


def test_policy_requires_a_reaction_and_valid_holds():
    with pytest.raises(ConfigurationError):
        RecoveryPolicy("sensor")
    with pytest.raises(ConfigurationError):
        RecoveryPolicy("sensor", degraded_mode="limp", heal_hold=-1)


def test_policy_builds_chain_from_configured_reactions():
    policy = RecoveryPolicy("sensor", signal="speed",
                            degraded_mode="limp", restart_entity="t")
    assert policy.chain == ["substitute", "degrade", "restart"]
    assert RecoveryPolicy("sensor", restart_entity="t").chain == ["restart"]


def test_add_policy_validates_bindings():
    sim = Simulator()
    errors = ErrorManager("SYS")
    errors.register(ErrorEvent("sensor", 0x1111))
    orch = RecoveryOrchestrator(sim, errors)
    with pytest.raises(ConfigurationError):
        orch.add_policy(RecoveryPolicy("sensor", degraded_mode="limp"))
    with pytest.raises(ConfigurationError):
        orch.add_policy(RecoveryPolicy("sensor", signal="speed"))
    with pytest.raises(ConfigurationError):
        orch.add_policy(RecoveryPolicy("sensor", restart_entity="t"))


def test_confirmation_escalates_to_degraded_mode():
    sim, trace, errors, modes, orch = make_world()
    assert orch.level_name("sensor") == "none"
    confirm(errors)
    assert modes.current == "limp"
    assert orch.level("sensor") == 1
    assert trace.records("recovery.escalate", "sensor")


def test_heal_deescalates_after_hold_with_hysteresis():
    sim, trace, errors, modes, orch = make_world(heal_hold=ms(20))
    confirm(errors)
    heal(errors)
    # Hysteresis: mode stays degraded until the heal hold elapses.
    sim.run_until(ms(10))
    assert modes.current == "limp"
    sim.run_until(ms(30))
    assert modes.current == "nominal"
    assert orch.level("sensor") == 0


def test_relapse_during_hold_cancels_deescalation():
    sim, trace, errors, modes, orch = make_world(heal_hold=ms(20))
    confirm(errors)
    heal(errors)
    sim.run_until(ms(10))
    confirm(errors)  # fault returns before the hold elapses
    sim.run_until(ms(100))
    assert modes.current == "limp"
    assert orch.level("sensor") == 1


def test_multi_level_chain_walks_up_and_back_down():
    sim = Simulator()
    trace = Trace()
    errors = ErrorManager("SYS", trace=trace, now=lambda: sim.now)
    errors.register(ErrorEvent("sensor", 0x1111, threshold=2))
    modes = ModeMachine("vehicle", ["nominal", "limp"], "nominal",
                        trace=trace)
    modes.bind_clock(lambda: sim.now)
    modes.allow("nominal", "limp")
    modes.allow("limp", "nominal")
    restarts = []
    orch = RecoveryOrchestrator(sim, errors, modes=modes, trace=trace)
    orch.add_policy(RecoveryPolicy(
        "sensor", degraded_mode="limp",
        on_restart=lambda: restarts.append(sim.now),
        escalate_hold=ms(10), heal_hold=ms(10)))
    confirm(errors)
    assert orch.level_name("sensor") == "degrade"
    sim.run_until(ms(15))  # hold elapses with the error still confirmed
    assert orch.level_name("sensor") == "restart"
    assert len(restarts) == 1
    heal(errors)
    sim.run_until(ms(27))  # one de-escalation step per heal hold
    assert orch.level_name("sensor") == "degrade"
    assert modes.current == "limp"
    sim.run_until(ms(40))
    assert orch.level_name("sensor") == "none"
    assert modes.current == "nominal"


def test_shared_degraded_mode_held_until_last_policy_heals():
    sim = Simulator()
    errors = ErrorManager("SYS", now=lambda: sim.now)
    errors.register(ErrorEvent("a", 0x1, threshold=1))
    errors.register(ErrorEvent("b", 0x2, threshold=1))
    modes = ModeMachine("vehicle", ["nominal", "limp"], "nominal")
    modes.bind_clock(lambda: sim.now)
    modes.allow("nominal", "limp")
    modes.allow("limp", "nominal")
    orch = RecoveryOrchestrator(sim, errors, modes=modes)
    orch.add_policy(RecoveryPolicy("a", degraded_mode="limp"))
    orch.add_policy(RecoveryPolicy("b", degraded_mode="limp"))
    errors.report("a", FAILED)
    errors.report("b", FAILED)
    assert modes.current == "limp"
    errors.report("a", PASSED)
    sim.run_until(ms(1))
    # Policy b still holds the degraded mode.
    assert modes.current == "limp"
    errors.report("b", PASSED)
    sim.run_until(ms(2))
    assert modes.current == "nominal"


def test_freeze_frame_refreshed_on_reconfirmation():
    sim = Simulator()
    errors = ErrorManager("SYS", now=lambda: sim.now)
    errors.register(ErrorEvent("sensor", 0x1111, threshold=2))
    errors.report("sensor", FAILED, context={"reading": 10})
    errors.report("sensor", FAILED, context={"reading": 11})
    frame = errors.event("sensor").freeze_frame
    assert frame["reading"] == 11
    first_time = frame["first_time"]
    sim.run_until(ms(5))
    errors.report("sensor", FAILED, context={"reading": 99})
    frame = errors.event("sensor").freeze_frame
    # Context and timestamp track the latest failure; the first
    # confirmation instant is preserved.
    assert frame["reading"] == 99
    assert frame["time"] == ms(5)
    assert frame["first_time"] == first_time


def test_error_manager_snapshot():
    errors = ErrorManager("SYS")
    errors.register(ErrorEvent("b_event", 0x2, threshold=1))
    errors.register(ErrorEvent("a_event", 0x1, threshold=2))
    errors.report("b_event", FAILED, context={"x": 7})
    snap = errors.snapshot()
    assert list(snap) == ["a_event", "b_event"]  # sorted, deterministic
    assert snap["b_event"]["confirmed"] is True
    assert snap["b_event"]["occurrences"] == 1
    assert snap["b_event"]["freeze_frame"]["x"] == 7
    assert snap["a_event"]["confirmed"] is False
    assert snap["a_event"]["freeze_frame"] is None
    # The snapshot is a copy: mutating it leaves the manager untouched.
    snap["b_event"]["freeze_frame"]["x"] = 0
    assert errors.event("b_event").freeze_frame["x"] == 7


def kick_every(sim, wdg, entity_name, period, until):
    def tick():
        wdg.kick(entity_name)
        if sim.now + period < until:
            sim.schedule(period, tick)
    sim.schedule(period, tick)


def test_watchdog_reset_clears_violation_and_resumes_supervision():
    from repro.bsw import WatchdogManager
    sim = Simulator()
    trace = Trace()
    wdg = WatchdogManager(sim, trace=trace, name="W")
    wdg.supervise("part", window=ms(10))
    sim.schedule(ms(1), lambda: wdg.kick("part"))
    sim.run_until(ms(40))  # one kick, then silence: violation latches
    assert wdg.status("part")["violated"]
    assert wdg.reset("part") is True
    assert not wdg.status("part")["violated"]
    assert trace.records("wdg.reset", "part")
    # Supervision is live again: kicks keep it healthy...
    kick_every(sim, wdg, "part", ms(5), until=ms(80))
    sim.run_until(ms(80))
    assert not wdg.status("part")["violated"]
    # ...and renewed silence latches a fresh violation.
    sim.run_until(ms(120))
    assert wdg.status("part")["violated"]


def test_watchdog_reset_of_healthy_entity_is_a_noop():
    from repro.bsw import WatchdogManager
    sim = Simulator()
    wdg = WatchdogManager(sim, name="W")
    wdg.supervise("part", window=ms(10))
    kick_every(sim, wdg, "part", ms(5), until=ms(30))
    sim.run_until(ms(30))
    assert wdg.reset("part") is False
    assert not wdg.status("part")["violated"]


def test_bind_e2e_tracks_last_good_and_reports_verdicts():
    from repro.com import (CanComAdapter, ComStack, E2eProfile, PERIODIC,
                           SignalSpec, e2e_protected_pdu, protect_link)
    from repro.network import CanBus, CanFrameSpec
    sim = Simulator()
    trace = Trace()
    bus = CanBus(sim, 500_000, trace=trace)
    profile = E2eProfile(0x10, timeout=ms(25))
    tx = ComStack(sim, CanComAdapter(
        bus.attach("A"), {"P": CanFrameSpec("P", 0x100)}), "A",
        trace=trace)
    rx = ComStack(sim, CanComAdapter(bus.attach("B"), {}), "B",
                  trace=trace)
    pdu = lambda: e2e_protected_pdu("P", 8, [SignalSpec("speed", 16)],
                                    profile)
    tx.add_tx_pdu(pdu(), mode=PERIODIC, period=ms(10))
    rx.add_rx_pdu(pdu())
    receiver = protect_link(tx, rx, "P", profile)
    errors = ErrorManager("SYS", trace=trace, now=lambda: sim.now)
    errors.register(ErrorEvent("speed_e2e", 0x4A01, threshold=2))
    orch = RecoveryOrchestrator(sim, errors, com=rx, trace=trace)
    orch.add_policy(RecoveryPolicy("speed_e2e", signal="speed"))
    orch.bind_e2e(receiver, "speed_e2e", signal="speed")
    tx.write_signal("speed", 42)
    sim.run_until(ms(35))
    assert orch.last_good("speed") == 42
    assert errors.event("speed_e2e").counter == 0  # OK verdicts report PASSED
    # Drop every subsequent frame: timeout verdicts confirm the event.
    rx.add_rx_filter(lambda name, payload: None)
    sim.run_until(ms(120))
    event = errors.event("speed_e2e")
    assert event.confirmed
    assert event.freeze_frame["verdict"] == "timeout"
    # The orchestrator substituted the last good value.
    assert rx.substituted_signals() == ["speed"]
    assert rx.read_signal("speed") == 42


# ----------------------------------------------------------------------
# Hysteresis edge cases
# ----------------------------------------------------------------------
def test_reconfirmation_during_hold_restarts_the_escalation_clock():
    # Relapse while an escalation to the next level is pending: the
    # escalation clock must restart from the re-confirmation, not keep
    # running from the first confirmation.
    restarts = []
    sim, trace, errors, modes, orch = make_world(
        on_restart=lambda: restarts.append(1),
        escalate_hold=ms(50), heal_hold=ms(20))
    confirm(errors)                       # t=0: level 1 (degrade)
    assert orch.level("sensor") == 1
    heal(errors)                          # heal cancels the pending step
    sim.run_until(ms(10))
    confirm(errors)                       # t=10 ms: relapse at level 1
    # The original escalation deadline (t=50 ms) must NOT fire...
    sim.run_until(ms(55))
    assert orch.level("sensor") == 1
    assert restarts == []
    # ...but the restarted clock (t=10+50 ms) must.
    sim.run_until(ms(65))
    assert orch.level("sensor") == 2
    assert orch.level_name("sensor") == "restart"
    assert restarts


def test_fresh_confirmation_cancels_a_pending_deescalation():
    # A fresh DTC confirmation arriving inside the heal-hold window must
    # win the race: the already-armed de-escalation may not fire.
    sim, trace, errors, modes, orch = make_world(heal_hold=ms(20))
    confirm(errors)                       # t=0: degrade
    heal(errors)                          # de-escalation armed for t=20 ms
    sim.run_until(ms(10))
    confirm(errors)                       # t=10 ms: fresh confirmation
    sim.run_until(ms(40))                 # well past the stale deadline
    assert orch.level("sensor") == 1
    assert modes.current == "limp"
    assert not trace.records("recovery.deescalate", "sensor")
    # Only a heal that *stays* healed for the full hold de-escalates.
    heal(errors)                          # t=40 ms
    sim.run_until(ms(70))
    assert orch.level("sensor") == 0
    assert modes.current == "nominal"
