"""Property test: transferability holds for randomized applications.

For arbitrary small component networks (random producers, chain depths,
periods, fan-out) the VFB run and a 2-ECU CAN deployment must end with
identical buffer values — the RTE's core promise, checked mechanically
by :func:`repro.core.check_transferability`.
"""

from hypothesis import given, settings, strategies as st

from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16, check_transferability)
from repro.units import ms, us

DATA_IF = SenderReceiverInterface("d", {"v": UINT16})

app_shapes = st.lists(
    st.tuples(st.sampled_from([10, 20, 50]),   # producer period (ms)
              st.integers(min_value=1, max_value=3),  # multiplier
              st.integers(min_value=1, max_value=2)),  # chain depth
    min_size=1, max_size=3)


def make_app_factory(shape):
    def factory():
        app = Composition("App")
        for index, (period, multiplier, depth) in enumerate(shape):
            producer = SwComponent(f"Producer{index}")
            producer.provide("out", DATA_IF)

            def produce(ctx, multiplier=multiplier):
                ctx.state["n"] = ctx.state.get("n", 0) + 1
                ctx.write("out", "v",
                          (ctx.state["n"] * multiplier) % 65536)

            producer.runnable("tick", TimingEvent(ms(period)), produce,
                              wcet=us(100))
            app.add(producer.instantiate(f"p{index}"))
            upstream = (f"p{index}", "out")
            for stage in range(depth):
                transformer = SwComponent(f"T{index}_{stage}")
                transformer.require("in", DATA_IF)
                transformer.provide("out", DATA_IF)

                def transform(ctx):
                    ctx.write("out", "v",
                              (ctx.read("in", "v") + 1) % 65536)

                transformer.runnable("work",
                                     DataReceivedEvent("in", "v"),
                                     transform, wcet=us(100))
                name = f"t{index}_{stage}"
                app.add(transformer.instantiate(name))
                app.connect(upstream[0], upstream[1], name, "in")
                upstream = (name, "out")
        return app

    return factory


def make_system_factory(shape):
    def factory(app):
        system = SystemModel("prop")
        system.add_ecu("E1")
        system.add_ecu("E2")
        system.set_root(app)
        # Alternate mapping: producers on E1, transformers split.
        instances, __ = app.flatten()
        for i, instance in enumerate(instances):
            system.map(instance.name, "E1" if i % 2 == 0 else "E2")
        system.configure_bus("can")
        return system

    return factory


@settings(max_examples=15, deadline=None)
@given(app_shapes)
def test_random_apps_transfer_unchanged(shape):
    app = make_app_factory(shape)()
    instances, __ = app.flatten()
    observe = [(i.name, "out", "v") for i in instances]
    report = check_transferability(
        make_app_factory(shape), make_system_factory(shape),
        horizon=ms(105), observe=observe, settle=ms(4))
    assert report.ok, report.mismatches
