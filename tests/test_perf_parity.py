"""Cached-vs-uncached parity for the analysis memo cache.

The cache's only licence to exist is that it is *invisible*: every
verdict, report digest, coverage token, and telemetry counter must be
byte-identical with the cache off, cold, warm, disk-backed, or
mid-eviction — for the regression corpus, for generated systems, for
property-drawn systems, and under ``--jobs``/``--resume``.  These tests
are the licence check.
"""

import hashlib
import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs, perf
from repro.perf.memo import CacheConfig
from repro.verify.fuzz import fuzz
from repro.verify.generator import generate
from repro.verify.oracle import analyze_bounds, verify_many, verify_system
from repro.verify.serialize import system_from_dict

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


@pytest.fixture(autouse=True)
def cache_off():
    """Tests flip the process-wide memo; always leave it off."""
    perf.configure(None)
    yield
    perf.configure(None)


def corpus_systems():
    systems = []
    for name in sorted(os.listdir(CORPUS_DIR)):
        if not name.endswith(".json") or name == "known_issues.json":
            continue
        with open(os.path.join(CORPUS_DIR, name),
                  encoding="utf-8") as handle:
            payload = json.load(handle)
        systems.append((name, payload))
    return systems


def verdict_digest(system, horizon=None) -> str:
    verdict = verify_system(system, horizon)
    body = json.dumps(verdict.to_dict(), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(body.encode()).hexdigest()


def bounds_fingerprint(system):
    bounds, declined = analyze_bounds(system)
    return json.dumps({"bounds": bounds, "declined": declined},
                      sort_keys=True, default=str)


# ----------------------------------------------------------------------
# Per-system parity: off == cold == warm == disk
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name,payload", corpus_systems())
def test_corpus_seed_parity_across_cache_states(tmp_path, name, payload):
    horizon = payload.get("horizon")
    baseline = verdict_digest(system_from_dict(payload["system"]), horizon)
    perf.configure(CacheConfig(True, 4096, str(tmp_path)))
    cold = verdict_digest(system_from_dict(payload["system"]), horizon)
    warm = verdict_digest(system_from_dict(payload["system"]), horizon)
    perf.clear()                     # memory dropped: disk tier serves
    disk = verdict_digest(system_from_dict(payload["system"]), horizon)
    assert baseline == cold == warm == disk
    assert perf.stats()["disk_hits"] > 0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000),
       size=st.sampled_from(["small", "medium"]))
def test_generated_system_bounds_parity(seed, size):
    """Property: for any generated system, analyze_bounds returns the
    identical bounds and declines with the memo off, cold, and warm."""
    perf.configure(None)
    baseline = bounds_fingerprint(generate(seed, size))
    perf.configure(CacheConfig(True, 4096))
    cold = bounds_fingerprint(generate(seed, size))
    warm = bounds_fingerprint(generate(seed, size))
    perf.configure(None)
    assert baseline == cold == warm


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_generated_system_verdict_parity_includes_telemetry(seed):
    """Full verify_system parity, including the obs counters the fuzzer
    folds into coverage signatures (perf.* bookkeeping excluded)."""
    def run():
        with obs.capture() as scope:
            digest = verdict_digest(generate(seed, "small"))
        counters = {
            name: value for name, value in
            scope.snapshot()["metrics"]["counters"].items()
            if not name.startswith("perf.")}
        return digest, counters

    perf.configure(None)
    baseline = run()
    perf.configure(CacheConfig(True, 4096))
    cold = run()
    warm = run()
    perf.configure(None)
    assert baseline == cold == warm


def test_parity_survives_mid_run_eviction():
    """capacity=1 forces an eviction on nearly every solve — the memo
    thrashes constantly and must still change nothing."""
    systems = [generate(seed, "small") for seed in range(6)]
    baseline = [bounds_fingerprint(s) for s in systems]
    perf.configure(CacheConfig(True, 1))
    thrashed = [bounds_fingerprint(s) for s in systems]
    stats = perf.stats()
    perf.configure(None)
    assert thrashed == baseline
    assert stats["evictions"] > 0


# ----------------------------------------------------------------------
# Batch parity: verify_many / fuzz digests, jobs and resume
# ----------------------------------------------------------------------
def test_verify_many_digest_parity_off_vs_cache():
    baseline = verify_many(seed=19, count=6, size="small").digest()
    cached = verify_many(seed=19, count=6, size="small",
                         cache=CacheConfig(True, 4096)).digest()
    assert cached == baseline
    # The cache travelled via the plan's setup hook: the parent-process
    # memo (jobs=1 runs chunks in-process) actually saw traffic.
    assert perf.stats() is not None and perf.stats()["misses"] > 0


def test_fuzz_digest_parity_off_vs_cache():
    baseline = fuzz(seed=3, budget=24, jobs=1)
    cached = fuzz(seed=3, budget=24, jobs=1,
                  cache=CacheConfig(True, 4096))
    assert cached.digest() == baseline.digest()
    assert cached.coverage == baseline.coverage
    assert perf.stats() is not None and perf.stats()["hits"] > 0


@pytest.mark.slow
def test_verify_many_parity_under_jobs_and_disk(tmp_path):
    """The full stack at once: jobs=2 pool fan-out with a disk-backed
    cache shared across workers, against the cache-off serial digest."""
    baseline = verify_many(seed=23, count=8, size="small").digest()
    cached = verify_many(
        seed=23, count=8, size="small", jobs=2,
        cache=CacheConfig(True, 4096, str(tmp_path))).digest()
    assert cached == baseline
    assert os.listdir(tmp_path)      # workers populated the disk tier
    # A second run hits the now-warm disk tier and still agrees.
    rewarm = verify_many(
        seed=23, count=8, size="small", jobs=2,
        cache=CacheConfig(True, 4096, str(tmp_path))).digest()
    assert rewarm == baseline


@pytest.mark.slow
def test_verify_many_parity_across_interrupt_and_resume(tmp_path):
    from repro.errors import ExecutionInterrupted

    baseline = verify_many(seed=29, count=6, size="small").digest()
    checkpoint = str(tmp_path / "verify.jsonl")
    cache = CacheConfig(True, 4096, str(tmp_path / "cache"))
    with pytest.raises(ExecutionInterrupted):
        verify_many(seed=29, count=6, size="small",
                    checkpoint=checkpoint, interrupt_after=3,
                    cache=cache)
    resumed = verify_many(seed=29, count=6, size="small",
                          checkpoint=checkpoint, resume=True,
                          cache=cache)
    assert resumed.digest() == baseline


@pytest.mark.slow
def test_wide_generated_parity_sweep():
    """ISSUE acceptance floor: a couple hundred generated systems,
    cache-off vs cold vs warm, all byte-identical."""
    seeds = range(200)
    baseline = [bounds_fingerprint(generate(s, "small")) for s in seeds]
    perf.configure(CacheConfig(True, 8192))
    cold = [bounds_fingerprint(generate(s, "small")) for s in seeds]
    after_cold = perf.stats()
    warm = [bounds_fingerprint(generate(s, "small")) for s in seeds]
    stats = perf.stats()
    perf.configure(None)
    assert cold == baseline
    assert warm == baseline
    # Warm pass re-solves nothing: each system is one composite hit
    # (the per-layer entries are never even consulted again), and not a
    # single new miss appears.
    assert after_cold["misses"] > 0
    assert stats["misses"] == after_cold["misses"]
    assert stats["hits"] == after_cold["hits"] + len(seeds)
