"""Unit tests for trace recording and derived metrics."""

from repro.sim import Trace, summarize
from repro.sim.clock import DriftingClock, precision


def test_log_and_filter_by_category_prefix():
    tr = Trace()
    tr.log(1, "task.activate", "T1")
    tr.log(2, "task.complete", "T1")
    tr.log(3, "bus.tx", "F1")
    assert len(tr.records("task")) == 2
    assert len(tr.records("task.activate")) == 1
    assert len(tr.records("bus.tx")) == 1
    assert tr.records("bus") and tr.records("bus")[0].subject == "F1"


def test_prefix_matching_is_token_based():
    tr = Trace()
    tr.log(1, "taskish.thing", "X")
    assert tr.records("task") == []


def test_filter_by_subject_and_predicate():
    tr = Trace()
    tr.log(1, "task.complete", "A", response=10)
    tr.log(2, "task.complete", "B", response=99)
    assert [r.subject for r in tr.records(subject="B")] == ["B"]
    heavy = tr.records(predicate=lambda r: r.data.get("response", 0) > 50)
    assert [r.subject for r in heavy] == ["B"]


def test_spans_pairs_starts_with_following_ends():
    tr = Trace()
    tr.log(0, "s", "x")
    tr.log(5, "e", "x")
    tr.log(10, "s", "x")
    tr.log(18, "e", "x")
    tr.log(20, "s", "x")  # unmatched trailing start
    assert tr.spans("s", "e", "x") == [(0, 5), (10, 18)]


def test_response_times_from_spans():
    tr = Trace()
    tr.log(0, "task.activate", "T")
    tr.log(7, "task.complete", "T")
    tr.log(10, "task.activate", "T")
    tr.log(13, "task.complete", "T")
    assert tr.response_times("T") == [7, 3]


def test_jitter_peak_to_peak():
    tr = Trace()
    for t in (0, 10, 25, 35):  # intervals 10, 15, 10
        tr.log(t, "task.start", "T")
    assert tr.jitter("task.start", "T") == 5


def test_jitter_needs_three_records():
    tr = Trace()
    tr.log(0, "x", "T")
    tr.log(10, "x", "T")
    assert tr.jitter("x", "T") == 0


def test_summarize_empty_and_nonempty():
    assert summarize([]) == {"count": 0, "min": None, "avg": None, "max": None}
    s = summarize([2, 4, 6])
    assert (s["count"], s["min"], s["avg"], s["max"]) == (3, 2, 4.0, 6)


def test_clear():
    tr = Trace()
    tr.log(0, "a", "b")
    tr.clear()
    assert len(tr) == 0


def test_drifting_clock_fast_and_slow():
    fast = DriftingClock(drift_ppm=100)
    slow = DriftingClock(drift_ppm=-100)
    t = 1_000_000_000  # 1 s
    assert fast.local_time(t) == t + 100_000
    assert slow.local_time(t) == t - 100_000
    assert fast.error_at(t) == 100_000


def test_clock_resynchronize_cancels_offset():
    clock = DriftingClock(drift_ppm=200, offset_ns=5_000)
    t = 500_000_000
    clock.resynchronize(t)
    assert clock.error_at(t) == 0
    # error grows again after resync
    assert clock.error_at(t + 1_000_000_000) > 0


def test_precision_bound_covers_pairwise_drift():
    clocks = [DriftingClock(drift_ppm=d) for d in (50, -80, 20)]
    interval = 10_000_000  # 10 ms resync
    p = precision(clocks, interval)
    worst_pair = (clocks[0].drift_ppm - clocks[1].drift_ppm) / 1e6 * interval
    assert p >= worst_pair


def test_precision_empty_is_zero():
    assert precision([], 1000) == 0


def test_record_get_tolerates_missing_data_keys():
    tr = Trace()
    tr.log(1, "task.complete", "T", response=7)
    tr.log(2, "task.complete", "T")  # partially instrumented record
    full, bare = tr.records("task.complete")
    assert full.get("response") == 7
    assert bare.get("response") is None
    assert bare.get("response", -1) == -1


def test_data_values_skips_records_without_the_key():
    tr = Trace()
    tr.log(1, "task.complete", "T", response=7)
    tr.log(2, "task.complete", "T")
    tr.log(3, "task.complete", "T", response=9)
    tr.log(4, "task.complete", "U", response=99)
    assert tr.data_values("task.complete", "response", "T") == [7, 9]
    assert tr.data_values("task.complete", "response") == [7, 9, 99]
    assert tr.data_values("task.complete", "missing") == []


# ----------------------------------------------------------------------
# Bounded / streaming mode
# ----------------------------------------------------------------------
def test_unbounded_trace_default_unchanged():
    tr = Trace()
    for i in range(1000):
        tr.log(i, "cat", "s")
    assert len(tr) == 1000 and tr.spilled == 0


def test_bounded_trace_evicts_oldest_quarter():
    tr = Trace(max_records=100)
    for i in range(101):
        tr.log(i, "cat", "s")
    # Exceeding the cap trims to 3/4 of it in one batch.
    assert len(tr) == 75
    assert tr.spilled == 26
    assert tr.records("cat")[0].time == 26  # oldest were evicted


def test_bounded_trace_spill_callback_receives_evicted():
    batches = []
    tr = Trace(max_records=8, spill=batches.append)
    for i in range(9):
        tr.log(i, "cat", "s")
    assert len(tr) == 6 and tr.spilled == 3
    assert [r.time for r in batches[0]] == [0, 1, 2]


def test_jsonl_spill_streams_to_disk(tmp_path):
    import json

    from repro.sim.trace import jsonl_spill

    path = tmp_path / "spill.jsonl"
    tr = Trace(max_records=8, spill=jsonl_spill(path))
    for i in range(20):
        tr.log(i, "cat", "s", n=i)
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    # Spilled-to-disk plus retained-in-memory covers every record.
    assert len(rows) + len(tr) == 20
    assert rows[0] == {"time": 0, "category": "cat", "subject": "s",
                       "data": {"n": 0}}
    assert [r["time"] for r in rows] == list(range(len(rows)))


def test_bounded_trace_validates_cap():
    import pytest

    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        Trace(max_records=2)


# ----------------------------------------------------------------------
# Spill-sink protocol (writer objects) and close()
# ----------------------------------------------------------------------
class _BatchWriter:
    """Minimal writer-protocol sink: write_batch() + close()."""

    def __init__(self):
        self.batches = []
        self.closed = 0

    def write_batch(self, records):
        self.batches.append(list(records))

    def close(self):
        self.closed += 1


def test_spill_accepts_writer_object_with_write_batch():
    writer = _BatchWriter()
    tr = Trace(max_records=8, spill=writer)
    for i in range(9):
        tr.log(i, "cat", "s")
    assert tr.spilled == 3
    assert [r.time for r in writer.batches[0]] == [0, 1, 2]


def test_close_flushes_retained_tail_and_closes_writer():
    writer = _BatchWriter()
    tr = Trace(max_records=8, spill=writer)
    for i in range(9):
        tr.log(i, "cat", "s")
    tr.close()
    # Evicted batch + retained tail together cover every record.
    spilled = [r.time for batch in writer.batches for r in batch]
    assert spilled == list(range(9))
    assert tr.spilled == 9 and len(tr) == 0
    assert writer.closed == 1
    tr.close()  # idempotent: no double-flush, no double-close
    assert writer.closed == 1 and tr.spilled == 9


def test_close_without_spill_target_is_harmless():
    tr = Trace()
    tr.log(0, "a", "b")
    tr.close()
    tr.close()


def test_jsonl_spill_round_trips_every_record_via_close(tmp_path):
    import json

    from repro.sim.trace import jsonl_spill

    path = tmp_path / "full.jsonl"
    tr = Trace(max_records=8, spill=jsonl_spill(path))
    for i in range(20):
        tr.log(i, "cat", "s", n=i)
    tr.close()
    rows = [json.loads(line) for line in path.read_text().splitlines()]
    # With close(), the file alone covers the whole run, in order.
    assert [r["time"] for r in rows] == list(range(20))
    assert [r["data"]["n"] for r in rows] == list(range(20))


def test_mistyped_spill_target_rejected():
    import pytest

    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        Trace(max_records=8, spill=object())
