"""Tests for clock drift and synchronization in the TTP cluster."""

import pytest

from repro.errors import ConfigurationError
from repro.network import TtpCluster
from repro.sim import Simulator
from repro.sim.clock import precision
from repro.units import ms, us


def make_cluster(drift_ppm, guard=us(5), resync_rounds=1, n=4):
    sim = Simulator()
    drifts = {f"N{i}": (drift_ppm if i % 2 == 0 else -drift_ppm)
              for i in range(n)}
    cluster = TtpCluster(sim, [f"N{i}" for i in range(n)],
                         slot_length=us(300), guard_time=guard,
                         clock_drift_ppm=drifts,
                         resync_every_rounds=resync_rounds)
    for i in range(n):
        cluster.node(f"N{i}").set_payload(i)
    return sim, cluster


def test_small_drift_fully_tolerated():
    sim, cluster = make_cluster(drift_ppm=100)
    cluster.start()
    sim.run_until(ms(50))
    assert cluster.sync_errors == 0
    assert cluster.membership == {"N0", "N1", "N2", "N3"}


def test_excessive_drift_without_resync_breaks_service():
    # 100 rounds between resyncs: drift accumulates far past the guard.
    sim, cluster = make_cluster(drift_ppm=200, resync_rounds=100)
    cluster.start()
    sim.run_until(ms(100))
    assert cluster.sync_errors > 0
    assert len(cluster.trace.records("ttp.sync_error")) == \
        cluster.sync_errors


def test_resync_frequency_restores_service():
    """Identical crystals: frequent resync keeps the cluster healthy,
    rare resync does not — the precision/interval trade-off."""

    def errors(resync_rounds):
        sim, cluster = make_cluster(drift_ppm=200,
                                    resync_rounds=resync_rounds)
        cluster.start()
        sim.run_until(ms(100))
        return cluster.sync_errors

    assert errors(1) == 0
    assert errors(100) > 0


def test_analytic_precision_predicts_simulation():
    """The clock.precision() design rule matches cluster behaviour."""
    guard = us(5)
    for drift in (50, 200, 2000, 8000):
        sim, cluster = make_cluster(drift_ppm=drift, guard=guard)
        resync_interval = cluster.resync_every_rounds * \
            cluster.round_length
        clocks = [node.clock for node in cluster.nodes.values()]
        predicted_safe = precision(clocks, resync_interval) <= 2 * guard
        cluster.start()
        sim.run_until(ms(50))
        simulated_safe = cluster.sync_errors == 0
        # The analytic rule is safe (never predicts safe wrongly).
        if predicted_safe:
            assert simulated_safe, f"drift={drift}"


def test_guard_time_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        TtpCluster(sim, ["a", "b"], slot_length=us(10),
                   guard_time=us(5))  # 2*guard == slot
    with pytest.raises(ConfigurationError):
        TtpCluster(sim, ["a", "b"], slot_length=us(100),
                   resync_every_rounds=0)


def test_perfect_clocks_unaffected_by_sync_machinery():
    sim = Simulator()
    cluster = TtpCluster(sim, ["a", "b", "c"], slot_length=us(200))
    for name in ("a", "b", "c"):
        cluster.node(name).set_payload(0)
    cluster.start()
    sim.run_until(ms(20))
    assert cluster.sync_errors == 0
    assert len(cluster.trace.records("ttp.rx")) > 0
