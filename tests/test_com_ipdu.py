"""Tests for signals and I-PDU bit packing."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.com import (IPdu, SignalMapping, SignalSpec, pack_sequentially)


def test_signal_spec_validation():
    with pytest.raises(ConfigurationError):
        SignalSpec("S", 0)
    with pytest.raises(ConfigurationError):
        SignalSpec("S", 65)
    with pytest.raises(ConfigurationError):
        SignalSpec("S", 4, initial=16)
    with pytest.raises(ConfigurationError):
        SignalSpec("S", 4, transfer="bogus")
    with pytest.raises(ConfigurationError):
        SignalSpec("S", 4, timeout=0)


def test_pack_unpack_roundtrip_simple():
    pdu = IPdu("P", 8)
    pdu.add(SignalMapping(SignalSpec("a", 8), 0))
    pdu.add(SignalMapping(SignalSpec("b", 16), 8))
    pdu.add(SignalMapping(SignalSpec("c", 1), 24))
    payload = pdu.pack({"a": 0xAB, "b": 0x1234, "c": 1})
    decoded = pdu.unpack(payload)
    assert decoded["a"]["value"] == 0xAB
    assert decoded["b"]["value"] == 0x1234
    assert decoded["c"]["value"] == 1


def test_pack_uses_initial_for_missing_values():
    pdu = IPdu("P", 1)
    pdu.add(SignalMapping(SignalSpec("a", 4, initial=7), 0))
    assert pdu.unpack(pdu.pack({}))["a"]["value"] == 7


def test_overlap_rejected():
    pdu = IPdu("P", 8)
    pdu.add(SignalMapping(SignalSpec("a", 8), 0))
    with pytest.raises(ConfigurationError):
        pdu.add(SignalMapping(SignalSpec("b", 8), 4))


def test_overflow_rejected():
    pdu = IPdu("P", 1)
    with pytest.raises(ConfigurationError):
        pdu.add(SignalMapping(SignalSpec("a", 9), 0))
    with pytest.raises(ConfigurationError):
        pdu.add(SignalMapping(SignalSpec("a", 8), 1))


def test_duplicate_signal_rejected():
    pdu = IPdu("P", 8)
    spec = SignalSpec("a", 4)
    pdu.add(SignalMapping(spec, 0))
    with pytest.raises(ConfigurationError):
        pdu.add(SignalMapping(spec, 8))


def test_update_bit_set_only_for_updated_signals():
    pdu = IPdu("P", 2)
    pdu.add(SignalMapping(SignalSpec("a", 4), 0, update_bit=4))
    pdu.add(SignalMapping(SignalSpec("b", 4), 5, update_bit=9))
    payload = pdu.pack({"a": 3, "b": 5}, updated={"a"})
    decoded = pdu.unpack(payload)
    assert decoded["a"] == {"value": 3, "updated": True}
    assert decoded["b"] == {"value": 5, "updated": False}


def test_update_bit_overlap_detected():
    pdu = IPdu("P", 1)
    pdu.add(SignalMapping(SignalSpec("a", 4), 0, update_bit=4))
    with pytest.raises(ConfigurationError):
        pdu.add(SignalMapping(SignalSpec("b", 2), 5, update_bit=4))


def test_bits_free_accounting():
    pdu = IPdu("P", 1)
    pdu.add(SignalMapping(SignalSpec("a", 3), 0, update_bit=3))
    assert pdu.bits_free == 4


def test_pack_sequentially_layout():
    specs = [SignalSpec("a", 8), SignalSpec("b", 4), SignalSpec("c", 4)]
    pdu = pack_sequentially("P", 2, specs)
    assert pdu.mapping_of("a").start_bit == 0
    assert pdu.mapping_of("b").start_bit == 8
    assert pdu.mapping_of("c").start_bit == 12


def test_pack_sequentially_with_update_bits():
    specs = [SignalSpec("a", 4), SignalSpec("b", 4)]
    pdu = pack_sequentially("P", 2, specs, with_update_bits=True)
    assert pdu.mapping_of("a").update_bit == 4
    assert pdu.mapping_of("b").start_bit == 5
    assert pdu.mapping_of("b").update_bit == 9


def test_pack_sequentially_overflow():
    with pytest.raises(ConfigurationError):
        pack_sequentially("P", 1, [SignalSpec("a", 8), SignalSpec("b", 1)])


def test_value_out_of_range_on_pack():
    pdu = IPdu("P", 1)
    pdu.add(SignalMapping(SignalSpec("a", 4), 0))
    with pytest.raises(ConfigurationError):
        pdu.pack({"a": 16})


@given(st.lists(st.integers(min_value=1, max_value=16), min_size=1,
                max_size=6),
       st.data())
def test_roundtrip_property(widths, data):
    """Any layout that fits round-trips every in-range value exactly."""
    specs = [SignalSpec(f"s{i}", w) for i, w in enumerate(widths)]
    total = sum(widths)
    size = (total + 7) // 8
    pdu = pack_sequentially("P", size, specs)
    values = {s.name: data.draw(st.integers(min_value=0,
                                            max_value=s.max_value))
              for s in specs}
    decoded = pdu.unpack(pdu.pack(values))
    assert {k: v["value"] for k, v in decoded.items()} == values
