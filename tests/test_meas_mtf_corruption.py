"""Negative paths for the MTF store: every way a file on disk can be
damaged must surface as a readable :class:`ConfigurationError` naming
the file and the failure — never a raw traceback from ``struct``,
``json`` or ``array``.

Damage classes covered: truncation before the trailer (unclosed
writer, chopped transfer), a foreign or mangled header, a trailer
pointing outside the file, a corrupt directory (unparseable JSON or
missing keys), directory entries pointing past the data region, and
mid-file block damage — both in the JSON values region and in the
packed int64 timestamp region, where only the per-block CRC can tell.
"""

import json

import pytest

from repro.errors import ConfigurationError
from repro.meas.mtf import (_HEADER, _TRAILER, MAGIC, TRAILER_MAGIC,
                            VERSION, MtfReader, MtfWriter)


def write_sample(path, per_signal=100, chunk_records=32) -> str:
    with MtfWriter(str(path), chunk_records=chunk_records) as writer:
        for t in range(per_signal):
            writer.write_batch([(t * 10, "cat", "s0", {"v": t})])
    return str(path)


def damage(path: str, offset: int, payload: bytes) -> None:
    """Overwrite ``len(payload)`` bytes in place at ``offset``."""
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(payload)


def _open_fails(path: str, *needles: str) -> None:
    with pytest.raises(ConfigurationError) as excinfo:
        MtfReader(path)
    message = str(excinfo.value)
    assert path in message
    for needle in needles:
        assert needle in message, message


# ----------------------------------------------------------------------
# truncation and header damage
# ----------------------------------------------------------------------
def test_empty_file_is_not_an_mtf_file(tmp_path):
    path = tmp_path / "empty.mtf"
    path.write_bytes(b"")
    _open_fails(str(path), "not an MTF file")


def test_header_only_file_reports_truncation(tmp_path):
    """An unclosed writer leaves just the header: the reader must say
    'truncated', not die seeking backwards past the file start."""
    path = tmp_path / "header.mtf"
    path.write_bytes(_HEADER.pack(MAGIC, VERSION))
    _open_fails(str(path), "truncated", "trailer")


def test_file_chopped_before_trailer_reports_truncation(tmp_path):
    path = write_sample(tmp_path / "t.mtf")
    with open(path, "rb") as handle:
        blob = handle.read()
    chopped = tmp_path / "chopped.mtf"
    chopped.write_bytes(blob[:-_TRAILER.size])
    _open_fails(str(chopped), "truncated")


def test_bad_magic_is_rejected(tmp_path):
    path = write_sample(tmp_path / "t.mtf")
    damage(path, 0, b"ELF\x7f")
    _open_fails(path, "not an MTF file")


def test_unsupported_version_is_rejected(tmp_path):
    path = write_sample(tmp_path / "t.mtf")
    damage(path, 0, _HEADER.pack(MAGIC, 99))
    _open_fails(path, "unsupported MTF version 99")


# ----------------------------------------------------------------------
# trailer and directory damage
# ----------------------------------------------------------------------
def _trailer_offset(path: str) -> int:
    with open(path, "rb") as handle:
        return handle.seek(0, 2) - _TRAILER.size


def test_trailer_pointing_outside_file_is_rejected(tmp_path):
    path = write_sample(tmp_path / "t.mtf")
    damage(path, _trailer_offset(path),
           _TRAILER.pack(2 ** 40, 128, TRAILER_MAGIC))
    _open_fails(path, "corrupt MTF trailer", "outside the file")


def test_corrupt_directory_json_is_rejected(tmp_path):
    path = write_sample(tmp_path / "t.mtf")
    with open(path, "rb") as handle:
        handle.seek(_trailer_offset(path))
        dir_offset, __, __ = _TRAILER.unpack(handle.read(_TRAILER.size))
    damage(path, dir_offset, b"\xff\xfe{{{{")
    _open_fails(path, "corrupt MTF directory")


def test_directory_missing_keys_is_rejected(tmp_path):
    """A directory that parses as JSON but lacks the block index is
    still a corrupt directory, not a KeyError traceback."""
    path = str(tmp_path / "t.mtf")
    body = json.dumps({"version": VERSION}).encode()
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(MAGIC, VERSION))
        handle.write(body)
        handle.write(_TRAILER.pack(_HEADER.size, len(body),
                                   TRAILER_MAGIC))
    _open_fails(path, "corrupt MTF directory")


def test_block_entry_past_data_region_is_rejected(tmp_path):
    path = str(tmp_path / "t.mtf")
    body = json.dumps({
        "records": 1,
        "blocks": [{"signal": "cat:s0", "count": 1, "t_min": 0,
                    "t_max": 0, "times_offset": _HEADER.size,
                    "times_length": 8, "values_offset": 2 ** 30,
                    "values_length": 8}],
    }).encode()
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(MAGIC, VERSION))
        handle.write(b"\x00" * 16)
        handle.write(body)
        handle.write(_TRAILER.pack(_HEADER.size + 16, len(body),
                                   TRAILER_MAGIC))
    _open_fails(path, "corrupt MTF directory", "past the data region")


# ----------------------------------------------------------------------
# mid-file block damage (directory intact, data bytes flipped)
# ----------------------------------------------------------------------
def _first_block(path: str) -> dict:
    with MtfReader(path) as reader:
        return reader._blocks["cat:s0"][0]


def test_damaged_values_region_reports_corrupt_block(tmp_path):
    path = write_sample(tmp_path / "t.mtf")
    block = _first_block(path)
    damage(path, block["values_offset"] + 2, b"\x00\xff\x00")
    with MtfReader(path) as reader:
        with pytest.raises(ConfigurationError) as excinfo:
            reader.read("cat:s0")
        assert "corrupt MTF block" in str(excinfo.value)
        assert "cat:s0" in str(excinfo.value)


def test_damaged_timestamp_region_reports_corrupt_block(tmp_path):
    """Packed int64 timestamps have no syntax: any byte pattern parses.
    Only the per-block CRC catches a flipped time — the reader must
    refuse rather than silently return wrong samples."""
    path = write_sample(tmp_path / "t.mtf")
    block = _first_block(path)
    damage(path, block["times_offset"] + 3, b"\x5a")
    with MtfReader(path) as reader:
        with pytest.raises(ConfigurationError) as excinfo:
            reader.read("cat:s0")
        assert "fails its checksum" in str(excinfo.value)


def test_pre_checksum_files_still_readable(tmp_path):
    """Directories written before the CRC field existed must keep
    working: the checksum is verified only when present."""
    path = write_sample(tmp_path / "t.mtf")
    with open(path, "rb") as handle:
        size = handle.seek(0, 2) - _TRAILER.size
        handle.seek(size)
        dir_offset, dir_length, __ = _TRAILER.unpack(
            handle.read(_TRAILER.size))
        handle.seek(0)
        blob = bytearray(handle.read())
    directory = json.loads(bytes(blob[dir_offset:dir_offset +
                                      dir_length]))
    for block in directory["blocks"]:
        del block["crc"]
    body = json.dumps(directory, sort_keys=True,
                      separators=(",", ":")).encode()
    legacy = str(tmp_path / "legacy.mtf")
    with open(legacy, "wb") as handle:
        handle.write(bytes(blob[:dir_offset]))
        handle.write(body)
        handle.write(_TRAILER.pack(dir_offset, len(body),
                                   TRAILER_MAGIC))
    with MtfReader(legacy) as reader:
        rows = reader.read("cat:s0")
        assert len(rows) == 100


def test_undamaged_file_round_trips_with_checksums(tmp_path):
    path = write_sample(tmp_path / "t.mtf")
    with MtfReader(path) as reader:
        assert all("crc" in b
                   for blocks in reader._blocks.values()
                   for b in blocks)
        assert len(reader.read("cat:s0")) == 100
