"""Tests for strict TDMA partition scheduling — temporal isolation by
construction (paper Section 4)."""

import pytest

from repro.errors import ConfigurationError
from repro.osek import EcuKernel, TaskSpec, TdmaScheduler, Window
from repro.osek.tdma import build_even_schedule
from repro.sim import Simulator
from repro.units import ms


def two_partition_kernel():
    sim = Simulator()
    sched = TdmaScheduler(
        [Window(0, ms(4), "P1"), Window(ms(4), ms(4), "P2")],
        major_frame=ms(10))
    kernel = EcuKernel(sim, sched, name="TT-ECU")
    return sim, kernel


def test_task_only_runs_inside_its_window():
    sim, kernel = two_partition_kernel()
    kernel.add_task(TaskSpec("A", wcet=ms(2), period=ms(10), partition="P2"))
    sim.run_until(ms(30))
    # P2's window opens at 4 ms in every frame.
    assert kernel.trace.times("task.start", "A") == [ms(4), ms(14), ms(24)]


def test_job_suspended_at_window_end_resumes_next_window():
    sim, kernel = two_partition_kernel()
    kernel.add_task(TaskSpec("BIG", wcet=ms(6), period=ms(20), deadline=ms(20),
                             partition="P1"))
    sim.run_until(ms(20))
    # Runs [0,4), preempted at window end, resumes [10,12).
    assert kernel.trace.times("task.preempt", "BIG") == [ms(4)]
    assert kernel.trace.times("task.resume", "BIG") == [ms(10)]
    assert kernel.response_times("BIG") == [ms(12)]


def test_strict_tdma_does_not_reclaim_idle_windows():
    sim, kernel = two_partition_kernel()
    # Only P2 has work; P1's window stays idle.
    kernel.add_task(TaskSpec("A", wcet=ms(1), period=ms(10), partition="P2"))
    sim.run_until(ms(30))
    starts = kernel.trace.times("task.start", "A")
    assert all(t % ms(10) == ms(4) for t in starts)


def test_isolation_other_partition_overload_has_no_effect():
    """The composability claim: adding an overloaded partition leaves the
    victim's timing bit-for-bit identical."""

    def run(with_aggressor):
        sim, kernel = two_partition_kernel()
        kernel.add_task(TaskSpec("VICTIM", wcet=ms(2), period=ms(10),
                                 partition="P2"))
        if with_aggressor:
            kernel.add_task(TaskSpec("AGGR", wcet=ms(9), period=ms(10),
                                     deadline=ms(100), partition="P1",
                                     max_activations=3))
        sim.run_until(ms(100))
        return kernel.response_times("VICTIM")

    assert run(False) == run(True)


def test_priorities_apply_within_partition():
    sim, kernel = two_partition_kernel()
    kernel.add_task(TaskSpec("LOW", wcet=ms(1), period=ms(10), priority=1,
                             partition="P1"))
    kernel.add_task(TaskSpec("HIGH", wcet=ms(1), period=ms(10), priority=2,
                             partition="P1"))
    sim.run_until(ms(9))
    assert kernel.trace.times("task.start", "HIGH") == [0]
    assert kernel.trace.times("task.start", "LOW") == [ms(1)]


def test_task_without_partition_never_runs_under_tdma():
    sim, kernel = two_partition_kernel()
    kernel.add_task(TaskSpec("ORPHAN", wcet=ms(1), period=ms(10),
                             deadline=ms(10)))
    sim.run_until(ms(30))
    assert kernel.tasks["ORPHAN"].jobs_completed == 0
    # The stuck first job misses its deadline; later activations are lost
    # against the activation limit.
    assert kernel.deadline_misses("ORPHAN") == 1
    assert kernel.tasks["ORPHAN"].activations_lost >= 1


def test_window_overlap_rejected():
    with pytest.raises(ConfigurationError):
        TdmaScheduler([Window(0, ms(5), "A"), Window(ms(4), ms(2), "B")],
                      major_frame=ms(10))


def test_window_beyond_major_frame_rejected():
    with pytest.raises(ConfigurationError):
        TdmaScheduler([Window(ms(8), ms(5), "A")], major_frame=ms(10))


def test_zero_length_window_rejected():
    with pytest.raises(ConfigurationError):
        TdmaScheduler([Window(0, 0, "A")], major_frame=ms(10))


def test_active_window_end_exclusive():
    sched = TdmaScheduler([Window(0, ms(4), "A")], major_frame=ms(10))
    assert sched.active_window(0).partition == "A"
    assert sched.active_window(ms(4) - 1).partition == "A"
    assert sched.active_window(ms(4)) is None
    assert sched.active_window(ms(10)).partition == "A"  # next frame


def test_next_window_start_wraps_major_frame():
    sched = TdmaScheduler([Window(ms(2), ms(3), "A")], major_frame=ms(10))
    assert sched.next_window_start(0) == ms(2)
    assert sched.next_window_start(ms(5)) == ms(12)
    assert sched.next_window_start(ms(12)) == ms(22)


def test_build_even_schedule_partitions_and_slack():
    sched = build_even_schedule(["A", "B"], major_frame=ms(10),
                                slack_fraction=0.2)
    assert sched.partitions() == {"A", "B"}
    occupied = sum(w.length for w in sched.windows)
    assert occupied == ms(8)


def test_build_even_schedule_validation():
    with pytest.raises(ConfigurationError):
        build_even_schedule([], ms(10))
    with pytest.raises(ConfigurationError):
        build_even_schedule(["A"], ms(10), slack_fraction=1.0)
