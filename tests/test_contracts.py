"""Tests for contracts: predicates, refinement, composition, vertical
assumptions, confidence, compatibility."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ContractError
from repro.contracts import (BUS, CPU, Contract, LATENCY, MEMORY, Predicate,
                             ResourceOffer, RichComponent, TIMING,
                             FUNCTIONAL, Var, VerticalAssumption,
                             check_compliance, check_contract_flow,
                             check_rich_connection, confidence_report,
                             environments, min_confidence,
                             product_confidence, required_per_assumption,
                             weakest_assumptions)
from repro.core import SwComponent


SPEED = Var("speed", range(0, 256, 16))
LOAD = Var("load", [0, 25, 50, 75, 100])
UNIVERSE = {"speed": SPEED, "load": LOAD}


def pred(fn, variables, description=""):
    return Predicate(fn, variables, description)


# ----------------------------------------------------------------------
# Predicates & environments
# ----------------------------------------------------------------------
def test_predicate_checks_environment_completeness():
    p = pred(lambda e: e["speed"] > 10, ["speed"], "fast")
    assert p({"speed": 50})
    with pytest.raises(ContractError):
        p({})


def test_predicate_combinators():
    fast = pred(lambda e: e["speed"] > 100, ["speed"], "fast")
    loaded = pred(lambda e: e["load"] > 50, ["load"], "loaded")
    env = {"speed": 150, "load": 25}
    assert fast.and_(loaded)(env) is False
    assert fast.or_(loaded)(env) is True
    assert fast.not_()(env) is False
    assert loaded.implies(fast)(env) is True  # vacuous
    assert fast.and_(loaded).variables == frozenset({"speed", "load"})


def test_environments_cartesian_product():
    envs = list(environments([Var("a", [0, 1]), Var("b", "xy")]))
    assert len(envs) == 4
    assert {"a": 1, "b": "x"} in envs


def test_empty_domain_rejected():
    with pytest.raises(ContractError):
        Var("v", [])


# ----------------------------------------------------------------------
# Contracts: refinement / dominance
# ----------------------------------------------------------------------
def abstract_contract():
    # Assume speed <= 224; guarantee load <= 75.
    return Contract(
        "abstract",
        pred(lambda e: e["speed"] <= 224, ["speed"], "speed<=224"),
        pred(lambda e: e["load"] <= 75, ["load"], "load<=75"))


def test_refinement_weaker_assumption_stronger_guarantee():
    concrete = Contract(
        "concrete",
        Predicate.true(),  # weaker assumption (accepts anything)
        pred(lambda e: e["load"] <= 50, ["load"], "load<=50"))  # stronger
    assert concrete.refines(abstract_contract(), UNIVERSE)
    assert concrete.counterexample(abstract_contract(), UNIVERSE) is None


def test_refinement_fails_on_stronger_assumption():
    concrete = Contract(
        "narrow",
        pred(lambda e: e["speed"] <= 100, ["speed"], "speed<=100"),
        pred(lambda e: e["load"] <= 50, ["load"], "load<=50"))
    assert not concrete.refines(abstract_contract(), UNIVERSE)
    cex = concrete.counterexample(abstract_contract(), UNIVERSE)
    assert cex["reason"] == "assumption not weakened"
    assert 100 < cex["speed"] <= 224


def test_refinement_fails_on_weaker_guarantee():
    concrete = Contract(
        "lax",
        Predicate.true(),
        pred(lambda e: e["load"] <= 100, ["load"], "load<=100"))
    assert not concrete.refines(abstract_contract(), UNIVERSE)
    cex = concrete.counterexample(abstract_contract(), UNIVERSE)
    assert cex["reason"] == "guarantee not strengthened"


def test_refinement_is_reflexive():
    contract = abstract_contract()
    assert contract.refines(contract, UNIVERSE)


def test_missing_domain_raises():
    contract = Contract("c", pred(lambda e: e["ghost"] == 1, ["ghost"]),
                        Predicate.true())
    with pytest.raises(ContractError):
        contract.refines(contract, UNIVERSE)


def test_consistency_check():
    consistent = Contract("ok", Predicate.true(),
                          pred(lambda e: e["load"] <= 50, ["load"]))
    assert consistent.is_consistent(UNIVERSE)
    inconsistent = Contract("bad", Predicate.true(), Predicate.false())
    assert not inconsistent.is_consistent(UNIVERSE)


def test_composition_guarantee_is_conjunction():
    c1 = Contract("c1", Predicate.true(),
                  pred(lambda e: e["load"] <= 75, ["load"], "l<=75"))
    c2 = Contract("c2", Predicate.true(),
                  pred(lambda e: e["speed"] <= 224, ["speed"], "s<=224"))
    composed = c1.compose(c2)
    good = {"load": 50, "speed": 100}
    bad = {"load": 100, "speed": 100}
    assert composed.guarantee(good)
    assert not composed.guarantee(bad)


def test_composition_discharges_assumption():
    """c2 assumes load<=75; c1 guarantees it. The composite assumption
    must hold in environments where c1 keeps its promise."""
    c1 = Contract("c1", Predicate.true(),
                  pred(lambda e: e["load"] <= 75, ["load"], "l<=75"))
    c2 = Contract("c2",
                  pred(lambda e: e["load"] <= 75, ["load"], "l<=75"),
                  pred(lambda e: e["speed"] <= 224, ["speed"], "s<=224"))
    composed = c1.compose(c2)
    # load=100 violates c1's guarantee -> assumption relaxed there.
    assert composed.assumption({"load": 100, "speed": 250})
    assert composed.assumption({"load": 50, "speed": 100})


# ----------------------------------------------------------------------
# Flow compatibility
# ----------------------------------------------------------------------
def test_flow_compatible_when_guarantee_implies_assumption():
    source = Contract("src", Predicate.true(),
                      pred(lambda e: e["speed"] <= 128, ["speed"], "s<=128"))
    target = Contract("tgt",
                      pred(lambda e: e["speed"] <= 224, ["speed"],
                           "s<=224"),
                      Predicate.true())
    result = check_contract_flow(source, target, UNIVERSE)
    assert result.ok
    assert result.checked_environments == len(SPEED.domain)


def test_flow_incompatible_returns_counterexample():
    source = Contract("src", Predicate.true(),
                      pred(lambda e: e["speed"] <= 240, ["speed"], "s<=240"))
    target = Contract("tgt",
                      pred(lambda e: e["speed"] <= 128, ["speed"],
                           "s<=128"),
                      Predicate.true())
    result = check_contract_flow(source, target, UNIVERSE)
    assert not result.ok
    assert 128 < result.counterexample["speed"] <= 240


# ----------------------------------------------------------------------
# Rich components
# ----------------------------------------------------------------------
def rich(name):
    component = SwComponent(name)
    return RichComponent(component)


def test_rich_component_viewpoints_and_claims():
    r = rich("Brakes")
    r.add_contract(TIMING, abstract_contract())
    r.claim(CPU, 0.2, confidence=0.95, description="control loop")
    assert r.contract_for(TIMING) is not None
    assert r.contract_for(FUNCTIONAL) is None
    assert r.vertical[0].kind == CPU
    with pytest.raises(ContractError):
        r.add_contract(TIMING, abstract_contract())
    with pytest.raises(ContractError):
        r.add_contract("bogus", abstract_contract())


def test_rich_refinement_across_viewpoints():
    abstract = rich("spec")
    abstract.add_contract(TIMING, abstract_contract())
    concrete = rich("impl")
    concrete.add_contract(TIMING, Contract(
        "impl-t", Predicate.true(),
        Predicate(lambda e: e["load"] <= 50, ["load"], "load<=50")))
    assert concrete.refines(abstract, UNIVERSE)
    # Missing viewpoint on the concrete side fails dominance.
    abstract.add_contract(FUNCTIONAL, Contract(
        "f", Predicate.true(), Predicate.true()))
    assert not concrete.refines(abstract, UNIVERSE)


def test_check_rich_connection_shared_viewpoints():
    source = rich("S")
    source.add_contract(TIMING, Contract(
        "s", Predicate.true(),
        Predicate(lambda e: e["speed"] <= 128, ["speed"], "s<=128")))
    target = rich("T")
    target.add_contract(TIMING, Contract(
        "t", Predicate(lambda e: e["speed"] <= 224, ["speed"], "s<=224"),
        Predicate.true()))
    results = check_rich_connection(source, target, UNIVERSE)
    assert len(results) == 1
    assert results[0].ok and results[0].viewpoint == TIMING


# ----------------------------------------------------------------------
# Vertical assumptions & compliance
# ----------------------------------------------------------------------
def test_compliance_additive_resources():
    assumptions = [
        VerticalAssumption("r1", CPU, 0.4, 0.9),
        VerticalAssumption("r2", CPU, 0.5, 0.8),
        VerticalAssumption("r3", MEMORY, 1024, 1.0),
    ]
    offers = [ResourceOffer("ECU1", CPU, 1.0),
              ResourceOffer("ECU1", MEMORY, 4096)]
    allocation = {"r1": "ECU1", "r2": "ECU1", "r3": "ECU1"}
    report = check_compliance(assumptions, offers, allocation)
    assert report.ok
    assert report.loads[("ECU1", CPU)] == (pytest.approx(0.9), 1.0)
    assert report.confidence == pytest.approx(0.9 * 0.8)


def test_compliance_detects_overcommit():
    assumptions = [VerticalAssumption("r1", CPU, 0.7),
                   VerticalAssumption("r2", CPU, 0.6)]
    offers = [ResourceOffer("ECU1", CPU, 1.0)]
    report = check_compliance(assumptions, offers,
                              {"r1": "ECU1", "r2": "ECU1"})
    assert not report.ok
    assert any("over-committed" in v for v in report.violations)


def test_compliance_latency_claims_checked_against_observations():
    assumptions = [VerticalAssumption("chain", LATENCY, 5_000_000)]
    report = check_compliance(assumptions, [], {},
                              observed_latencies={"chain": 4_000_000})
    assert report.ok
    report = check_compliance(assumptions, [], {},
                              observed_latencies={"chain": 6_000_000})
    assert not report.ok
    report = check_compliance(assumptions, [], {}, observed_latencies={})
    assert not report.ok  # unverified claim is a violation


def test_compliance_unallocated_and_missing_offer():
    assumptions = [VerticalAssumption("r1", CPU, 0.1),
                   VerticalAssumption("r2", BUS, 10_000)]
    offers = [ResourceOffer("ECU1", CPU, 1.0)]
    report = check_compliance(assumptions, offers, {"r2": "CAN1"})
    assert not report.ok
    assert any("not allocated" in v for v in report.violations)
    assert any("offers no bus" in v for v in report.violations)


def test_vertical_validation():
    with pytest.raises(ContractError):
        VerticalAssumption("x", CPU, -1)
    with pytest.raises(ContractError):
        VerticalAssumption("x", CPU, 0.1, confidence=0.0)
    with pytest.raises(ContractError):
        ResourceOffer("p", CPU, 0)


def test_compliance_dependability_and_cost_budgets():
    """Section 3's extra-functional dimensions: failure-rate budgets
    (dependability) and cost/weight are additive claims like CPU."""
    from repro.contracts import COST, FAILURE_RATE, WEIGHT
    assumptions = [
        VerticalAssumption("braking_swc", FAILURE_RATE, 4e-9, 0.95),
        VerticalAssumption("steering_swc", FAILURE_RATE, 5e-9, 0.95),
        VerticalAssumption("braking_swc_cost", COST, 12.0),
        VerticalAssumption("braking_swc_weight", WEIGHT, 300.0),
    ]
    offers = [ResourceOffer("safety_goal", FAILURE_RATE, 1e-8),
              ResourceOffer("bom", COST, 20.0),
              ResourceOffer("harness", WEIGHT, 500.0)]
    allocation = {"braking_swc": "safety_goal",
                  "steering_swc": "safety_goal",
                  "braking_swc_cost": "bom",
                  "braking_swc_weight": "harness"}
    report = check_compliance(assumptions, offers, allocation)
    assert report.ok
    assert report.loads[("safety_goal", FAILURE_RATE)][0] == \
        pytest.approx(9e-9)
    # Exceeding the failure-rate budget is flagged like any resource.
    assumptions.append(
        VerticalAssumption("adas_swc", FAILURE_RATE, 2e-9))
    allocation["adas_swc"] = "safety_goal"
    assert not check_compliance(assumptions, offers, allocation).ok


def test_weakest_assumptions_ordering():
    assumptions = [VerticalAssumption("a", CPU, 0.1, 0.99),
                   VerticalAssumption("b", CPU, 0.1, 0.5),
                   VerticalAssumption("c", CPU, 0.1, 0.7)]
    weak = weakest_assumptions(assumptions, threshold=0.9)
    assert [a.owner for a in weak] == ["b", "c"]


# ----------------------------------------------------------------------
# Confidence aggregation
# ----------------------------------------------------------------------
def test_confidence_rules():
    assumptions = [VerticalAssumption("a", CPU, 0.1, 0.9),
                   VerticalAssumption("b", CPU, 0.1, 0.8)]
    assert product_confidence(assumptions) == pytest.approx(0.72)
    assert min_confidence(assumptions) == pytest.approx(0.8)
    assert min_confidence([]) == 1.0


def test_required_per_assumption_inverts_product():
    per = required_per_assumption(0.9, 50)
    assert per ** 50 == pytest.approx(0.9)
    with pytest.raises(ContractError):
        required_per_assumption(0.0, 5)
    with pytest.raises(ContractError):
        required_per_assumption(0.9, 0)


def test_confidence_report_contents():
    assumptions = [VerticalAssumption(f"a{i}", CPU, 0.01, 0.99)
                   for i in range(10)]
    report = confidence_report(assumptions, target=0.95)
    assert report["count"] == 10
    assert report["product"] == pytest.approx(0.99 ** 10)
    assert report["meets_target"] == (0.99 ** 10 >= 0.95)
    assert len(report["weakest"]) == 5


@given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1,
                max_size=20))
def test_product_never_exceeds_min(confidences):
    assumptions = [VerticalAssumption(f"a{i}", CPU, 0.0, c)
                   for i, c in enumerate(confidences)]
    assert product_confidence(assumptions) <= min_confidence(assumptions) \
        + 1e-12
