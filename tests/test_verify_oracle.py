"""Tests for the differential analysis-vs-simulation oracle."""

import pytest

from repro.verify import (analyze_bounds, format_report, generate,
                          verify_many, verify_system)
from repro.verify.oracle import LAYERS


def test_analyze_bounds_covers_every_layer_without_simulating():
    bounds, declined = analyze_bounds(generate(7))
    layers = {layer for layer, __, __ in bounds}
    assert layers == set(LAYERS)
    assert all(bound >= 0 for __, __, bound in bounds)
    # Whatever declines is reported, never silently dropped.
    assert all(":" in entry for entry in declined)


def test_single_system_verdict_is_sound_and_fully_observed():
    verdict = verify_system(generate(7))
    assert verdict.soundness_violations == []
    assert verdict.invariant_violations == []
    assert verdict.records > 0
    by_layer = {}
    for check in verdict.checks:
        by_layer.setdefault(check.layer, []).append(check)
    # Every layer produced at least one actual measurement.
    for layer in LAYERS:
        assert any(c.observed is not None for c in by_layer[layer])
    # Tightness is >= 1 exactly when the bound holds.
    for check in verdict.checks:
        if check.observed:
            assert (check.tightness >= 1.0) == check.sound


def test_smoke_batch_passes_and_is_deterministic():
    first = verify_many(7, 2)
    second = verify_many(7, 2)
    assert first.passed and second.passed
    assert first.digest() == second.digest()
    report = format_report(first)
    assert "verdict: PASS" in report
    assert first.digest() in report


def test_layer_summary_counts_add_up():
    report = verify_many(3, 2)
    summary = report.layer_summary()
    total = sum(row["checks"] for row in summary.values())
    assert total == sum(len(v.checks) for v in report.verdicts)
    for row in summary.values():
        assert row["violations"] == 0
        if row["tightness_min"] is not None:
            assert row["tightness_min"] >= 1.0
            assert row["tightness_min"] <= row["tightness_median"] \
                <= row["tightness_max"]


def test_ci_smoke_batch_of_five_systems_is_clean():
    report = verify_many(7, 5)
    assert report.soundness_violations == 0
    assert report.invariant_violations == 0
    assert report.passed


@pytest.mark.slow
def test_acceptance_batch_of_25_systems_clean_and_deterministic():
    first = verify_many(7, 25)
    assert first.soundness_violations == 0
    assert first.invariant_violations == 0
    assert first.passed
    second = verify_many(7, 25)
    assert first.digest() == second.digest()


@pytest.mark.slow
def test_medium_systems_also_verify_cleanly():
    report = verify_many(11, 5, "medium")
    assert report.passed


def test_parallel_verification_matches_serial_digest():
    serial = verify_many(7, 4)
    parallel = verify_many(7, 4, jobs=2)
    assert serial.passed and parallel.passed
    assert serial.digest() == parallel.digest()
    assert format_report(serial) == format_report(parallel)


def test_report_digest_ignores_verdict_emission_order():
    # Satellite regression: the digest is computed from the *sorted*
    # per-system verdicts, so it survives any executor's completion
    # order.
    report = verify_many(7, 3)
    report.verdicts.reverse()
    assert report.digest() == verify_many(7, 3).digest()


def test_interrupted_verification_resumes_to_identical_digest(tmp_path):
    from repro.errors import ExecutionInterrupted

    path = tmp_path / "verify.jsonl"
    uninterrupted = verify_many(7, 4)
    with pytest.raises(ExecutionInterrupted):
        verify_many(7, 4, checkpoint=path, interrupt_after=2)
    resumed = verify_many(7, 4, checkpoint=path, resume=True)
    assert resumed.digest() == uninterrupted.digest()
    assert resumed.passed


# ----------------------------------------------------------------------
# Zero-observation robustness (regression: fuzzing empty-chain and
# shrunk degenerate systems used to leak None/ZeroDivisionError into
# tightness and crash the builder on missing subsystems)
# ----------------------------------------------------------------------
def test_tightness_is_none_for_unobserved_and_zero_observations():
    from repro.verify.oracle import Check

    unobserved = Check("e2e", "CHAIN", bound=1000, observed=None, samples=0)
    assert unobserved.tightness is None
    assert unobserved.sound  # vacuously
    zero = Check("e2e", "CHAIN", bound=1000, observed=0, samples=3)
    assert zero.tightness is None  # ratio undefined, not a crash
    assert zero.sound
    assert zero.to_dict()["tightness"] is None


def test_layer_summary_handles_zero_observation_layers():
    import json

    report = verify_many(7, 2)
    # blank out one whole layer's observations, as an empty-chain
    # mutant would produce
    for verdict in report.verdicts:
        for check in verdict.checks:
            if check.layer == "e2e":
                check.observed = None
                check.samples = 0
    summary = report.layer_summary()
    row = summary["e2e"]
    assert row["checks"] >= 1
    assert row["measured"] == 0
    assert row["tightness_min"] is None
    assert row["tightness_median"] is None
    # the report still renders and digests without leaking None
    # arithmetic anywhere
    assert "e2e" in format_report(report)
    json.dumps(report.to_dict())
    assert len(report.digest()) == 64


@pytest.mark.parametrize("drop", ["chain", "can", "flexray", "tdma"])
def test_verify_system_survives_missing_subsystems(drop):
    system = generate(9, "small")
    if drop == "can":
        system.chain = None  # a chain cannot outlive its bus
    setattr(system, drop, None)
    verdict = verify_system(system)
    assert verdict.soundness_violations == []
    assert verdict.invariant_violations == []
    layers = {c.layer for c in verdict.checks}
    dropped_layers = {"chain": {"e2e"}, "can": {"can", "e2e"},
                      "flexray": {"flexray_static", "flexray_dynamic"},
                      "tdma": {"tdma"}}[drop]
    assert layers.isdisjoint(dropped_layers)


def test_verify_system_survives_minimal_degenerate_system():
    """The shrinker's end state: nothing but a TDMA plan."""
    system = generate(9, "small")
    system.chain = None
    system.can = None
    system.flexray = None
    system.tasksets = {}
    system.critical_sections = []
    system.resources = {}
    verdict = verify_system(system)
    assert verdict.checks  # the tdma layer still gets verified
    assert all(c.layer == "tdma" for c in verdict.checks)
    assert verdict.soundness_violations == []
