"""Tests for the differential analysis-vs-simulation oracle."""

import pytest

from repro.verify import (analyze_bounds, format_report, generate,
                          verify_many, verify_system)
from repro.verify.oracle import LAYERS


def test_analyze_bounds_covers_every_layer_without_simulating():
    bounds, declined = analyze_bounds(generate(7))
    layers = {layer for layer, __, __ in bounds}
    assert layers == set(LAYERS)
    assert all(bound >= 0 for __, __, bound in bounds)
    # Whatever declines is reported, never silently dropped.
    assert all(":" in entry for entry in declined)


def test_single_system_verdict_is_sound_and_fully_observed():
    verdict = verify_system(generate(7))
    assert verdict.soundness_violations == []
    assert verdict.invariant_violations == []
    assert verdict.records > 0
    by_layer = {}
    for check in verdict.checks:
        by_layer.setdefault(check.layer, []).append(check)
    # Every layer produced at least one actual measurement.
    for layer in LAYERS:
        assert any(c.observed is not None for c in by_layer[layer])
    # Tightness is >= 1 exactly when the bound holds.
    for check in verdict.checks:
        if check.observed:
            assert (check.tightness >= 1.0) == check.sound


def test_smoke_batch_passes_and_is_deterministic():
    first = verify_many(7, 2)
    second = verify_many(7, 2)
    assert first.passed and second.passed
    assert first.digest() == second.digest()
    report = format_report(first)
    assert "verdict: PASS" in report
    assert first.digest() in report


def test_layer_summary_counts_add_up():
    report = verify_many(3, 2)
    summary = report.layer_summary()
    total = sum(row["checks"] for row in summary.values())
    assert total == sum(len(v.checks) for v in report.verdicts)
    for row in summary.values():
        assert row["violations"] == 0
        if row["tightness_min"] is not None:
            assert row["tightness_min"] >= 1.0
            assert row["tightness_min"] <= row["tightness_median"] \
                <= row["tightness_max"]


def test_ci_smoke_batch_of_five_systems_is_clean():
    report = verify_many(7, 5)
    assert report.soundness_violations == 0
    assert report.invariant_violations == 0
    assert report.passed


@pytest.mark.slow
def test_acceptance_batch_of_25_systems_clean_and_deterministic():
    first = verify_many(7, 25)
    assert first.soundness_violations == 0
    assert first.invariant_violations == 0
    assert first.passed
    second = verify_many(7, 25)
    assert first.digest() == second.digest()


@pytest.mark.slow
def test_medium_systems_also_verify_cleanly():
    report = verify_many(11, 5, "medium")
    assert report.passed


def test_parallel_verification_matches_serial_digest():
    serial = verify_many(7, 4)
    parallel = verify_many(7, 4, jobs=2)
    assert serial.passed and parallel.passed
    assert serial.digest() == parallel.digest()
    assert format_report(serial) == format_report(parallel)


def test_report_digest_ignores_verdict_emission_order():
    # Satellite regression: the digest is computed from the *sorted*
    # per-system verdicts, so it survives any executor's completion
    # order.
    report = verify_many(7, 3)
    report.verdicts.reverse()
    assert report.digest() == verify_many(7, 3).digest()


def test_interrupted_verification_resumes_to_identical_digest(tmp_path):
    from repro.errors import ExecutionInterrupted

    path = tmp_path / "verify.jsonl"
    uninterrupted = verify_many(7, 4)
    with pytest.raises(ExecutionInterrupted):
        verify_many(7, 4, checkpoint=path, interrupt_after=2)
    resumed = verify_many(7, 4, checkpoint=path, resume=True)
    assert resumed.digest() == uninterrupted.digest()
    assert resumed.passed
