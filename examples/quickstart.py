#!/usr/bin/env python
"""Quickstart: one component application, three execution platforms.

Builds a minimal cruise-control-flavoured application — a wheel-speed
sensor, a controller, and an actuator — then runs the *same component
code*:

1. on the Virtual Functional Bus (deployment-independent reference run);
2. deployed on two ECUs connected by CAN;
3. deployed on two ECUs connected by FlexRay;

and finishes with the static timing analysis for the CAN deployment.
This is the paper's core workflow: design against the VFB, deploy through
the RTE, verify timing analytically.

Run:  python examples/quickstart.py
"""

from repro.analysis import Chain, EVENT, SAMPLED, Stage, can_rta, rta
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16, VfbSimulation)
from repro.network.can import CanFrameSpec
from repro.sim import Simulator
from repro.units import fmt_time, ms, us

SPEED_IF = SenderReceiverInterface("speed_if", {"kmh": UINT16})
TORQUE_IF = SenderReceiverInterface("torque_if", {"nm": UINT16})


def build_components():
    """Three SWC types.  Their behaviour code touches only ``ctx`` —
    the portability contract that lets it run on any platform."""
    sensor = SwComponent("WheelSpeedSensor")
    sensor.provide("speed", SPEED_IF)

    def sample(ctx):
        ctx.state.setdefault("kmh", 50)
        ctx.state["kmh"] = (ctx.state["kmh"] + 1) % 200
        ctx.write("speed", "kmh", ctx.state["kmh"])

    sensor.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(200))

    controller = SwComponent("CruiseController")
    controller.require("speed", SPEED_IF)
    controller.provide("torque", TORQUE_IF)

    def control(ctx):
        target = 120
        error = target - ctx.read("speed", "kmh")
        ctx.write("torque", "nm", max(0, min(500, 250 + error)))

    controller.runnable("control", DataReceivedEvent("speed", "kmh"),
                        control, wcet=us(500))

    actuator = SwComponent("TorqueActuator")
    actuator.require("torque", TORQUE_IF)

    def apply(ctx):
        ctx.state["applied"] = ctx.read("torque", "nm")

    actuator.runnable("apply", DataReceivedEvent("torque", "nm"), apply,
                      wcet=us(300))
    return sensor, controller, actuator


def build_composition():
    sensor, controller, actuator = build_components()
    app = Composition("CruiseApp")
    app.add(sensor.instantiate("sensor"))
    app.add(controller.instantiate("ctrl"))
    app.add(actuator.instantiate("act"))
    app.connect("sensor", "speed", "ctrl", "speed")
    app.connect("ctrl", "torque", "act", "torque")
    return app


def run_on_vfb():
    print("=== 1. Virtual Functional Bus (no platform) ===")
    sim = Simulator()
    vfb = VfbSimulation(sim, build_composition())
    vfb.start()
    sim.run_until(ms(100))
    print(f"  runnable executions : {vfb.runnable_executions}")
    print(f"  final torque value  : {vfb.value_of('act', 'torque', 'nm')}")
    print()


def deploy(bus_kind):
    system = SystemModel(f"cruise-{bus_kind}")
    system.add_ecu("SensorECU")
    system.add_ecu("ControlECU")
    system.set_root(build_composition())
    system.map("sensor", "SensorECU")
    system.map("ctrl", "ControlECU")
    system.map("act", "ControlECU")
    system.configure_bus(bus_kind)
    return system


def run_deployment(bus_kind):
    print(f"=== 2. Deployed on 2 ECUs over {bus_kind.upper()} ===")
    system = deploy(bus_kind)
    issues = system.validate()
    print(f"  configuration checks: "
          f"{'PASS' if not issues else issues}")
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(ms(100))
    responses = runtime.response_times("ctrl.control")
    print(f"  torque applied      : "
          f"{runtime.value_of('act', 'torque', 'nm')}")
    print(f"  control activations : {len(responses)}")
    if bus_kind == "can":
        lat = runtime.bus.latencies("sensor.speed")
        print(f"  bus latency (max)   : {fmt_time(max(lat))}")
    print(f"  deadline misses     : {runtime.deadline_misses()}")
    print()
    return runtime


def run_timing_analysis():
    print("=== 3. Static timing analysis (CAN deployment) ===")
    # The tasks as the RTE would generate them.
    from repro.osek import TaskSpec
    sensor_task = TaskSpec("sensor.sample", wcet=us(200), period=ms(10),
                           priority=1)
    control_task = TaskSpec("ctrl.control", wcet=us(500), period=ms(10),
                            priority=1000)
    frame = CanFrameSpec("sensor.speed", 0x100, dlc=3, period=ms(10))
    task_result = rta.analyze([sensor_task])
    frame_result = can_rta.analyze([frame], 500_000)
    chain = Chain("speed-to-torque", [
        Stage("sensor.sample", task_result.wcrt["sensor.sample"],
              semantics=SAMPLED, period=ms(10)),
        Stage("CAN frame", frame_result.wcrt["sensor.speed"]),
        Stage("ctrl.control", us(500)),
        Stage("act.apply", us(300)),
    ])
    print(f"  sensor task WCRT    : "
          f"{fmt_time(task_result.wcrt['sensor.sample'])}")
    print(f"  CAN frame WCRT      : "
          f"{fmt_time(frame_result.wcrt['sensor.speed'])}")
    print(f"  end-to-end bound    : {fmt_time(chain.worst_case_latency())}")
    print(f"  dominant stage      : {chain.dominant_stage()}")
    budget = ms(15)
    verdict = "MET" if chain.check_budget(budget) else "VIOLATED"
    print(f"  15 ms budget        : {verdict}")


def run_timing_report():
    print("\n=== 4. Prior-to-implementation timing report ===")
    from repro.analysis import timing_report
    report = timing_report(deploy("can"))
    print(f"  analysable          : {report.analysable}")
    print(f"  schedulable         : {report.schedulable}")
    for chain, bound in report.chain_latency.items():
        print(f"  chain bound         : {chain}")
        print(f"                        <= {fmt_time(bound)}")
    for issue in report.issues:
        print(f"  note                : {issue}")


def main():
    run_on_vfb()
    run_deployment("can")
    run_deployment("flexray")
    run_timing_analysis()
    run_timing_report()


if __name__ == "__main__":
    main()
