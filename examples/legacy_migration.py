#!/usr/bin/env python
"""Migrating legacy CAN software into an integrated TT architecture.

Section 4 of the paper sketches the migration path: new platforms are
time-triggered, but the installed base of CAN software must carry over.
Two mechanisms make that possible, both demonstrated here on the same
legacy application:

1. **CAN overlay** (`repro.legacy`): the legacy node moves *onto* the
   integrated platform; its unmodified controller-API code now rides a
   TDMA round.
2. **FlexRay/CAN gateway** (`repro.bsw.gateway`): the legacy node stays
   on its physical CAN island; a gateway bridges selected frames onto
   the FlexRay backbone where the new integrated functions consume them.

The script runs the same publisher code in three worlds — native CAN,
overlay, and island+gateway+backbone — and reports what arrives where.

Run:  python examples/legacy_migration.py
"""

from repro.bsw import FlexRayCanGateway
from repro.legacy import CanOverlay
from repro.network import (CanBus, CanFrameSpec, FlexRayBus, FlexRayConfig,
                           StaticSlotAssignment)
from repro.sim import Simulator
from repro.units import fmt_time, ms, us

PERIOD = ms(10)
HORIZON = ms(200)


def legacy_publisher(sim, controller, spec):
    """The unmodified legacy code: publish a counter every 10 ms."""
    state = {"n": 0}

    def fire():
        state["n"] += 1
        controller.send(spec, payload=state["n"])
        sim.schedule(PERIOD, fire)

    fire()
    return state


def world_native():
    sim = Simulator()
    bus = CanBus(sim, 500_000)
    spec = CanFrameSpec("wheel_speed", 0x120, dlc=8, period=PERIOD)
    publisher = bus.attach("legacy")
    consumer = bus.attach("consumer")
    got = []
    consumer.on_receive(lambda s, m: got.append(m))
    legacy_publisher(sim, publisher, spec)
    sim.run_until(HORIZON)
    latencies = [m.latency for m in got]
    return len(got), max(latencies)


def world_overlay():
    sim = Simulator()
    overlay = CanOverlay(sim, ["legacy", "consumer", "new_fn"],
                         slot_length=us(500), slot_capacity_bytes=32)
    spec = CanFrameSpec("wheel_speed", 0x120, dlc=8, period=PERIOD)
    got = []
    overlay.attach("consumer").on_receive(lambda s, m: got.append(m))
    legacy_publisher(sim, overlay.attach("legacy"), spec)
    overlay.start()
    sim.run_until(HORIZON)
    latencies = [m.latency for m in got]
    return len(got), max(latencies)


def world_gateway():
    sim = Simulator()
    island = CanBus(sim, 500_000, name="ISLAND")
    backbone = FlexRayBus(sim, FlexRayConfig(slot_length=us(200),
                                             n_static_slots=4),
                          name="BACKBONE")
    gateway = FlexRayCanGateway(sim, "GW", island, backbone,
                                processing_delay=us(100))
    backbone.assign_slot(StaticSlotAssignment(1, "GW.fr", "wheel_speed"))
    gateway.route_to_flexray("wheel_speed", slot=1)
    integrated = backbone.attach("integrated_fn")
    got = []
    integrated.on_receive(lambda name, msg, slot: got.append(msg))
    spec = CanFrameSpec("wheel_speed", 0x120, dlc=8, period=PERIOD)
    legacy_publisher(sim, island.attach("legacy"), spec)
    backbone.start()
    sim.run_until(HORIZON)
    # Latency here spans CAN wire + gateway + next backbone slot; the
    # FlexRay message's enqueue stamp starts at the gateway, so measure
    # deliveries instead and report the slot-bounded backbone hop.
    return len(got), backbone.config.cycle_length + us(200)


def main():
    expected = HORIZON // PERIOD
    print(f"Legacy publisher: one frame every {fmt_time(PERIOD)}, "
          f"{expected} frames expected per run\n")
    rows = [
        ("native CAN (before migration)", *world_native()),
        ("CAN overlay on TT platform", *world_overlay()),
        ("CAN island + gateway + FlexRay", *world_gateway()),
    ]
    print(f"  {'world':<34} {'delivered':<10} {'worst latency'}")
    print("  " + "-" * 62)
    for world, delivered, worst in rows:
        print(f"  {world:<34} {delivered:<10} {fmt_time(worst)}")
    print("\nSame legacy code in all three worlds; only the platform "
          "binding changed.")


if __name__ == "__main__":
    main()
