#!/usr/bin/env python
"""Fault campaign: end-to-end protection, recovery, and the sweep runner.

A walkthrough of the robustness stack in three acts:

1. an E2E-protected speed link over CAN catches an injected corruption
   burst — every corrupted frame is blocked at the receiver, the
   application never sees a bad value;
2. the recovery orchestrator turns the confirmed error into reactions:
   substitute the last good value, drop to limp mode, and heal back to
   nominal (with hysteresis) once the fault clears;
3. the campaign runner sweeps all five fault kinds of the paper's fault
   hypothesis over the same scenario and prints the detection /
   containment / recovery scorecard.

Run:  python examples/fault_campaign.py
"""

from repro.analysis import format_robustness, robustness_report
from repro.faults import (CORRUPTION, ComSignalAdapter, Fault,
                          FaultInjector, ReferenceWorld, reference_cells,
                          run_campaign)
from repro.units import fmt_time, ms


def act_1_protection():
    print("=" * 64)
    print("Act 1: E2E protection blocks a corruption burst")
    print("=" * 64)
    world = ReferenceWorld()
    world.injector.inject(
        ComSignalAdapter(world.rx, "speed"),
        Fault(CORRUPTION, "speed", start=ms(50), duration=ms(100),
              params={"value": 0xFFFF}))
    world.sim.run_until(ms(300))
    metrics = world.metrics()
    corrupted = metrics["undetected_corrupted"]
    print(f"  deliveries to the application : {metrics['app_deliveries']}")
    print(f"  corrupted values delivered    : {corrupted}")
    print(f"  E2E receiver verdict counts   : {world.receiver.counts}")
    assert corrupted == 0, "a corrupted frame escaped the E2E check"
    return world


def act_2_recovery(world):
    print()
    print("=" * 64)
    print("Act 2: the recovery orchestrator reacted and healed")
    print("=" * 64)
    for record in world.trace.records("recovery.escalate"):
        print(f"  {fmt_time(record.time):>9}  escalate   "
              f"{record.subject} -> {record.data['action']}")
    for record in world.trace.records("recovery.deescalate"):
        print(f"  {fmt_time(record.time):>9}  de-escalate "
              f"{record.subject} <- {record.data['action']}")
    snapshot = world.errors.snapshot()["speed_e2e"]
    print(f"  DTC 0x{snapshot['dtc']:04X}: confirmed={snapshot['confirmed']} "
          f"occurrences={snapshot['occurrences']}")
    print(f"  mode history: "
          + " -> ".join(mode for _, mode in world.modes.history))
    assert not snapshot["confirmed"], "error did not heal"
    assert world.modes.current == "nominal", "mode did not recover"
    assert world.rx.substituted_signals() == [], "substitution still held"


def act_3_campaign():
    print()
    print("=" * 64)
    print("Act 3: the five-kind fault campaign scorecard")
    print("=" * 64)
    report = run_campaign(ReferenceWorld, reference_cells(),
                          horizon=ms(300))
    for result in report.results:
        print(f"  {result.cell.kind:<15} detected via "
              f"{result.detection_source:<19} in "
              f"{fmt_time(result.detection_latency):>8}  "
              f"contained={str(result.contained):<5} "
              f"recovered={result.recovered}")
    print(format_robustness(robustness_report(report)))
    assert report.detection_rate == 1.0
    assert report.recovery_rate == 1.0
    return report


def main():
    world = act_1_protection()
    act_2_recovery(world)
    act_3_campaign()
    print()
    print("All three acts passed: faults detected, contained where the")
    print("architecture allows, and the system healed back to nominal.")


if __name__ == "__main__":
    main()
