#!/usr/bin/env python
"""MPSoC integration: the four NoC composability requirements.

Section 4 requires the NoC of an integrated MPSoC to provide:

1. precise interface specification,
2. stability of prior services,
3. non-interfering interactions,
4. error containment.

This script hosts four DAS components on a 2x2 mesh and demonstrates each
requirement on the TDMA NoC, contrasting requirement 3 with a shared-bus
interconnect where interference is plainly visible.

Run:  python examples/mpsoc_integration.py
"""

from repro.errors import ProtocolError
from repro.noc import MeshTopology, Mpsoc, SharedBusInterconnect, TdmaNoc
from repro.sim import Simulator
from repro.units import fmt_time, ms, us

CORES = ["engine", "brake", "body", "telematics"]


def build_tt(sim):
    noc = TdmaNoc(sim, MeshTopology(2, 2), slot_length=us(1),
                  hop_latency=100)
    mpsoc = Mpsoc(sim, noc, core_names=CORES)
    mpsoc.start()
    return noc, mpsoc


def requirement_1_interface_specification():
    print("=== Req 1: precise interface specification ===")
    sim = Simulator()
    noc, mpsoc = build_tt(sim)
    for description, call in [
        ("self-send", lambda: noc.send(0, 0)),
        ("oversized message", lambda: noc.send(0, 1, size_bytes=99999)),
    ]:
        try:
            call()
        except ProtocolError as exc:
            print(f"  rejected {description}: {exc}")
    print()


def requirement_2_stability_of_prior_services():
    print("=== Req 2: stability of prior services ===")

    def run(with_new_core):
        sim = Simulator()
        noc, mpsoc = build_tt(sim)
        mpsoc.core("brake").send_periodic(mpsoc.core("engine"),
                                          period=us(20), size_bytes=64)
        if with_new_core:
            mpsoc.core("telematics").send_periodic(
                mpsoc.core("body"), period=us(4), size_bytes=256)
        sim.run_until(ms(2))
        return noc.trace.times("noc.rx_tt", "core1->core0")

    before = run(False)
    after = run(True)
    print(f"  brake->engine deliveries before integration: {len(before)}")
    print(f"  identical after integrating telematics     : "
          f"{before == after}")
    print()


def requirement_3_non_interference():
    print("=== Req 3: non-interfering interactions ===")

    def worst_latency(interconnect_kind, with_aggressor):
        sim = Simulator()
        if interconnect_kind == "tt":
            noc, mpsoc = build_tt(sim)
        else:
            noc = SharedBusInterconnect(sim, MeshTopology(2, 2),
                                        bandwidth_bps=100_000_000)
            mpsoc = Mpsoc(sim, noc, core_names=CORES)
        mpsoc.core("brake").send_periodic(mpsoc.core("engine"),
                                          period=us(50), size_bytes=32)
        if with_aggressor:
            # ~60% interconnect load at higher priority than the brake.
            mpsoc.core("telematics").send_periodic(
                mpsoc.core("body"), period=us(200), size_bytes=1500,
                priority=9)
        sim.run_until(ms(2))
        category = "noc.rx_tt" if interconnect_kind == "tt" \
            else "noc.rx_bus"
        lats = [r.data["latency"]
                for r in noc.trace.records(category, "core1->core0")]
        return max(lats)

    for kind, label in (("bus", "shared bus"), ("tt", "TDMA NoC")):
        quiet = worst_latency(kind, False)
        loaded = worst_latency(kind, True)
        print(f"  {label:<11} brake latency: quiet={fmt_time(quiet)}  "
              f"under telematics load={fmt_time(loaded)}  "
              f"({'ISOLATED' if quiet == loaded else 'INTERFERED'})")
    print()


def requirement_4_error_containment():
    print("=== Req 4: error containment ===")
    sim = Simulator()
    noc, mpsoc = build_tt(sim)
    mpsoc.core("brake").send_periodic(mpsoc.core("engine"),
                                      period=us(20), size_bytes=32)
    # Telematics goes insane at t=0; its NI gates it at 50 us.
    mpsoc.core("telematics").start_babbling(mpsoc.core("engine"),
                                            interval=us(1))
    sim.schedule(us(50), lambda: noc.gate(3))
    sim.run_until(ms(2))
    babble = noc.trace.records("noc.rx_tt", "core3->core0")
    brake = noc.trace.records("noc.rx_tt", "core1->core0")
    print(f"  babble deliveries after gating : "
          f"{sum(1 for r in babble if r.time > us(60))}")
    print(f"  messages dropped at the NI     : {noc.gated_drops}")
    print(f"  brake deliveries (unaffected)  : {len(brake)}")


def main():
    requirement_1_interface_specification()
    requirement_2_stability_of_prior_services()
    requirement_3_non_interference()
    requirement_4_error_containment()


if __name__ == "__main__":
    main()
