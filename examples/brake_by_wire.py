#!/usr/bin/env python
"""Brake-by-wire: fault containment and graceful degradation.

The scenario the paper's Section 4 motivates: a safety-critical by-wire
subsystem on a time-triggered cluster must survive (a) a babbling-idiot
node and (b) a broken sensor, without the failures propagating.

The script demonstrates:

1. a 5-node TTP cluster carrying pedal and wheel data, with a babbling
   node first *without* bus guardians (service collapses) and then *with*
   guardians (the fault is contained to the faulty node);
2. the error-handling chain of Section 2's use cases: a broken pedal
   sensor is debounced by the error manager, trips a mode switch to a
   degraded braking mode, and lands in diagnostic memory, readable via
   UDS-style services.

Run:  python examples/brake_by_wire.py
"""

from repro.bsw import (DiagnosticServer, ErrorEvent, ErrorManager, FAILED,
                       ModeMachine, PASSED, READ_DTC, SEVERITY_HIGH)
from repro.faults import (BABBLING, Fault, FaultInjector, TtpNodeAdapter,
                          containment_violations)
from repro.network import TtpCluster
from repro.sim import Simulator
from repro.units import ms, us

NODES = ["pedal", "wheel_fl", "wheel_fr", "wheel_rl", "wheel_rr"]
SLOT = us(200)


def run_cluster(guardians_enabled, fault_window=(ms(5), ms(10))):
    """Run the cluster with a babbling wheel_rr node; return stats."""
    sim = Simulator()
    cluster = TtpCluster(sim, NODES, SLOT,
                         guardians_enabled=guardians_enabled)
    injector = FaultInjector(sim, cluster.trace)
    injector.inject(TtpNodeAdapter(cluster.node("wheel_rr")),
                    Fault(BABBLING, "wheel_rr", start=fault_window[0],
                          duration=fault_window[1]))
    for node in NODES:
        cluster.node(node).set_payload({"value": 0})
    cluster.start()
    sim.run_until(ms(40))
    collisions = cluster.trace.records("ttp.collision")
    blocked = cluster.trace.records("ttp.guardian_block")
    escaped = containment_violations(cluster.trace, {"wheel_rr"},
                                     since=fault_window[0])
    return {
        "membership": sorted(cluster.membership),
        "collisions": len(collisions),
        "guardian_blocks": len(blocked),
        "escaped_damage": len(escaped),
        "pedal_receptions": len(cluster.reception_times("pedal")),
    }


def demo_babbling_idiot():
    print("=== Babbling idiot on the brake cluster ===")
    for guardians in (False, True):
        stats = run_cluster(guardians_enabled=guardians)
        label = "WITH guardians" if guardians else "WITHOUT guardians"
        print(f"  {label}:")
        print(f"    final membership   : {stats['membership']}")
        print(f"    slot collisions    : {stats['collisions']}")
        print(f"    guardian blocks    : {stats['guardian_blocks']}")
        print(f"    damage outside FCR : {stats['escaped_damage']}")
        print(f"    pedal frames seen  : {stats['pedal_receptions']}")
    print()


def demo_sensor_failure():
    print("=== Broken pedal sensor: detect, degrade, diagnose ===")
    sim = Simulator()

    modes = ModeMachine("braking", ["normal", "degraded", "limp_home"],
                        "normal")
    modes.allow_chain("normal", "degraded", "limp_home")
    modes.allow("degraded", "normal")
    modes.bind_clock(lambda: sim.now)

    dem = ErrorManager("BrakeECU", now=lambda: sim.now)
    dem.register(ErrorEvent("pedal_implausible", dtc=0x4711,
                            severity=SEVERITY_HIGH, threshold=3))
    dem.on_status_change(
        lambda event, confirmed:
        modes.request("degraded" if confirmed else "normal"))

    diag = DiagnosticServer(dem)
    diag.publish_data(0xF190, lambda: modes.modes.index(modes.current))

    # Sensor stream: healthy until 20 ms, then stuck-at-zero.
    def monitor():
        healthy = sim.now < ms(20)
        dem.report("pedal_implausible", PASSED if healthy else FAILED,
                   context={"t": sim.now})
        sim.schedule(ms(5), monitor)

    monitor()
    sim.run_until(ms(60))

    print(f"  mode history        : {[(t // ms(1), m) for t, m in modes.history]}"
          f"  (ms, mode)")
    print(f"  confirmed DTCs      : "
          f"{[hex(d) for d in diag.handle(READ_DTC)['confirmed']]}")
    frame = diag.freeze_frame("pedal_implausible")
    print(f"  freeze frame at     : {frame['time'] // ms(1)} ms")
    print(f"  mode via diag 0x22  : "
          f"{diag.handle(0x22, 0xF190)['value']} (index into "
          f"{modes.modes})")


def main():
    demo_babbling_idiot()
    demo_sensor_failure()


if __name__ == "__main__":
    main()
