#!/usr/bin/env python
"""Timing-driven design: catch the timing bug before building anything.

The paper's Section 2 argues AUTOSAR is missing exactly this workflow:
"the handling of timing and scheduling requirements is mandatory …
enabling the possibility for prior to implementation system
configuration checks."  This script walks the loop:

1. an integrator drafts a deployment with a 5 ms end-to-end budget on
   the steering chain — and the *prior-to-implementation* timing report
   rejects it (an infotainment hog on the same ECU starves the chain);
2. the fix — a priority override giving the chain's consumer precedence
   — is checked by re-running the report, still without building;
3. only then is the system built; the simulated latencies confirm what
   the report promised.

Run:  python examples/timing_driven_design.py
"""

from repro.analysis import ChainProbe, timing_report
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.sim import Simulator
from repro.units import fmt_time, ms, us

DATA_IF = SenderReceiverInterface("d", {"v": UINT16})
BUDGET = ms(5)
CHAIN = "angle_sensor.sample -> angle_sensor.out -> steering.control"


def build_system(probe=None, fixed=False):
    sensor = SwComponent("AngleSensor")
    sensor.provide("out", DATA_IF)

    def sample(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        seq = ctx.state["n"] % 65536
        if probe is not None:
            probe.stamp(seq, ctx.now)
        ctx.write("out", "v", seq)

    sensor.runnable("sample", TimingEvent(ms(10)), sample, wcet=us(300),
                    writes=[("out", "v")])

    steering = SwComponent("SteeringController")
    steering.require("in", DATA_IF)

    def control(ctx):
        if probe is not None:
            probe.observe(ctx.read("in", "v"), ctx.now)

    steering.runnable("control", DataReceivedEvent("in", "v"), control,
                      wcet=us(700))

    infotainment = SwComponent("Infotainment")
    infotainment.provide("out", DATA_IF)
    infotainment.runnable("render", TimingEvent(ms(8)),
                          lambda ctx: None, wcet=ms(4))

    app = Composition("App")
    app.add(sensor.instantiate("angle_sensor"))
    app.add(steering.instantiate("steering"))
    app.add(infotainment.instantiate("hmi"))
    app.connect("angle_sensor", "out", "steering", "in")

    system = SystemModel("steering")
    system.add_ecu("SENSOR_ECU")
    system.add_ecu("CENTRAL_ECU")
    system.set_root(app)
    system.map("angle_sensor", "SENSOR_ECU")
    system.map("steering", "CENTRAL_ECU")
    system.map("hmi", "CENTRAL_ECU")
    system.configure_bus("can", bitrate_bps=500_000)
    if fixed:
        # The fix: the steering consumer outranks the infotainment hog.
        system.ecus["CENTRAL_ECU"].set_priority("steering.control", 50)
        system.ecus["CENTRAL_ECU"].set_priority("hmi.render", 1)
    else:
        # The draft carries the infotainment supplier's demand: their
        # rendering task "must run at the highest priority" — the kind
        # of integration decision that looks harmless without timing
        # analysis.
        system.ecus["CENTRAL_ECU"].set_priority("hmi.render", 50)
        system.ecus["CENTRAL_ECU"].set_priority("steering.control", 1)
    return system


def report_verdict(system, label):
    report = timing_report(system)
    bound = report.chain_latency.get(CHAIN)
    ok = report.schedulable and bound is not None and bound <= BUDGET
    print(f"  [{label}]")
    print(f"    schedulable      : {report.schedulable}")
    if bound is not None:
        print(f"    chain bound      : {fmt_time(bound)} "
              f"(budget {fmt_time(BUDGET)})")
    print(f"    budget verdict   : {'MET' if ok else 'VIOLATED'}")
    for issue in report.issues:
        print(f"    issue            : {issue}")
    return ok, bound


def main():
    print("=== 1. Draft deployment, analysed before implementation ===")
    draft_ok, __ = report_verdict(build_system(), "draft")
    assert not draft_ok, "the draft is supposed to fail its budget"

    print("\n=== 2. Apply the fix (priority override), re-analyse ===")
    fixed_ok, bound = report_verdict(build_system(fixed=True), "fixed")
    assert fixed_ok

    print("\n=== 3. Build the fixed system; simulate; confirm ===")
    probe = ChainProbe("steering")
    system = build_system(probe=probe, fixed=True)
    sim = Simulator()
    system.build(sim)
    sim.run_until(ms(2000))
    print(f"    observed worst   : {fmt_time(probe.worst)}")
    print(f"    analytic bound   : {fmt_time(bound)}")
    print(f"    bound holds      : {probe.worst <= bound}")
    print(f"    budget met       : {probe.worst <= BUDGET}")


if __name__ == "__main__":
    main()
