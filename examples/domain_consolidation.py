#!/usr/bin/env python
"""Federated-to-integrated consolidation with contract checking.

Walks the integrator workflow of the paper's Sections 3-4 on a realistic
vehicle workload (4 DASes, 16 supplier tasks):

1. quantify the federated baseline (one function per ECU, one bus per
   domain, central gateway);
2. consolidate onto the minimum number of schedulable ECUs — once with
   criticality segregation (no isolation mechanisms assumed) and once
   allowing mixed-criticality ECUs (timing protection available);
3. verify the suppliers' vertical assumptions (CPU budgets with
   confidence levels) against the chosen configuration, bottom-up;
4. report the joint analysis confidence and its weakest links.

Run:  python examples/domain_consolidation.py
"""

from repro.contracts import (CPU, ResourceOffer, VerticalAssumption,
                             check_compliance, confidence_report)
from repro.dse import (AllocatableTask, federated_metrics,
                       integrated_metrics)
from repro.osek import TaskSpec
from repro.units import ms


def vehicle_workload():
    """16 tasks across 4 DASes with ASIL levels and supplier-declared
    confidence in their WCET estimates."""
    rows = [
        # (das, wcet, period, criticality, wcet confidence)
        ("powertrain", ms(2), ms(10), "C", 0.98),
        ("powertrain", ms(5), ms(20), "C", 0.95),
        ("powertrain", ms(4), ms(40), "B", 0.99),
        ("powertrain", ms(8), ms(100), "QM", 0.90),
        ("chassis", ms(1), ms(5), "D", 0.99),
        ("chassis", ms(4), ms(20), "D", 0.97),
        ("chassis", ms(6), ms(40), "C", 0.95),
        ("chassis", ms(5), ms(50), "C", 0.92),
        ("body", ms(5), ms(50), "A", 0.90),
        ("body", ms(10), ms(100), "QM", 0.85),
        ("body", ms(20), ms(200), "QM", 0.80),
        ("body", ms(15), ms(300), "QM", 0.90),
        ("adas", ms(3), ms(15), "B", 0.93),
        ("adas", ms(6), ms(30), "B", 0.95),
        ("adas", ms(10), ms(60), "A", 0.88),
        ("adas", ms(12), ms(120), "A", 0.90),
    ]
    tasks, assumptions = [], []
    for index, (das, wcet, period, crit, confidence) in enumerate(rows):
        name = f"{das}_{index}"
        spec = TaskSpec(name, wcet=wcet, period=period, criticality=crit)
        tasks.append(AllocatableTask(spec, das))
        assumptions.append(VerticalAssumption(
            name, CPU, spec.utilization, confidence,
            description=f"{das} supplier WCET claim"))
    return tasks, assumptions


def print_metrics(metrics):
    print(f"  {metrics.name:<24} ecus={metrics.ecus:<3} "
          f"buses={metrics.buses:<2} wires={metrics.wires:<4} "
          f"contacts={metrics.contacts:<4} "
          f"max_cpu={metrics.max_utilization:.2f}")


def main():
    tasks, assumptions = vehicle_workload()
    total_u = sum(t.spec.utilization for t in tasks)
    print(f"Workload: {len(tasks)} tasks, 4 DASes, total utilization "
          f"{total_u:.2f}\n")

    print("=== Architecture comparison (paper Section 4 claim) ===")
    print_metrics(federated_metrics(tasks))
    segregated, __ = integrated_metrics(tasks, mixed_criticality_ok=False)
    print_metrics(segregated)
    integrated, allocation = integrated_metrics(tasks,
                                                mixed_criticality_ok=True)
    print_metrics(integrated)
    print()

    print("=== Chosen integrated configuration ===")
    for index, bin_tasks in enumerate(allocation.bins):
        names = ", ".join(t.spec.name for t in bin_tasks)
        print(f"  ECU{index} (u={allocation.utilization(index):.2f}): "
              f"{names}")
    print()

    print("=== Bottom-up vertical-assumption compliance (Section 3) ===")
    mapping = allocation.mapping()
    offers = [ResourceOffer(f"ECU{i}", CPU, 1.0)
              for i in range(allocation.ecu_count)]
    allocation_by_owner = {name: f"ECU{index}"
                           for name, index in mapping.items()}
    report = check_compliance(assumptions, offers, allocation_by_owner)
    print(f"  compliant: {report.ok}")
    for (provider, kind), (demand, capacity) in sorted(report.loads.items()):
        print(f"  {provider} {kind}: {demand:.2f} / {capacity:.2f}")
    print()

    print("=== Cost-efficient platform sizing (Section 3) ===")
    from repro.dse import EcuType, size_platform
    catalogue = [EcuType("eco", cpu_capacity=0.5, cost=9.0),
                 EcuType("standard", cpu_capacity=1.0, cost=15.0),
                 EcuType("performance", cpu_capacity=2.0, cost=26.0)]
    platform = size_platform(assumptions, catalogue,
                             utilization_ceiling=0.95)
    for index, ecu in enumerate(platform.ecus):
        print(f"  unit{index}: {ecu.ecu_type.name:<12} "
              f"load={ecu.load:.2f}/{ecu.ecu_type.cpu_capacity:.1f}  "
              f"hosts {len(ecu.owners)} claims")
    print(f"  total hardware cost  : {platform.total_cost:.0f}")
    naive = len(assumptions) * catalogue[-1].cost
    print(f"  naive (1 perf ECU per claim): {naive:.0f}\n")

    print("=== Analysis confidence (Section 3) ===")
    summary = confidence_report(assumptions, target=0.5)
    print(f"  joint (product rule) : {summary['product']:.3f}")
    print(f"  weakest link (min)   : {summary['min']:.2f}")
    print(f"  meets 0.5 target     : {summary['meets_target']}")
    print("  strengthen first     :")
    for owner, confidence in summary["weakest"]:
        print(f"    {owner:<16} confidence {confidence:.2f}")


if __name__ == "__main__":
    main()
