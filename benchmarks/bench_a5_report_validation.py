"""Ablation A5 — is the prior-to-implementation report trustworthy?

The timing report (:func:`repro.analysis.system_report.timing_report`)
is only useful if its predictions, made from the bare system model,
survive contact with the built system.  This benchmark generates seeded
random deployments (2-4 ECUs, 2-5 producer->consumer chains plus hog
tasks, one CAN bus), runs the report, then builds and simulates each
system with probes on every chain.

Expected shape: **zero** bound violations across all trials and chains;
median tightness in the low single digits (useful, not vacuous); every
generated system analysable.
"""

import random

from _tables import print_table

from repro.analysis import ChainProbe, timing_report
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.sim import Simulator
from repro.units import ms, us

SEED = 20080310  # DATE 2008
TRIALS = 12
HORIZON = ms(2000)
DATA_IF = SenderReceiverInterface("d", {"v": UINT16})
PERIODS_MS = [10, 20, 50]


def random_system(rng, probes):
    n_ecus = rng.randint(2, 4)
    n_chains = rng.randint(2, 5)
    app = Composition("Rand")
    system = SystemModel("rand")
    for index in range(n_ecus):
        system.add_ecu(f"E{index}")
    for chain in range(n_chains):
        period = ms(rng.choice(PERIODS_MS))
        producer = SwComponent(f"P{chain}")
        producer.provide("out", DATA_IF)

        def produce(ctx, chain=chain):
            ctx.state["n"] = ctx.state.get("n", 0) + 1
            seq = ctx.state["n"] % 65536
            probes[chain].stamp(seq, ctx.now)
            ctx.write("out", "v", seq)

        producer.runnable("tick", TimingEvent(period), produce,
                          wcet=us(rng.randint(100, 800)),
                          writes=[("out", "v")])
        consumer = SwComponent(f"C{chain}")
        consumer.require("in", DATA_IF)

        def consume(ctx, chain=chain):
            probes[chain].observe(ctx.read("in", "v"), ctx.now)

        consumer.runnable("sink", DataReceivedEvent("in", "v"), consume,
                          wcet=us(rng.randint(100, 900)))
        app.add(producer.instantiate(f"p{chain}"))
        app.add(consumer.instantiate(f"c{chain}"))
        app.connect(f"p{chain}", "out", f"c{chain}", "in")
        src = rng.randrange(n_ecus)
        dst = (src + rng.randint(1, n_ecus - 1)) % n_ecus
        system.map(f"p{chain}", f"E{src}")
        system.map(f"c{chain}", f"E{dst}")
    # One hog per ECU, moderate utilization.
    for index in range(n_ecus):
        hog = SwComponent(f"H{index}")
        hog.provide("out", DATA_IF)
        hog_period = ms(rng.choice([5, 8, 10]))
        hog.runnable("burn", TimingEvent(hog_period), lambda ctx: None,
                     wcet=round(hog_period * rng.uniform(0.1, 0.3)))
        app.add(hog.instantiate(f"h{index}"))
        system.map(f"h{index}", f"E{index}")
    system.set_root(app)
    system.configure_bus("can", bitrate_bps=500_000)
    return system, n_chains


def run() -> list[dict]:
    rng = random.Random(SEED)
    rows = []
    violations = 0
    tightnesses = []
    chains_checked = 0
    unschedulable = 0
    for trial in range(TRIALS):
        probes = {}
        for chain in range(6):
            probes[chain] = ChainProbe(f"chain{chain}")
        system, n_chains = random_system(rng, probes)
        report = timing_report(system)
        assert report.analysable, report.issues
        if not report.schedulable:
            unschedulable += 1
            continue
        sim = Simulator()
        system.build(sim)
        sim.run_until(HORIZON)
        for chain in range(n_chains):
            probe = probes[chain]
            chain_name = (f"p{chain}.tick -> p{chain}.out -> "
                          f"c{chain}.sink")
            bound = report.chain_latency[chain_name]
            if not probe.latencies:
                continue
            chains_checked += 1
            if probe.worst > bound:
                violations += 1
            tightnesses.append(bound / probe.worst)
    tightnesses.sort()
    rows.append({
        "trials": TRIALS,
        "unschedulable_designs": unschedulable,
        "chains_checked": chains_checked,
        "bound_violations": violations,
        "median_tightness": tightnesses[len(tightnesses) // 2],
        "max_tightness": max(tightnesses),
    })
    return rows


def check(rows: list[dict]) -> None:
    row = rows[0]
    assert row["bound_violations"] == 0, "the report must be safe"
    assert row["chains_checked"] >= 20
    assert row["median_tightness"] < 6.0, "bounds should stay useful"


TITLE = ("A5 (ablation): prior-to-implementation report vs deployed "
         "reality, seeded random systems")


def bench_a5_report_validation(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
