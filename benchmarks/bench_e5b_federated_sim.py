"""E5b — Federated vs integrated, simulated end to end.

Companion to E5 (which counts ECUs/wires/contacts): the same application
is *deployed and simulated* twice —

* **federated**: every DAS has its own CAN domain and ECUs; cross-DAS
  signals hop through the auto-generated central gateway (two wire
  traversals + gateway processing);
* **integrated**: the same instances consolidated onto two ECUs sharing
  one bus; cross-DAS signals are either local (same ECU) or one wire hop.

Measured: worst observed latency of each cross-DAS signal (producer
write to consumer buffer update), gateway forwards, and per-bus load.

Expected shape: integration removes the gateway hop — cross-DAS latency
drops by roughly the gateway delay plus one wire time — at the price of
concentrating all load on one bus.
"""

from _tables import print_table

from repro.analysis import ChainProbe
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.sim import Simulator
from repro.units import ms, us

DATA_IF = SenderReceiverInterface("d", {"v": UINT16})
HORIZON = ms(500)
#: cross-DAS flows: (signal, producer DAS, consumer DAS, period)
FLOWS = [
    ("engine_speed", "powertrain", "body", ms(10)),
    ("wheel_speed", "chassis", "adas", ms(10)),
    ("brake_state", "chassis", "body", ms(20)),
]
DASES = ["powertrain", "chassis", "body", "adas"]


def build_app(probes):
    app = Composition("Vehicle")
    for signal, src_das, dst_das, period in FLOWS:
        producer = SwComponent(f"P_{signal}")
        producer.provide("out", DATA_IF)

        def produce(ctx, signal=signal):
            ctx.state["n"] = ctx.state.get("n", 0) + 1
            seq = ctx.state["n"] % 65536
            probes[signal].stamp(seq, ctx.now)
            ctx.write("out", "v", seq)

        producer.runnable("tick", TimingEvent(period), produce,
                          wcet=us(100))
        consumer = SwComponent(f"C_{signal}")
        consumer.require("in", DATA_IF)

        def consume(ctx, signal=signal):
            probes[signal].observe(ctx.read("in", "v"), ctx.now)

        consumer.runnable("on_data", DataReceivedEvent("in", "v"),
                          consume, wcet=us(100))
        app.add(producer.instantiate(f"p_{signal}"))
        app.add(consumer.instantiate(f"c_{signal}"))
        app.connect(f"p_{signal}", "out", f"c_{signal}", "in")
    return app


def run_federated(probes):
    app = build_app(probes)
    system = SystemModel("federated")
    for das in DASES:
        system.configure_domain_bus(das, "can", bitrate_bps=500_000)
    for signal, src_das, dst_das, __ in FLOWS:
        system.add_ecu(f"ECU_p_{signal}", domain=src_das)
        system.add_ecu(f"ECU_c_{signal}", domain=dst_das)
        system.map(f"p_{signal}", f"ECU_p_{signal}")
        system.map(f"c_{signal}", f"ECU_c_{signal}")
    system.set_root(app)
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(HORIZON)
    return runtime


def run_integrated(probes):
    app = build_app(probes)
    system = SystemModel("integrated")
    system.add_ecu("VCU1")
    system.add_ecu("VCU2")
    system.configure_bus("can", bitrate_bps=500_000)
    system.set_root(app)
    for index, (signal, __, __, __) in enumerate(FLOWS):
        system.map(f"p_{signal}", "VCU1" if index % 2 == 0 else "VCU2")
        system.map(f"c_{signal}", "VCU2")
    sim = Simulator()
    runtime = system.build(sim)
    sim.run_until(HORIZON)
    return runtime


def run() -> list[dict]:
    fed_probes = {signal: ChainProbe(signal) for signal, *_ in FLOWS}
    federated = run_federated(fed_probes)
    int_probes = {signal: ChainProbe(signal) for signal, *_ in FLOWS}
    integrated = run_integrated(int_probes)
    rows = []
    for signal, src_das, dst_das, __ in FLOWS:
        fed_worst = fed_probes[signal].worst
        int_worst = int_probes[signal].worst
        rows.append({
            "signal": f"{signal} ({src_das}->{dst_das})",
            "federated_us": fed_worst / us(1),
            "integrated_us": int_worst / us(1),
            "speedup": fed_worst / int_worst if int_worst else None,
        })
    rows.append({
        "signal": "gateway forwards",
        "federated_us": float(federated.gateway.forwarded),
        "integrated_us": 0.0,
        "speedup": None,
    })
    return rows


def check(rows: list[dict]) -> None:
    flow_rows = rows[:-1]
    for row in flow_rows:
        # Integration removes the gateway hop: strictly faster.
        assert row["integrated_us"] < row["federated_us"], row
        assert row["speedup"] > 1.5
    gateway_row = rows[-1]
    assert gateway_row["federated_us"] > 100
    assert gateway_row["integrated_us"] == 0


TITLE = ("E5b: cross-DAS signal latency — federated (gateway) vs "
         "integrated (shared platform)")


def bench_e5b_federated_sim(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
