"""E2 — The cost of timing isolation.

Claim (paper, Section 1): isolation policies "will carry overhead, albeit
potentially not prohibitive" — "the standard trade-off between efficiency
and reliability".

Setup: a 4-task workload with non-harmonic periods (5/8/18/45 ms — the
interesting case: when every period divides the TDMA frame, strict TDMA
is losslessly efficient) whose WCETs are scaled to sweep utilization.
Per policy and utilization we decide schedulability with that policy's
exact analysis:

* fixed priority — response-time analysis;
* strict TDMA — per-task windows sized proportionally within a 5 ms
  major frame, supply-bound-function analysis;
* deferrable servers — per-task servers at half the task period, each
  sized to the *minimum* budget meeting the task deadline (binary
  search); schedulable while total reserved bandwidth <= 1.

Reported: breakdown utilization, reserved-bandwidth overhead at 50% load,
and worst-case latency inflation vs fixed priority at 50% load.

Expected shape: FP admits the most load; TDMA and reservation break down
earlier and inflate latency by a small factor — real but not prohibitive.
"""

from _tables import print_table

from repro.analysis import (analyze, periodic_server_supply,
                            response_bound, tdma_response_bound)
from repro.errors import ReproError
from repro.osek import TaskSpec, TdmaScheduler, Window
from repro.units import ms, us

#: (name, weight, period) — wcet_i proportional to weight.
BASE = [
    ("t5", 1.0, ms(5)),
    ("t8", 1.6, ms(8)),
    ("t18", 3.6, ms(18)),
    ("t45", 9.0, ms(45)),
]
WEIGHT_UTILIZATION = sum(w * ms(1) / p for __, w, p in BASE)
FRAME = ms(5)


def taskset(utilization: float) -> list[TaskSpec]:
    scale = utilization / WEIGHT_UTILIZATION
    tasks = []
    for priority, (name, weight, period) in enumerate(reversed(BASE)):
        wcet = max(1, round(weight * scale * ms(1)))
        tasks.append(TaskSpec(name, wcet=wcet, period=period,
                              priority=priority + 1))
    return list(reversed(tasks))


def fp_check(tasks) -> dict:
    result = analyze(tasks)
    return {"ok": result.schedulable,
            "wcrt": result.wcrt if result.schedulable else None,
            "bandwidth": sum(t.utilization for t in tasks)}


def _tdma_bound(share: int, task: TaskSpec) -> int:
    """WCRT of the task given one window of ``share`` per frame.

    Strict TDMA is non-work-conserving, so a partition's supply depends
    only on its own window — windows can be sized independently and then
    packed, which is exactly the "careful planning" design flow.
    """
    scheduler = TdmaScheduler([Window(0, share, task.name)], FRAME)
    return tdma_response_bound(scheduler, task.name, task.wcet)


def _min_window(task: TaskSpec) -> int:
    """Smallest per-frame window meeting the task's deadline."""
    lo, hi = 1, FRAME
    while lo < hi:
        mid = (lo + hi) // 2
        try:
            ok = _tdma_bound(mid, task) <= task.deadline
        except ReproError:
            ok = False
        if ok:
            hi = mid
        else:
            lo = mid + 1
    try:
        if _tdma_bound(lo, task) > task.deadline:
            return None
    except ReproError:
        return None
    return lo


def tdma_check(tasks) -> dict:
    shares = {}
    for task in tasks:
        share = _min_window(task)
        if share is None:
            return {"ok": False}
        shares[task.name] = share
    if sum(shares.values()) > FRAME:
        return {"ok": False}
    wcrt = {task.name: _tdma_bound(shares[task.name], task)
            for task in tasks}
    return {"ok": True, "wcrt": wcrt,
            "bandwidth": sum(shares.values()) / FRAME}


def _min_server_budget(task: TaskSpec) -> int:
    """Smallest budget (at period/2) whose supply meets the deadline."""
    server_period = task.period // 2
    lo, hi = 1, server_period
    while lo < hi:
        mid = (lo + hi) // 2
        sbf = periodic_server_supply(mid, server_period)
        try:
            bound = response_bound(task.wcet, sbf, 4 * task.period)
        except ReproError:
            bound = None
        if bound is not None and bound <= task.deadline:
            hi = mid
        else:
            lo = mid + 1
    sbf = periodic_server_supply(lo, server_period)
    try:
        bound = response_bound(task.wcet, sbf, 4 * task.period)
    except ReproError:
        return None
    if bound > task.deadline:
        return None
    return lo


def server_check(tasks) -> dict:
    total_bandwidth = 0.0
    wcrt = {}
    for task in tasks:
        budget = _min_server_budget(task)
        if budget is None:
            return {"ok": False}
        server_period = task.period // 2
        total_bandwidth += budget / server_period
        sbf = periodic_server_supply(budget, server_period)
        wcrt[task.name] = response_bound(task.wcet, sbf, 4 * task.period)
    if total_bandwidth > 1.0:
        return {"ok": False}
    return {"ok": True, "wcrt": wcrt, "bandwidth": total_bandwidth}


POLICIES = [
    ("fixed-priority", fp_check),
    ("tdma", tdma_check),
    ("reservation", server_check),
]


def breakdown_utilization(check_fn) -> float:
    best, u = 0.0, 0.05
    while u <= 1.001:
        if check_fn(taskset(u))["ok"]:
            best = u
        u += 0.05
    return round(best, 2)


def run() -> list[dict]:
    reference = fp_check(taskset(0.5))["wcrt"]
    rows = []
    for name, check_fn in POLICIES:
        at_half = check_fn(taskset(0.5))
        ratio = None
        overhead = None
        if at_half["ok"]:
            ratio = sum(at_half["wcrt"][n] / reference[n]
                        for n in reference) / len(reference)
            overhead = at_half["bandwidth"] / 0.5
        rows.append({
            "policy": name,
            "breakdown_utilization": breakdown_utilization(check_fn),
            "bandwidth_overhead_at_50pct": overhead,
            "avg_wcrt_vs_fp_at_50pct": ratio,
        })
    return rows


def check(rows: list[dict]) -> None:
    by_policy = {r["policy"]: r for r in rows}
    fp = by_policy["fixed-priority"]
    assert fp["breakdown_utilization"] >= 0.85
    assert abs(fp["bandwidth_overhead_at_50pct"] - 1.0) < 0.05
    for isolated in ("tdma", "reservation"):
        row = by_policy[isolated]
        # Isolation costs admitted load and/or reserved bandwidth...
        assert (row["breakdown_utilization"]
                <= fp["breakdown_utilization"] + 1e-9)
        # ...and latency, but not prohibitively (single-digit factor).
        assert 1.0 <= row["avg_wcrt_vs_fp_at_50pct"] < 10.0


TITLE = ("E2: schedulable-utilization, bandwidth and latency cost of "
         "timing isolation")


def bench_e2_isolation_overhead(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
