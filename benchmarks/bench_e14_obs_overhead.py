"""E14 — Instrumentation overhead of the repro.obs telemetry layer.

Claim (engineering gate for the observability layer, ROADMAP): the
metrics/span/DLT hooks threaded through the hot paths — sim kernel,
CAN arbitration, RTA fixpoints, verify oracle — must be free when
telemetry is off and cheap when it is on, and must never perturb the
computation itself: the verify report digest is byte-identical with
telemetry off, on, or stripped out entirely.

Setup: the E12 differential-verification workload (seeded random
systems run through analysis + simulation) in three modes.
``stripped`` monkeypatches every obs helper into a bare no-op — the
closest approximation of un-instrumented code without maintaining a
second copy of the sources.  ``disabled`` is the stock build with
telemetry off (the production default: every hook is one module-flag
check).  ``enabled`` collects everything.  Per mode we report the best
wall time over several rounds and the overhead relative to
``stripped``.

Expected shape: ``disabled`` within 5% of ``stripped`` (the hooks are
coarse on purpose — the kernel counts executed-event *deltas* per
``run_until``, not per event), ``enabled`` low double-digit percent at
worst, and one verify-report digest across all three rows.
"""

import contextlib
import time

from _tables import print_table

from repro import obs
from repro.verify import verify_many

SEED = 7
SYSTEMS = 10
SIZE = "small"
ROUNDS = 3
#: The disabled-mode gate: hooks with telemetry off may cost at most
#: this fraction over fully stripped-out instrumentation.
DISABLED_BUDGET = 0.05

#: The obs helpers invoked from instrumented hot paths.  ``stripped``
#: mode replaces each with the cheapest possible stand-in.
_HELPERS = ("count", "observe", "gauge_set", "dlt", "harvest_trace")


@contextlib.contextmanager
def stripped_obs():
    """Monkeypatch the obs helpers into bare no-ops for the duration."""
    saved = {name: getattr(obs, name) for name in _HELPERS}
    saved["span"] = obs.span
    saved["enabled"] = obs.enabled
    try:
        for name in _HELPERS:
            setattr(obs, name, lambda *args, **kwargs: None)
        obs.span = lambda *args, **kwargs: obs.NULL_SPAN
        obs.enabled = lambda: False
        yield
    finally:
        for name, fn in saved.items():
            setattr(obs, name, fn)


def _workload():
    return verify_many(SEED, SYSTEMS, SIZE)


def _best_wall(fn) -> tuple[float, str]:
    """Best-of-ROUNDS wall time and the (invariant) report digest."""
    best, digest = None, None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        report = fn()
        wall = time.perf_counter() - started
        best = wall if best is None else min(best, wall)
        digest = report.digest()
    return best, digest


def run() -> list[dict]:
    obs.disable()
    obs.reset()

    def stripped():
        with stripped_obs():
            return _workload()

    def enabled():
        obs.reset()
        obs.enable()
        try:
            return _workload()
        finally:
            obs.disable()

    rows = []
    baseline = None
    for mode, fn in (("stripped", stripped), ("disabled", _workload),
                     ("enabled", enabled)):
        wall, digest = _best_wall(fn)
        if baseline is None:
            baseline = wall
        rows.append({
            "mode": mode,
            "wall_s": round(wall, 3),
            "overhead_pct": round((wall / baseline - 1.0) * 100, 1),
            "report_digest": digest[:12],
        })
    rows[-1]["telemetry_digest"] = obs.digest()[:12]
    return rows


def check(rows: list[dict]) -> None:
    by_mode = {row["mode"]: row for row in rows}
    # Instrumentation must never perturb the computation.
    assert len({row["report_digest"] for row in rows}) == 1
    # The free-when-off gate: disabled hooks within budget of stripped.
    assert (by_mode["disabled"]["wall_s"]
            <= by_mode["stripped"]["wall_s"] * (1.0 + DISABLED_BUDGET))
    # Enabled mode actually collected something.
    assert by_mode["enabled"]["telemetry_digest"]


TITLE = (f"E14: obs overhead on the E12 verify workload "
         f"({SYSTEMS} systems, seed {SEED}, best of {ROUNDS})")


def bench_e14_obs_overhead(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
