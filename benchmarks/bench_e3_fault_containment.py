"""E3 — Fault containment on the communication channel.

Claim (paper, Section 4): time-triggered protocols partition the channel
into "nearly independent sub-channels that are free of logical or
temporal interference", providing "the encapsulation and error-containment
services" an integrated architecture requires — whereas event-triggered
CAN cannot contain a babbling-idiot node.

Setup: six nodes each publish a frame every 10 ms (deadline = period).
Node 5 babbles from t=50 ms to t=150 ms.  We compare:

* CAN (500 kbit/s): the babbler floods with the top-priority identifier;
* TTP without bus guardians: out-of-slot babble collides with slots;
* TTP with bus guardians: babble is gated at the guardian;
* FlexRay static segment: slot ownership contains by construction.

Metrics: victim deliveries, victim deadline misses, worst victim latency,
and damage records escaping the babbler's fault-containment region.

Expected shape: CAN and guardianless TTP show misses / lost slots;
TTP+guardian and FlexRay show zero escaped damage.
"""

from _tables import print_table

from repro.faults import (BABBLING, CanNodeAdapter, Fault, FaultInjector,
                          TtpNodeAdapter, containment_violations)
from repro.network import (CanBus, CanFrameSpec, FlexRayBus, FlexRayConfig,
                           StaticSlotAssignment, TtpCluster)
from repro.sim import Simulator
from repro.units import ms, us

N_NODES = 6
PERIOD = ms(10)
FAULT_START = ms(50)
FAULT_LEN = ms(100)
HORIZON = ms(300)
VICTIMS = [f"N{i}" for i in range(N_NODES - 1)]
IDIOT = f"N{N_NODES - 1}"


def run_can() -> dict:
    sim = Simulator()
    bus = CanBus(sim, 500_000)
    controllers = {name: bus.attach(name) for name in VICTIMS + [IDIOT]}
    specs = {name: CanFrameSpec(name, 0x100 + i, dlc=8, period=PERIOD)
             for i, name in enumerate(VICTIMS)}

    def periodic(name):
        def fire():
            controllers[name].send(specs[name])
            sim.schedule(PERIOD, fire)
        fire()

    for name in VICTIMS:
        periodic(name)
    injector = FaultInjector(sim, bus.trace)
    injector.inject(CanNodeAdapter(sim, controllers[IDIOT],
                                   flood_period=us(100)),
                    Fault(BABBLING, IDIOT, FAULT_START, FAULT_LEN))
    sim.run_until(HORIZON)
    latencies = [r.data["latency"] for name in VICTIMS
                 for r in bus.trace.records("can.rx", name)]
    misses = sum(1 for lat in latencies if lat > PERIOD)
    return {
        "protocol": "CAN",
        "victim_deliveries": len(latencies),
        "victim_deadline_misses": misses,
        "worst_latency_ms": max(latencies) / ms(1),
        "escaped_damage": misses,
    }


def run_ttp(guardians: bool) -> dict:
    sim = Simulator()
    cluster = TtpCluster(sim, VICTIMS + [IDIOT], slot_length=us(300),
                         guardians_enabled=guardians)
    for name in VICTIMS:
        cluster.node(name).set_payload({"v": 0})
    injector = FaultInjector(sim, cluster.trace)
    injector.inject(TtpNodeAdapter(cluster.node(IDIOT)),
                    Fault(BABBLING, IDIOT, FAULT_START, FAULT_LEN))
    cluster.start()
    sim.run_until(HORIZON)
    deliveries = sum(len(cluster.reception_times(name))
                     for name in VICTIMS)
    lost = len([r for r in cluster.trace.records("ttp.collision")
                if r.subject in VICTIMS])
    escaped = containment_violations(cluster.trace, {IDIOT},
                                     since=FAULT_START)
    label = "TTP+guardian" if guardians else "TTP (no guardian)"
    return {
        "protocol": label,
        "victim_deliveries": deliveries,
        "victim_deadline_misses": lost,
        "worst_latency_ms": cluster.round_length / ms(1),
        "escaped_damage": len(escaped),
    }


def run_flexray() -> dict:
    sim = Simulator()
    config = FlexRayConfig(slot_length=us(300), n_static_slots=N_NODES)
    bus = FlexRayBus(sim, config)
    controllers = {name: bus.attach(name) for name in VICTIMS + [IDIOT]}
    for i, name in enumerate(VICTIMS, start=1):
        bus.assign_slot(StaticSlotAssignment(i, name, name))

    def refill(name, slot):
        def fire():
            controllers[name].send_static(slot, payload=0)
            sim.schedule(config.cycle_length, fire)
        fire()

    for i, name in enumerate(VICTIMS, start=1):
        refill(name, i)
    # A babbling FlexRay node cannot transmit outside its slot: slot
    # ownership is enforced by the (modelled) protocol engine; its own
    # slot (unassigned here) simply carries garbage nobody subscribes to.
    bus.start()
    sim.run_until(HORIZON)
    latencies = [r.data["latency"] for name in VICTIMS
                 for r in bus.trace.records("flexray.rx", name)]
    misses = sum(1 for lat in latencies if lat > PERIOD)
    return {
        "protocol": "FlexRay static",
        "victim_deliveries": len(latencies),
        "victim_deadline_misses": misses,
        "worst_latency_ms": max(latencies) / ms(1),
        "escaped_damage": misses,
    }


def run() -> list[dict]:
    return [run_can(), run_ttp(False), run_ttp(True), run_flexray()]


def check(rows: list[dict]) -> None:
    by_protocol = {r["protocol"]: r for r in rows}
    assert by_protocol["CAN"]["escaped_damage"] > 0
    assert by_protocol["TTP (no guardian)"]["escaped_damage"] > 0
    assert by_protocol["TTP+guardian"]["escaped_damage"] == 0
    assert by_protocol["FlexRay static"]["escaped_damage"] == 0
    # Guardians restore full delivery service.
    assert by_protocol["TTP+guardian"]["victim_deliveries"] > \
        by_protocol["TTP (no guardian)"]["victim_deliveries"]


TITLE = "E3: babbling-idiot containment per protocol"


def bench_e3_fault_containment(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
