"""Ablation A4 — holistic (jitter-propagating) vs naive composition.

Design choice under test: end-to-end bounds are computed by the holistic
fixpoint (:mod:`repro.analysis.holistic`), which feeds each stage's WCRT
into its successor's release jitter, instead of naively treating every
element as an independent zero-jitter periodic.

Setup: the chain under test (sensor on E1 -> CAN frame -> consumer on
E2) shares both resources with a second, *higher-priority* chain
(producer on E1 -> noise frame -> handler on E2).  The interfering
handler on E2 is data-triggered, so its release jitter equals the noise
frame's WCRT — with zero-jitter analysis its activations look evenly
spaced; in reality (and in holistic analysis) they can bunch up and hit
the consumer twice in one busy window.  Three interference weights are
swept; every configuration is also simulated as a full RTE deployment.

Expected shape: the holistic bound is safe everywhere and strictly
exceeds the naive composition once the propagated jitter pushes an extra
interference instance into a window — the case where naive analysis is
structurally optimistic.
"""

from _tables import print_table

from repro.analysis import ChainProbe, HolisticModel, can_rta, rta
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.network import CanFrameSpec
from repro.osek import TaskSpec
from repro.sim import Simulator
from repro.units import ms, us

BITRATE = 500_000
DATA_IF = SenderReceiverInterface("d", {"v": UINT16})

SENSOR_PERIOD = ms(10)
NOISE_PERIOD = ms(4)
SENSOR_WCET = us(500)
CTRL_WCET = us(800)

#: (label, noise-producer wcet on E1, noise-handler wcet on E2)
LEVELS = [
    ("light", us(300), us(300)),
    ("medium", ms(1), ms(1)),
    ("heavy", ms(2), ms(1.5)),
]


def simulate(producer_wcet, handler_wcet) -> int:
    probe = ChainProbe("a4")
    sensor = SwComponent("Sensor")
    sensor.provide("out", DATA_IF)

    def sample(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        seq = ctx.state["n"] % 65536
        probe.stamp(seq, ctx.now)
        ctx.write("out", "v", seq)

    sensor.runnable("sample", TimingEvent(SENSOR_PERIOD), sample,
                    wcet=SENSOR_WCET)

    consumer = SwComponent("Consumer")
    consumer.require("in", DATA_IF)
    consumer.runnable(
        "consume", DataReceivedEvent("in", "v"),
        lambda ctx: probe.observe(ctx.read("in", "v"), ctx.now),
        wcet=CTRL_WCET)

    producer = SwComponent("NoiseProducer")
    producer.provide("out", DATA_IF)

    def pump(ctx):
        ctx.state["n"] = ctx.state.get("n", 0) + 1
        ctx.write("out", "v", ctx.state["n"] % 65536)

    producer.runnable("pump", TimingEvent(NOISE_PERIOD), pump,
                      wcet=producer_wcet)

    handler = SwComponent("NoiseHandler")
    handler.require("in", DATA_IF)
    handler.runnable("handle", DataReceivedEvent("in", "v"),
                     lambda ctx: None, wcet=handler_wcet)

    app = Composition("App")
    app.add(sensor.instantiate("sensor"))
    app.add(consumer.instantiate("consumer"))
    app.add(producer.instantiate("producer"))
    app.add(handler.instantiate("handler"))
    app.connect("sensor", "out", "consumer", "in")
    app.connect("producer", "out", "handler", "in")

    system = SystemModel("a4")
    system.add_ecu("E1")
    system.add_ecu("E2")
    system.set_root(app)
    system.map("sensor", "E1")
    system.map("producer", "E1")
    system.map("consumer", "E2")
    system.map("handler", "E2")
    system.configure_bus("can", bitrate_bps=BITRATE)
    # Noise wins both the bus and (by default sporadic-priority FIFO)
    # competes on E2; give the handler explicit higher priority.
    system.set_can_id("producer.out", 0x010)
    system.set_can_id("sensor.out", 0x400)
    system.ecus["E2"].set_priority("consumer.consume", 10)
    system.ecus["E2"].set_priority("handler.handle", 20)
    system.ecus["E1"].set_priority("sensor.sample", 10)
    system.ecus["E1"].set_priority("producer.pump", 20)

    sim = Simulator()
    system.build(sim)
    sim.run_until(ms(4000))
    return probe.worst


def _elements(producer_wcet, handler_wcet):
    sensor = TaskSpec("sensor", wcet=SENSOR_WCET, period=SENSOR_PERIOD,
                      priority=10)
    pump = TaskSpec("pump", wcet=producer_wcet, period=NOISE_PERIOD,
                    priority=20)
    consume = TaskSpec("consume", wcet=CTRL_WCET, priority=10)
    handle = TaskSpec("handle", wcet=handler_wcet, priority=20)
    frame = CanFrameSpec("frame", 0x400, dlc=3)
    noise = CanFrameSpec("noise", 0x010, dlc=3)
    return sensor, pump, consume, handle, frame, noise


def naive_bound(producer_wcet, handler_wcet) -> int:
    """Every element periodic with zero jitter, analysed in isolation."""
    from repro.analysis.sensitivity import replace_spec

    sensor, pump, consume, handle, frame, noise = _elements(
        producer_wcet, handler_wcet)
    e1 = [sensor, pump]
    e2 = [replace_spec(consume, period=SENSOR_PERIOD),
          replace_spec(handle, period=NOISE_PERIOD)]
    frames = [CanFrameSpec("frame", 0x400, dlc=3, period=SENSOR_PERIOD),
              CanFrameSpec("noise", 0x010, dlc=3, period=NOISE_PERIOD)]
    sensor_r = rta.response_time(e1[0], e1)
    frame_r = can_rta.response_time(frames[0], frames, BITRATE)
    consume_r = rta.response_time(e2[0], e2)
    return sensor_r + frame_r + consume_r


def holistic_bound(producer_wcet, handler_wcet) -> tuple[int, int]:
    sensor, pump, consume, handle, frame, noise = _elements(
        producer_wcet, handler_wcet)
    model = HolisticModel(BITRATE)
    model.add_task("E1", sensor)
    model.add_task("E1", pump)
    model.add_task("E2", consume)
    model.add_task("E2", handle)
    model.add_frame(frame)
    model.add_frame(noise)
    model.link("sensor", "frame")
    model.link("frame", "consume")
    model.link("pump", "noise")
    model.link("noise", "handle")
    model.transaction("chain", ["sensor", "frame", "consume"])
    result = model.solve()
    assert result.converged and result.schedulable, result.failures
    return result.transaction_latency["chain"], result.iterations


def run() -> list[dict]:
    rows = []
    for label, producer_wcet, handler_wcet in LEVELS:
        observed = simulate(producer_wcet, handler_wcet)
        naive = naive_bound(producer_wcet, handler_wcet)
        holistic, iterations = holistic_bound(producer_wcet, handler_wcet)
        rows.append({
            "interference": label,
            "observed_us": observed / us(1),
            "naive_us": naive / us(1),
            "holistic_us": holistic / us(1),
            "holistic_safe": observed <= holistic,
            "naive_safe": observed <= naive,
            "iterations": iterations,
        })
    return rows


def check(rows: list[dict]) -> None:
    for row in rows:
        assert row["holistic_safe"], row
        assert row["holistic_us"] >= row["naive_us"] - 1e-9
    # At some interference level the propagated jitter must actually
    # change the bound (the reason holistic analysis exists).
    assert any(r["holistic_us"] > r["naive_us"] for r in rows)
    observed = [r["observed_us"] for r in rows]
    assert observed == sorted(observed)


TITLE = ("A4 (ablation): end-to-end bounds — naive composition vs "
         "holistic fixpoint vs simulation")


def bench_a4_holistic(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
