"""Scalability — simulation throughput across system sizes.

Not a paper claim, but an adoption-relevant property of the library:
how long does it take to simulate one second of vehicle time as the
system grows?  The workload is a seeded synthetic system of N ECUs on
one CAN bus, 4 periodic tasks per ECU, and one cross-ECU signal per
ECU.  The asserted shape is sub-quadratic scaling in event volume:
simulated events per wall-second must stay within an order of magnitude
across a 16x size sweep.
"""

import random
import time

from _tables import print_table

from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.sim import Simulator
from repro.units import ms, us

SEED = 5
DATA_IF = SenderReceiverInterface("d", {"v": UINT16})
HORIZON = ms(1000)
SIZES = [2, 4, 8, 16, 32]


def build(n_ecus: int):
    rng = random.Random(SEED)
    app = Composition("Scale")
    system = SystemModel(f"scale{n_ecus}")
    for index in range(n_ecus):
        system.add_ecu(f"E{index}")
    for index in range(n_ecus):
        producer = SwComponent(f"Producer{index}")
        producer.provide("out", DATA_IF)

        def tick(ctx):
            ctx.state["n"] = ctx.state.get("n", 0) + 1
            ctx.write("out", "v", ctx.state["n"] % 65536)

        producer.runnable("tick",
                          TimingEvent(ms(rng.choice([10, 20, 50]))),
                          tick, wcet=us(rng.randint(50, 300)))
        app.add(producer.instantiate(f"p{index}"))
        system.map(f"p{index}", f"E{index}")
        consumer = SwComponent(f"Consumer{index}")
        consumer.require("in", DATA_IF)
        consumer.runnable("on_data", DataReceivedEvent("in", "v"),
                          lambda ctx: None, wcet=us(100))
        app.add(consumer.instantiate(f"c{index}"))
        system.map(f"c{index}", f"E{(index + 1) % n_ecus}")
        app.connect(f"p{index}", "out", f"c{index}", "in")
        for extra in range(3):
            filler = SwComponent(f"Filler{index}_{extra}")
            filler.provide("out", DATA_IF)
            filler.runnable("spin",
                            TimingEvent(ms(rng.choice([5, 10, 25]))),
                            lambda ctx: None,
                            wcet=us(rng.randint(20, 200)))
            app.add(filler.instantiate(f"f{index}_{extra}"))
            system.map(f"f{index}_{extra}", f"E{index}")
    system.set_root(app)
    system.configure_bus("can", bitrate_bps=500_000)
    return system


def run() -> list[dict]:
    rows = []
    for n_ecus in SIZES:
        system = build(n_ecus)
        sim = Simulator()
        system.build(sim)
        start = time.perf_counter()
        sim.run_until(HORIZON)
        elapsed = time.perf_counter() - start
        events = sim.executed
        rows.append({
            "ecus": n_ecus,
            "tasks": 5 * n_ecus,  # producer + consumer + 3 fillers each
            "events": events,
            "wall_s": elapsed,
            "events_per_s": events / elapsed if elapsed else None,
        })
    return rows


def check(rows: list[dict]) -> None:
    throughputs = [r["events_per_s"] for r in rows]
    assert min(throughputs) > max(throughputs) / 10, \
        "event throughput should not collapse with system size"
    for row in rows:
        assert row["events"] > 0


TITLE = "Scale: simulation throughput vs system size (1 s vehicle time)"


def bench_scale(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
