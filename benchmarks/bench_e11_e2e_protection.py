"""E11 — End-to-end protection of a signal path under corruption.

Claim (paper, Section 2/4): communication-level CRCs alone do not cover
the whole path from sender runnable to receiver runnable; end-to-end
protection at the COM level must detect corruption, sequence errors and
stale data regardless of where on the path they originate.

Setup: a 16-bit speed signal over CAN at 10 ms, receiver-side value
corruption injected from 50 ms to 150 ms (the classic RAM/gateway
corruption that a bus CRC cannot see).  We compare:

* an unprotected link: the stack happily delivers the corrupted value;
* an E2E-protected link (data-ID-salted CRC-8 + alive counter +
  reception timeout): every corrupted frame is blocked, the error is
  debounced into a DTC, and the last good value is substituted.

Metrics: deliveries, corrupted values reaching the application,
detection latency, and the post-fault verdict of the receiver.

Expected shape: the unprotected run delivers corrupted data for the
whole fault window; the protected run delivers zero corrupted values
and detects within one period.
"""

from _tables import print_table

from repro.faults import (CORRUPTION, ComSignalAdapter, Fault,
                          FaultInjector, ReferenceWorld)
from repro.com import (CanComAdapter, ComStack, PERIODIC, SignalSpec,
                       pack_sequentially)
from repro.network import CanBus, CanFrameSpec
from repro.sim import Simulator
from repro.units import ms

PERIOD = ms(10)
FAULT_START = ms(50)
FAULT_LEN = ms(100)
HORIZON = ms(300)
CORRUPT = 0xFFFF


def run_unprotected() -> dict:
    sim = Simulator()
    bus = CanBus(sim, 500_000)
    tx = ComStack(sim, CanComAdapter(
        bus.attach("A"), {"P": CanFrameSpec("P", 0x100)}), "A")
    rx = ComStack(sim, CanComAdapter(bus.attach("B"), {}), "B")
    tx.add_tx_pdu(pack_sequentially("P", 8, [SignalSpec("speed", 16)]),
                  mode=PERIODIC, period=PERIOD)
    rx.add_rx_pdu(pack_sequentially("P", 8, [SignalSpec("speed", 16)]))
    tx.write_signal("speed", 88)
    deliveries = []
    rx.on_signal("speed", deliveries.append)
    injector = FaultInjector(sim)
    injector.inject(ComSignalAdapter(rx, "speed"),
                    Fault(CORRUPTION, "speed", FAULT_START, FAULT_LEN,
                          params={"value": CORRUPT}))
    sim.run_until(HORIZON)
    corrupted = sum(1 for v in deliveries if v == CORRUPT)
    return {
        "link": "unprotected",
        "deliveries": len(deliveries),
        "corrupted_delivered": corrupted,
        "detection_ms": None,
        "dtc": None,
    }


def run_protected() -> dict:
    world = ReferenceWorld()
    world.injector.inject(
        ComSignalAdapter(world.rx, "speed"),
        Fault(CORRUPTION, "speed", FAULT_START, FAULT_LEN,
              params={"value": CORRUPT}))
    world.sim.run_until(HORIZON)
    metrics = world.metrics()
    first_error = min(r.time for r in
                      world.trace.records("e2e.crc_error"))
    snapshot = world.errors.snapshot()["speed_e2e"]
    return {
        "link": "E2E-protected",
        "deliveries": metrics["app_deliveries"],
        "corrupted_delivered": metrics["undetected_corrupted"],
        "detection_ms": (first_error - FAULT_START) / ms(1),
        "dtc": (f"0x{snapshot['dtc']:04X} "
                f"{'healed' if not snapshot['confirmed'] else 'confirmed'}"),
    }


def run() -> list[dict]:
    return [run_unprotected(), run_protected()]


def check(rows: list[dict]) -> None:
    unprotected = next(r for r in rows if r["link"] == "unprotected")
    protected = next(r for r in rows if r["link"] == "E2E-protected")
    # The unprotected link delivers corrupted data for the fault window.
    assert unprotected["corrupted_delivered"] >= FAULT_LEN // PERIOD - 1
    # The protected link delivers none, detects within one period, and
    # the DTC healed after the fault cleared.
    assert protected["corrupted_delivered"] == 0
    assert protected["deliveries"] > 0
    assert 0 < protected["detection_ms"] <= PERIOD / ms(1)
    assert protected["dtc"] == "0x4A01 healed"


TITLE = ("E11: corrupted deliveries with and without end-to-end "
         "signal protection")


def bench_e11_e2e_protection(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
