"""E13 — Scaling sweeps: deterministic parallel campaign execution.

Claim (paper, Section 4, read through the ROADMAP's scaling lens): an
integrated architecture's sweeps — fault campaigns, verification
fleets — are embarrassingly parallel over independent cells, so a
scheduler that shards them deterministically should convert cores into
wall-clock speedup *without changing a single byte of the report*.

Setup: the reference two-ECU campaign matrix replicated over several
fault onsets (every cell is an independent world), executed through
``repro.exec`` at ``--jobs`` 1, 2 and 4.  Per jobs level we report the
wall time, throughput (cells/second), the speedup over the serial run
and the campaign report digest.

Expected shape: identical digests at every jobs level (the engine's
determinism guarantee — seeds derive from the cell index, results merge
in plan order), and on a machine with >= 4 usable cores a >= 2x
speedup at 4 jobs.  On fewer cores the digest guarantee still holds;
the speedup column just flattens toward 1x, so the speedup assertion
is gated on the visible core count.
"""

import os
import time

from _tables import print_table

from repro.faults import ReferenceWorld, reference_cells, run_campaign
from repro.units import ms

HORIZON = ms(300)
#: Replicating the 5-kind reference matrix over these onsets yields an
#: independent-cell sweep large enough to amortize pool startup.
ONSETS = (ms(50), ms(60), ms(70), ms(80), ms(90), ms(100), ms(110),
          ms(120))
JOB_LEVELS = (1, 2, 4)


def scaling_cells():
    return [cell for onset in ONSETS
            for cell in reference_cells(onset=int(onset))]


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def run() -> list[dict]:
    cells = scaling_cells()
    rows = []
    serial_wall = None
    for jobs in JOB_LEVELS:
        started = time.perf_counter()
        report = run_campaign(ReferenceWorld, cells, horizon=HORIZON,
                              jobs=jobs)
        wall = time.perf_counter() - started
        if serial_wall is None:
            serial_wall = wall
        rows.append({
            "jobs": jobs,
            "cells": report.cells,
            "wall_s": round(wall, 3),
            "cells_per_s": round(report.cells / wall, 2),
            "speedup": round(serial_wall / wall, 2),
            "digest": report.digest()[:12],
        })
    return rows


def check(rows: list[dict]) -> None:
    # The determinism gate: every executor produced the same report.
    assert len({row["digest"] for row in rows}) == 1
    assert all(row["cells"] == len(scaling_cells()) for row in rows)
    # The scaling gate only binds where the cores exist to scale onto.
    if usable_cores() >= 4:
        four = [row for row in rows if row["jobs"] == 4]
        assert four and four[0]["speedup"] >= 2.0


TITLE = (f"E13: campaign scaling over {len(ONSETS) * 5} cells "
         f"({usable_cores()} usable core(s))")


def bench_e13_scaling(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
