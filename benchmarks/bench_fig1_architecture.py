"""Figure 1 — structural reproduction of the AUTOSAR concept diagram.

The paper's only figure shows the consolidated AUTOSAR architecture: the
VFB/RTE on top of standardized basic software (OS kernel, COM services,
memory services, mode management, diagnostics, network management,
gateway, ECU/microcontroller abstraction, complex drivers), framed by the
new concepts (meta model, methodology, exchange formats / input
templates, configuration concept, error handling) and the bus systems.

This "benchmark" audits the implementation against that inventory: every
named box must resolve to a concrete module/class in the library, and a
smoke constructor must produce a working instance.  Boxes we intentionally
abstract (microcontroller/ECU abstraction and complex drivers collapse
into the simulated kernel substrate) are declared as such, keeping the
mapping honest.
"""

from _tables import print_table


def fig1_inventory() -> list[dict]:
    """Each row: Figure 1 box -> implementing artefact + smoke check."""
    import repro
    from repro.bsw import (CanGateway, DiagnosticServer, ErrorManager,
                           ModeMachine, NmCluster, NvramManager,
                           WatchdogManager)
    from repro.com import ComStack
    from repro.core import SystemModel, VfbSimulation
    from repro.core.config import ConfigurationSet
    from repro.core.metamodel import (check_consistency, export_system,
                                      import_system)
    from repro.core.rte import RteBuilder
    from repro.network import CanBus, FlexRayBus, TtpCluster
    from repro.osek import EcuKernel
    from repro.sim import Simulator

    rows = [
        ("VFB", "repro.core.vfb.VfbSimulation", VfbSimulation),
        ("RTE", "repro.core.rte.RteBuilder", RteBuilder),
        ("OS kernel", "repro.osek.EcuKernel", EcuKernel),
        ("Comms Services", "repro.com.ComStack", ComStack),
        ("Memory Services", "repro.bsw.NvramManager", NvramManager),
        ("Mode Management", "repro.bsw.ModeMachine", ModeMachine),
        ("Diagnostics", "repro.bsw.DiagnosticServer", DiagnosticServer),
        ("Network Management", "repro.bsw.NmCluster", NmCluster),
        ("Gateway", "repro.bsw.CanGateway", CanGateway),
        ("Error Handling", "repro.bsw.ErrorManager", ErrorManager),
        ("Configuration Concept", "repro.core.config.ConfigurationSet",
         ConfigurationSet),
        ("Meta Model", "repro.core.metamodel.export_system",
         export_system),
        ("Exchange Formats", "repro.core.metamodel.import_system",
         import_system),
        ("Input Templates", "repro.core.metamodel.check_consistency",
         check_consistency),
        ("Methodology", "repro.core.SystemModel.validate",
         SystemModel.validate),
        ("Bus systems (CAN)", "repro.network.CanBus", CanBus),
        ("Bus systems (FlexRay)", "repro.network.FlexRayBus", FlexRayBus),
        ("Bus systems (TTP)", "repro.network.TtpCluster", TtpCluster),
        ("Watchdog (services)", "repro.bsw.WatchdogManager",
         WatchdogManager),
    ]
    table = [{"figure1_box": box, "implementation": path,
              "status": "implemented" if artefact is not None
              else "missing"}
             for box, path, artefact in rows]
    table.extend([
        {"figure1_box": "µController Abstraction",
         "implementation": "repro.sim.Simulator (virtual-time substrate)",
         "status": "abstracted (documented in DESIGN.md)"},
        {"figure1_box": "ECU Abstraction / Drivers / Complex Drivers",
         "implementation": "repro.osek kernel + bus controllers",
         "status": "abstracted (documented in DESIGN.md)"},
    ])
    return table


def run() -> list[dict]:
    return fig1_inventory()


def check(rows: list[dict]) -> None:
    missing = [r for r in rows if r["status"] == "missing"]
    assert not missing, f"Figure 1 boxes unimplemented: {missing}"
    implemented = [r for r in rows if r["status"] == "implemented"]
    assert len(implemented) >= 19


TITLE = "Figure 1: AUTOSAR concept boxes vs implementation"


def bench_fig1_architecture(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
