"""E4 — End-to-end latency: analytic bounds vs simulation.

Claim (paper, Section 3): rich-component methodology must "allow to
assess realizability of end-to-end latencies at system level … based on
distributed real-time schedulability analysis for FlexRay- and CAN
bus-based target architectures".

Setup: a sensor -> controller -> actuator chain deployed on three ECUs.
The sensor samples every 10 ms; data crosses the bus twice (direct
transmission).  A fourth ECU optionally injects higher-priority bus load.
For CAN and FlexRay, with and without load, we compare the analytic
end-to-end bound (task RTA + CAN message RTA / FlexRay slot bound,
composed by :class:`repro.analysis.e2e.Chain`) with the worst latency
observed in simulation, measured from the sensor's output write to the
actuator's execution.

Expected shape: the bound always holds; on CAN the observed latency grows
with load while the FlexRay static-slot latency is load-independent.
"""

from _tables import print_table

from repro.analysis import Chain, Stage, can_rta, flexray_rta
from repro.core import (Composition, DataReceivedEvent,
                        SenderReceiverInterface, SwComponent, SystemModel,
                        TimingEvent, UINT16)
from repro.network import CanFrameSpec, FlexRayConfig, StaticSlotAssignment
from repro.sim import Simulator
from repro.units import ms, us

DATA_IF = SenderReceiverInterface("data_if", {"v": UINT16})
SENSOR_PERIOD = ms(10)
LOAD_PERIOD = ms(2)
HORIZON = ms(500)
CTRL_WCET = us(400)
ACT_WCET = us(300)
#: pinned CAN identifiers (load wins arbitration).
IDS = {"load.out": 0x050, "sensor.out": 0x200, "ctrl.out": 0x210}


def build_system(bus_kind: str, with_load: bool, probe: dict):
    sensor = SwComponent("Sensor")
    sensor.provide("out", DATA_IF)

    def sample(ctx):
        ctx.state.setdefault("seq", 0)
        ctx.state["seq"] = (ctx.state["seq"] + 1) % 65536
        probe["writes"][ctx.state["seq"]] = ctx.now
        ctx.write("out", "v", ctx.state["seq"])

    sensor.runnable("sample", TimingEvent(SENSOR_PERIOD), sample,
                    wcet=us(200))

    ctrl = SwComponent("Controller")
    ctrl.require("in", DATA_IF)
    ctrl.provide("out", DATA_IF)
    ctrl.runnable("control", DataReceivedEvent("in", "v"),
                  lambda ctx: ctx.write("out", "v", ctx.read("in", "v")),
                  wcet=CTRL_WCET)

    act = SwComponent("Actuator")
    act.require("in", DATA_IF)

    def apply(ctx):
        seq = ctx.read("in", "v")
        write_time = probe["writes"].get(seq)
        if write_time is not None:
            probe["latencies"].append(ctx.now - write_time)

    act.runnable("apply", DataReceivedEvent("in", "v"), apply,
                 wcet=ACT_WCET)

    app = Composition("ChainApp")
    app.add(sensor.instantiate("sensor"))
    app.add(ctrl.instantiate("ctrl"))
    app.add(act.instantiate("act"))
    app.connect("sensor", "out", "ctrl", "in")
    app.connect("ctrl", "out", "act", "in")

    system = SystemModel(f"chain-{bus_kind}")
    for ecu in ("E1", "E2", "E3", "E4"):
        system.add_ecu(ecu)
    mapping = {"sensor": "E1", "ctrl": "E2", "act": "E3"}

    # The load components are always present so both cases share the
    # identical bus configuration (same CAN ids, same FlexRay slot
    # table); "no load" just delays the pump past the horizon.
    load_src = SwComponent("LoadSource")
    load_src.provide("out", DATA_IF)

    def pump(ctx):
        ctx.state["n"] = (ctx.state.get("n", 0) + 1) % 65536
        ctx.write("out", "v", ctx.state["n"])

    pump_offset = 0 if with_load else HORIZON + ms(100)
    load_src.runnable("pump", TimingEvent(LOAD_PERIOD, offset=pump_offset),
                      pump, wcet=us(50))
    load_sink = SwComponent("LoadSink")
    load_sink.require("in", DATA_IF)
    app.add(load_src.instantiate("load"))
    app.add(load_sink.instantiate("sink"))
    app.connect("load", "out", "sink", "in")
    mapping.update({"load": "E4", "sink": "E2"})

    system.set_root(app)
    for instance, ecu in mapping.items():
        system.map(instance, ecu)
    # Idle instances still need a mapping when absent from `mapping`.
    instances, __ = app.flatten()
    for instance in instances:
        if instance.name not in mapping:
            system.map(instance.name, "E4")
    if bus_kind == "can":
        system.configure_bus("can", bitrate_bps=500_000)
        for pdu, can_id in IDS.items():
            system.set_can_id(pdu, can_id)
    else:
        system.configure_bus("flexray", slot_length=us(100),
                             n_static_slots=4)
    return system


def analytic_bound(bus_kind: str, with_load: bool) -> int:
    if bus_kind == "can":
        frames = [CanFrameSpec("sensor.out", IDS["sensor.out"], dlc=3,
                               period=SENSOR_PERIOD),
                  CanFrameSpec("ctrl.out", IDS["ctrl.out"], dlc=3,
                               period=SENSOR_PERIOD)]
        if with_load:
            frames.append(CanFrameSpec("load.out", IDS["load.out"], dlc=3,
                                       period=LOAD_PERIOD))
        result = can_rta.analyze(frames, 500_000)
        hop1 = result.wcrt["sensor.out"]
        hop2 = result.wcrt["ctrl.out"]
    else:
        config = FlexRayConfig(slot_length=us(100), n_static_slots=4)
        # RTE assigns slots in sorted PDU order; both chain PDUs get a
        # worst-case bound independent of the other slots.
        hop1 = flexray_rta.static_latency_bound(
            config, StaticSlotAssignment(4, "E1", "sensor.out"))
        hop2 = flexray_rta.static_latency_bound(
            config, StaticSlotAssignment(4, "E2", "ctrl.out"))
    chain = Chain("sensor-to-actuator", [
        Stage("frame1", hop1),
        Stage("ctrl.control", CTRL_WCET),
        Stage("frame2", hop2),
        Stage("act.apply", ACT_WCET),
    ])
    return chain.worst_case_latency()


def run_case(bus_kind: str, with_load: bool) -> dict:
    probe = {"writes": {}, "latencies": []}
    system = build_system(bus_kind, with_load, probe)
    sim = Simulator()
    system.build(sim)
    sim.run_until(HORIZON)
    observed = max(probe["latencies"])
    bound = analytic_bound(bus_kind, with_load)
    return {
        "bus": bus_kind,
        "load": "yes" if with_load else "no",
        "observed_max_us": observed / us(1),
        "analytic_bound_us": bound / us(1),
        "bound_holds": observed <= bound,
        "tightness": bound / observed,
    }


def run() -> list[dict]:
    return [run_case(bus, load)
            for bus in ("can", "flexray") for load in (False, True)]


def check(rows: list[dict]) -> None:
    assert all(r["bound_holds"] for r in rows)
    can_rows = {r["load"]: r for r in rows if r["bus"] == "can"}
    fr_rows = {r["load"]: r for r in rows if r["bus"] == "flexray"}
    # CAN latency grows with load; FlexRay static latency does not.
    assert can_rows["yes"]["observed_max_us"] > \
        can_rows["no"]["observed_max_us"]
    assert fr_rows["yes"]["observed_max_us"] == \
        fr_rows["no"]["observed_max_us"]
    # Bounds are usable, not wildly pessimistic.
    assert all(r["tightness"] < 5.0 for r in rows)


TITLE = "E4: end-to-end latency — simulation vs analytic bound"


def bench_e4_e2e_latency(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
