"""E10 — Error handling use cases: broken sensor, communication error,
memory failure.

Claim (paper, Section 2): AUTOSAR's consistent error handling "supports
effective communication to application layer functionality and can also
be used as a means for mode management and diagnostic purposes.  Use
cases include broken sensors, communication errors and memory failures."

Setup: one ECU runs the full chain — monitors report to the error
manager (debounce 3), confirmed errors trigger degraded modes and land in
diagnostic memory.  We inject all three use-case faults and measure
detection latency (fault injection to DEM confirmation), the mode
reaction, and the diagnostic record.

Expected shape: every fault detected within its monitor period x
debounce threshold; exactly one mode degradation per confirmed fault
class; all three DTCs readable and clearable over the diagnostic service.
"""

from _tables import print_table

from repro.bsw import (CLEAR_DTC, DiagnosticServer, ErrorEvent,
                       ErrorManager, FAILED, ModeMachine, NvramManager,
                       PASSED, READ_DTC)
from repro.com import (CanComAdapter, ComStack, PERIODIC, SignalSpec,
                       pack_sequentially)
from repro.network import CanBus, CanFrameSpec
from repro.sim import Simulator
from repro.units import ms

MONITOR_PERIOD = ms(5)
THRESHOLD = 3
FAULTS = {
    "sensor_stuck": {"dtc": 0x1111, "inject_at": ms(50)},
    "com_timeout": {"dtc": 0x2222, "inject_at": ms(100)},
    "nvram_corrupt": {"dtc": 0x3333, "inject_at": ms(150)},
}


def run() -> list[dict]:
    sim = Simulator()
    dem = ErrorManager("BodyECU", now=lambda: sim.now)
    for name, config in FAULTS.items():
        dem.register(ErrorEvent(name, dtc=config["dtc"],
                                threshold=THRESHOLD))
    modes = ModeMachine("body", ["normal", "degraded"], "normal")
    modes.allow("normal", "degraded")
    modes.allow("degraded", "normal")
    modes.bind_clock(lambda: sim.now)
    confirmations: dict[str, int] = {}

    def on_change(event, confirmed):
        if confirmed:
            confirmations.setdefault(event.name, sim.now)
            modes.request("degraded")

    dem.on_status_change(on_change)
    diag = DiagnosticServer(dem)

    # --- use case 1: broken sensor (plausibility monitor) -------------
    def sensor_monitor():
        broken = sim.now >= FAULTS["sensor_stuck"]["inject_at"]
        dem.report("sensor_stuck", FAILED if broken else PASSED,
                   context={"raw": 0 if broken else 42})
        sim.schedule(MONITOR_PERIOD, sensor_monitor)

    sensor_monitor()

    # --- use case 2: communication error (COM rx deadline) ------------
    bus = CanBus(sim, 500_000)
    pdu = pack_sequentially("P", 8, [SignalSpec("speed", 16,
                                                timeout=ms(12))])
    tx = ComStack(sim, CanComAdapter(
        bus.attach("TX"), {"P": CanFrameSpec("P", 0x100)}), "TX")
    rx = ComStack(sim, CanComAdapter(bus.attach("BodyECU"), {}),
                  "BodyECU")
    tx.add_tx_pdu(pack_sequentially("P", 8, [SignalSpec(
        "speed", 16, timeout=ms(12))]), mode=PERIODIC, period=ms(5))
    rx.add_rx_pdu(pdu)

    def com_monitor():
        timed_out = "speed" in rx.timed_out
        dem.report("com_timeout", FAILED if timed_out else PASSED)
        sim.schedule(MONITOR_PERIOD, com_monitor)

    com_monitor()
    sim.schedule(FAULTS["com_timeout"]["inject_at"],
                 bus.controllers["TX"].set_bus_off)

    # --- use case 3: memory failure (NVRAM CRC) ------------------------
    nv = NvramManager("BodyECU",
                      on_failure=lambda block, outcome:
                      dem.report("nvram_corrupt", FAILED))
    nv.define("calibration", 16)
    nv.write("calibration", b"CALDATA")
    sim.schedule(FAULTS["nvram_corrupt"]["inject_at"],
                 lambda: nv.block("calibration").corrupt(offset=2))

    def nvram_monitor():
        data = nv.read("calibration")  # CRC checked on every read
        # After a loss the block holds defaults, which the application
        # detects as missing calibration — a persistent failure.
        dem.report("nvram_corrupt",
                   PASSED if data[:7] == b"CALDATA" else FAILED)
        sim.schedule(MONITOR_PERIOD, nvram_monitor)

    nvram_monitor()

    sim.run_until(ms(300))

    rows = []
    for name, config in FAULTS.items():
        confirmed_at = confirmations.get(name)
        rows.append({
            "fault": name,
            "dtc": hex(config["dtc"]),
            "injected_ms": config["inject_at"] / ms(1),
            "confirmed_ms": (confirmed_at / ms(1)
                             if confirmed_at is not None else None),
            "detection_ms": ((confirmed_at - config["inject_at"]) / ms(1)
                             if confirmed_at is not None else None),
        })
    stored = diag.handle(READ_DTC)["dtcs"]
    cleared = diag.handle(CLEAR_DTC)["cleared"]
    rows.append({"fault": "diagnostics", "dtc": f"{len(stored)} stored",
                 "injected_ms": None, "confirmed_ms": None,
                 "detection_ms": float(cleared)})
    rows.append({"fault": "mode", "dtc": modes.current,
                 "injected_ms": None, "confirmed_ms": None,
                 "detection_ms": None})
    return rows


def check(rows: list[dict]) -> None:
    fault_rows = [r for r in rows if r["fault"] in FAULTS]
    assert len(fault_rows) == 3
    worst_allowed = (THRESHOLD + 3) * MONITOR_PERIOD / ms(1)
    for row in fault_rows:
        assert row["confirmed_ms"] is not None, f"{row['fault']} missed"
        assert 0 < row["detection_ms"] <= worst_allowed, row
    diag_row = next(r for r in rows if r["fault"] == "diagnostics")
    assert diag_row["dtc"] == "3 stored"
    assert diag_row["detection_ms"] == 3.0  # all three cleared
    mode_row = next(r for r in rows if r["fault"] == "mode")
    assert mode_row["dtc"] == "degraded"


TITLE = ("E10: detection latency and reactions for the three "
         "error-handling use cases")


def bench_e10_error_handling(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
