"""Ablation A2 — CAN identifier assignment policy.

Design choice under test: the RTE/DSE assigns CAN identifiers
deadline-monotonically (:func:`repro.dse.priority.assign_can_ids`).  On
CAN the identifier *is* the priority, so the assignment policy decides
schedulability at a given bus load — exactly the timing dimension the
paper says AUTOSAR leaves unspecified (Section 2, limitation 2).

Setup: 300 seeded random frame sets (8-14 frames, mixed periods) at
roughly 55-80% bus load.  Each set is analysed under three id policies:
deadline-monotonic, random, and inverse-DM (pessimal).  We report the
fraction of sets schedulable per policy.

Expected shape: DM >= random >> inverse; DM never loses to random on the
same set (it is the optimal fixed-priority order for these constrained
deadlines).
"""

import random

from _tables import print_table

from repro.analysis.can_rta import analyze
from repro.dse import assign_can_ids
from repro.network import CanFrameSpec
from repro.units import ms

SEED = 7
TRIALS = 300
BITRATE = 250_000
PERIODS_MS = [5, 10, 20, 50, 100]


def random_frame_set(rng: random.Random) -> list[CanFrameSpec]:
    count = rng.randint(8, 14)
    frames = []
    for index in range(count):
        period = ms(rng.choice(PERIODS_MS))
        frames.append(CanFrameSpec(f"f{index}", 0x700 - index,
                                   dlc=rng.randint(1, 8), period=period))
    return frames


def with_ids(frames: list[CanFrameSpec], order: list[int]
             ) -> list[CanFrameSpec]:
    return [CanFrameSpec(f.name, 0x100 + can_id, dlc=f.dlc,
                         period=f.period, deadline=f.deadline)
            for f, can_id in zip(frames, order)]


def run() -> list[dict]:
    rng = random.Random(SEED)
    results = {"deadline-monotonic": 0, "random": 0, "inverse-dm": 0}
    dm_vs_random_regressions = 0
    usable_trials = 0
    while usable_trials < TRIALS:
        frames = random_frame_set(rng)
        utilization = analyze(
            assign_can_ids(frames), BITRATE).utilization
        if not 0.55 <= utilization <= 0.80:
            continue
        usable_trials += 1
        dm = assign_can_ids(frames)
        dm_ok = analyze(dm, BITRATE).schedulable
        order = list(range(len(frames)))
        rng.shuffle(order)
        random_ok = analyze(with_ids(frames, order), BITRATE).schedulable
        # inverse DM: longest deadline gets the best id.
        by_deadline = sorted(range(len(frames)),
                             key=lambda i: -frames[i].deadline)
        inverse_ids = [0] * len(frames)
        for rank, index in enumerate(by_deadline):
            inverse_ids[index] = rank
        inverse_ok = analyze(with_ids(frames, inverse_ids),
                             BITRATE).schedulable
        results["deadline-monotonic"] += dm_ok
        results["random"] += random_ok
        results["inverse-dm"] += inverse_ok
        if random_ok and not dm_ok:
            dm_vs_random_regressions += 1
    rows = [{"id_policy": policy,
             "schedulable_fraction": count / TRIALS}
            for policy, count in results.items()]
    rows.append({"id_policy": "random-beats-DM cases",
                 "schedulable_fraction": dm_vs_random_regressions})
    return rows


def check(rows: list[dict]) -> None:
    by_policy = {r["id_policy"]: r["schedulable_fraction"] for r in rows}
    dm = by_policy["deadline-monotonic"]
    rnd = by_policy["random"]
    inverse = by_policy["inverse-dm"]
    assert dm >= rnd >= inverse
    assert dm > inverse + 0.2, "the policy must matter at this load"
    assert by_policy["random-beats-DM cases"] == 0, \
        "DM is optimal for constrained deadlines: no set may be " \
        "schedulable under a random order but not under DM"


TITLE = ("A2 (ablation): fraction of frame sets schedulable per CAN id "
         "assignment policy")


def bench_a2_can_id_assignment(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
