"""E5 — Federated to integrated: ECU / wire / contact reduction.

Claim (paper, Section 4): integrating the distributed application
subsystems "into a unified automotive architecture" brings "a consequent
reduction in the number of Electronic Control Units, physical wires and
physical contact points".

Setup: a synthetic vehicle of 4 DASes and 30 supplier functions (tasks
with ASIL levels), generated deterministically.  We compare three
architectures: the federated baseline (function-per-ECU, bus-per-domain,
central gateway), an integrated design with strict criticality
segregation (no isolation mechanisms assumed), and a fully mixed-
criticality integrated design (timing protection available).  Every
integrated ECU is verified schedulable by response-time analysis.

Expected shape: integrated < segregated < federated on every physical
metric; mixed-criticality integration (enabled by timing isolation, the
paper's Section 1 argument) buys additional ECUs over segregation.
"""

import random

from _tables import print_table

from repro.dse import AllocatableTask, consolidation_report
from repro.osek import TaskSpec
from repro.units import ms

SEED = 2008
N_FUNCTIONS = 30
DASES = ["powertrain", "chassis", "body", "adas"]
CRITICALITY = {"powertrain": ["B", "C"], "chassis": ["C", "D"],
               "body": ["QM", "A"], "adas": ["A", "B"]}
PERIODS_MS = [5, 10, 20, 50, 100, 200]


def vehicle_workload() -> list:
    rng = random.Random(SEED)
    tasks = []
    for index in range(N_FUNCTIONS):
        das = DASES[index % len(DASES)]
        period = ms(rng.choice(PERIODS_MS))
        utilization = rng.uniform(0.02, 0.15)
        wcet = max(1, round(period * utilization))
        criticality = rng.choice(CRITICALITY[das])
        tasks.append(AllocatableTask(
            TaskSpec(f"{das}_{index}", wcet=wcet, period=period,
                     criticality=criticality), das))
    return tasks


def run() -> list[dict]:
    return consolidation_report(vehicle_workload())


def check(rows: list[dict]) -> None:
    by_arch = {r["architecture"]: r for r in rows}
    federated = by_arch["federated"]
    segregated = by_arch["integrated-segregated"]
    integrated = by_arch["integrated"]
    for metric in ("ecus", "buses", "wires", "contacts"):
        assert integrated[metric] <= segregated[metric] < federated[metric]
    # Consolidation is massive: paper claims a *substantial* reduction.
    assert integrated["ecus"] <= federated["ecus"] // 4
    # The price: consolidated CPUs run much hotter.
    assert integrated["max_cpu_utilization"] > \
        federated["max_cpu_utilization"]


TITLE = ("E5: federated vs integrated architecture for a 30-function, "
         "4-DAS vehicle")


def bench_e5_consolidation(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
