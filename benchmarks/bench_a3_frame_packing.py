"""Ablation A3 — signal-to-frame packing.

Design choice under test: the COM layer packs same-sender, same-period
signals into shared frames (:func:`repro.com.packing.pack_signals`)
instead of sending one signal per frame.  Packing amortizes the ~47-bit
CAN frame overhead over up to 64 payload bits — the difference decides
whether a realistic signal population fits a classic 125/250/500 kbit/s
body bus at all.

Setup: seeded populations of 40-160 small signals (1-16 bits, periods
10-500 ms, 6 sender nodes).  For each population we compute the bus
bandwidth consumed packed vs unpacked, the frame count, and whether the
set is schedulable on a 125 kbit/s bus under DM ids.

Expected shape: packing cuts bandwidth by a factor of ~3-6 and keeps the
populations schedulable on 125 kbit/s where the unpacked variants blow
past 100% utilization.
"""

import random

from _tables import print_table

from repro.analysis.can_rta import analyze, bus_utilization
from repro.com import PackableSignal, SignalSpec, pack_signals
from repro.dse import assign_can_ids
from repro.network import CanFrameSpec
from repro.units import ms

SEED = 11
BITRATE = 125_000
PERIODS_MS = [10, 20, 50, 100, 200, 500]
SENDERS = [f"N{i}" for i in range(6)]


def population(rng: random.Random, count: int) -> list[PackableSignal]:
    signals = []
    for index in range(count):
        signals.append(PackableSignal(
            SignalSpec(f"s{index}", rng.randint(1, 16)),
            ms(rng.choice(PERIODS_MS)),
            rng.choice(SENDERS)))
    return signals


def frames_of(packed) -> list[CanFrameSpec]:
    frames = []
    for index, frame in enumerate(packed):
        size = (sum(m.spec.width_bits for m in frame.ipdu.mappings) + 7) \
            // 8
        frames.append(CanFrameSpec(frame.ipdu.name, 0x700 - index,
                                   dlc=min(8, size), period=frame.period))
    return assign_can_ids(frames)


def unpacked_frames(signals) -> list[CanFrameSpec]:
    """One frame per signal (the no-packing baseline)."""
    frames = []
    for index, signal in enumerate(signals):
        dlc = (signal.spec.width_bits + 7) // 8
        frames.append(CanFrameSpec(signal.spec.name, 0x700 - index,
                                   dlc=dlc, period=signal.period))
    return assign_can_ids(frames)


def run() -> list[dict]:
    rng = random.Random(SEED)
    rows = []
    for count in (40, 80, 120, 160):
        signals = population(rng, count)
        packed_set = frames_of(pack_signals(signals))
        unpacked_set = unpacked_frames(signals)
        packed_u = bus_utilization(packed_set, BITRATE)
        unpacked_u = bus_utilization(unpacked_set, BITRATE)
        rows.append({
            "signals": count,
            "frames_packed": len(packed_set),
            "frames_unpacked": count,
            "packed_utilization": packed_u,
            "unpacked_utilization": unpacked_u,
            "saving_factor": unpacked_u / packed_u,
            "packed_fits_125k": analyze(packed_set, BITRATE).schedulable,
            "unpacked_fits_125k": unpacked_u <= 1.0
            and analyze(unpacked_set, BITRATE).schedulable,
        })
    return rows


def check(rows: list[dict]) -> None:
    for row in rows:
        assert row["frames_packed"] < row["frames_unpacked"]
        assert row["saving_factor"] > 1.0
    # Savings grow with signal density (fuller frames amortize better).
    assert rows[-1]["saving_factor"] > 2.0
    assert rows[-1]["saving_factor"] > rows[0]["saving_factor"]
    # Packing extends the feasible population: 120 signals fit packed,
    # while the unpacked variant already fails at 80 (and the 160-signal
    # population exceeds the bus either way).
    assert rows[2]["packed_fits_125k"]
    assert not rows[1]["unpacked_fits_125k"]
    assert not rows[-1]["unpacked_fits_125k"]


TITLE = ("A3 (ablation): bandwidth and schedulability with vs without "
         "signal packing")


def bench_a3_frame_packing(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
