"""Ablation A1 — TDMA guard times vs clock precision.

Design choice under test: time-triggered slot isolation (E3, E6) assumes
every node starts transmitting inside its own slot.  That holds only if
the guard time around each slot exceeds the cluster *precision* — the
worst pairwise clock deviation accumulated between resynchronizations
(:func:`repro.sim.clock.precision`).

Setup: 6 nodes with symmetric crystal drifts transmit in consecutive
slots (300 us slot, of which ``guard`` is idle margin at each end).
Between resyncs (every 10 rounds) each node's local clock drifts; a node
whose local slot start strays into a neighbour's transmission window
collides.  We sweep drift and compare the *analytic* verdict
(precision <= guard) against the simulated collision count.

Expected shape: zero collisions exactly while the analytic condition
holds; collisions appear once drift pushes precision past the guard —
the analysis is a safe and tight design rule for guard sizing.
"""

from _tables import print_table

from repro.sim.clock import DriftingClock, precision
from repro.units import us

N_NODES = 6
SLOT = us(300)
GUARD = us(6)  # idle margin at each slot end
ROUNDS_PER_RESYNC = 10
RESYNCS = 20
DRIFTS_PPM = [10, 50, 100, 200, 400, 800]


def simulate_collisions(drift_ppm: float) -> int:
    """Count slot overlaps across RESYNCS resynchronization intervals."""
    # Alternating fast/slow crystals: worst pairwise divergence.
    clocks = [DriftingClock(drift_ppm if i % 2 == 0 else -drift_ppm)
              for i in range(N_NODES)]
    round_length = N_NODES * SLOT
    collisions = 0
    for resync in range(RESYNCS):
        base = resync * ROUNDS_PER_RESYNC * round_length
        for clock in clocks:
            clock.resynchronize(base)
        for round_index in range(ROUNDS_PER_RESYNC):
            start_of_round = base + round_index * round_length
            windows = []
            for node, clock in enumerate(clocks):
                nominal = start_of_round + node * SLOT + GUARD
                error = clock.local_time(nominal) - nominal
                tx_start = nominal + error
                tx_end = tx_start + SLOT - 2 * GUARD
                windows.append((tx_start, tx_end))
            for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
                if e1 > s2:
                    collisions += 1
    return collisions


def run() -> list[dict]:
    resync_interval = ROUNDS_PER_RESYNC * N_NODES * SLOT
    rows = []
    for drift in DRIFTS_PPM:
        clocks = [DriftingClock(drift if i % 2 == 0 else -drift)
                  for i in range(N_NODES)]
        analytic = precision(clocks, resync_interval)
        rows.append({
            "drift_ppm": drift,
            "precision_us": analytic / us(1),
            "guard_us": 2 * GUARD / us(1),
            "analytic_safe": analytic <= 2 * GUARD,
            "simulated_collisions": simulate_collisions(drift),
        })
    return rows


def check(rows: list[dict]) -> None:
    for row in rows:
        if row["analytic_safe"]:
            assert row["simulated_collisions"] == 0, row
    # The sweep must cross the boundary: safe cases and unsafe cases.
    assert any(r["analytic_safe"] for r in rows)
    unsafe = [r for r in rows if not r["analytic_safe"]]
    assert unsafe and unsafe[-1]["simulated_collisions"] > 0, \
        "large drift must eventually produce collisions"


TITLE = ("A1 (ablation): slot collisions vs clock drift — guard-time "
         "design rule")


def bench_a1_clock_precision(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
