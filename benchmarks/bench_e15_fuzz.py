"""E15 — Coverage-guided fuzzing of the verification oracle.

Claim (methodology, extending E12): a coverage-guided mutation loop
over the seeded system generator reaches analysis behaviours that
random sampling never visits.  When this bench first shipped, the
200-execution canonical campaign reproduced a genuine soundness
defect in the TDMA response bound (single-demand supply term vs
queued-activation backlog) that 635 random checks in E12 missed, and
the shrinker reduced it to a 5-component counterexample.  That defect
is now fixed (multi-activation busy window, E16), the three shrunk
seeds are ``status: "fixed"`` corpus regressions, and the same
campaign runs **clean** — which is exactly the property this bench
pins: coverage still grows past the seed plateau (the guidance works)
while findings stay at zero (the oracle is sound against everything
the mutators — including the fault-scenario ones — can reach).

Setup: the canonical campaign, ``repro fuzz --seed 7 --budget 200``
(16 seed systems, then rounds of 8 corpus mutants admitted on new
feedback-signature tokens).  Rows are the coverage curve milestones
plus one row per finding with its shrink ratio (normally none).  The
check asserts the properties CI relies on: coverage grows past the
seed plateau, zero findings against the fixed oracle, and the corpus
digest matches the pinned acceptance value (which the jobs-parity CI
step independently reproduces at ``--jobs 2``).
"""

from _tables import print_table

from repro.verify.fuzz import fuzz
from repro.verify.shrink import system_size

SEED = 7
BUDGET = 200
#: The --jobs 1 == --jobs 4 acceptance digest pinned in EXPERIMENTS.md.
PINNED_DIGEST = "e8301d8aee44208f2650b38d30635338a99853522d29d1984954b2565fd5aa89"


def run() -> list[dict]:
    report = fuzz(seed=SEED, budget=BUDGET, jobs=1)
    rows = []
    curve = report.coverage_curve
    milestones = {curve[0][0], curve[len(curve) // 2][0], curve[-1][0]}
    for execs, tokens in curve:
        if execs in milestones:
            rows.append({"row": f"coverage @ {execs} execs",
                         "value": f"{tokens} tokens"})
    rows.append({"row": "corpus", "value": f"{len(report.corpus)} systems"})
    for finding in report.findings:
        kind, detail, subject = finding.key
        shrink = finding.shrink
        minimal = system_size(shrink.system)
        ratio = finding.original_size / max(1, minimal)
        rows.append({
            "row": f"finding {kind}:{detail} {subject}",
            "value": (f"{finding.original_size} -> {minimal} components "
                      f"({ratio:.1f}x, {shrink.probes} probes, "
                      f"{'minimal' if shrink.complete else 'INCOMPLETE'})"),
        })
    rows.append({"row": "corpus digest", "value": report.digest()[:16]})
    rows.append({"row": "_digest_full", "value": report.digest()})
    rows.append({"row": "_curve_first",
                 "value": str(curve[0][1])})
    rows.append({"row": "_curve_last", "value": str(curve[-1][1])})
    rows.append({"row": "_unshrunk", "value": str(len(report.unshrunk))})
    rows.append({"row": "_findings", "value": str(len(report.findings))})
    return rows


def check(rows: list[dict]) -> None:
    by_row = {row["row"]: row["value"] for row in rows}
    # Guidance earns its keep: coverage grows well past the seed batch.
    assert int(by_row["_curve_last"]) > int(by_row["_curve_first"])
    # The TDMA bound defect is fixed: the campaign that once found it
    # (and anything else the mutators reach) now runs clean.
    assert by_row["_findings"] == "0"
    assert by_row["_unshrunk"] == "0"
    # Determinism: the digest matches the pinned acceptance value.
    assert by_row["_digest_full"] == PINNED_DIGEST


TITLE = f"E15: coverage-guided fuzz campaign (seed {SEED}, budget {BUDGET})"


def bench_e15_fuzz(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, [r for r in rows if not r["row"].startswith("_")])


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, [r for r in rows if not r["row"].startswith("_")])
