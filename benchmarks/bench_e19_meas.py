"""E19 — Measurement & calibration plane: determinism + mass-trace I/O.

Claims:

* **Determinism** (asserted on every run, quick or full): the A2L-like
  registry digest is byte-stable across rebuilds; the DAQ measurement
  digest is byte-identical for ``jobs=1`` and ``jobs=4``; an MTF store
  round-trips every record it was given.
* **Throughput** (gated in full mode only — CI machines make timing
  assertions flaky): the chunked columnar MTF writer sustains at least
  ``MTF_SPEEDUP_FLOOR``x the events/sec of the JSONL spill path on the
  same record stream.
* **Overhead** (full mode only): attaching a measurement service
  without running a DAQ list costs at most ``DETACHED_OVERHEAD_CEIL``
  of the bare simulation's wall time — observability that is not used
  is (nearly) free, the property E14 pins for the obs layer.

Every run persists a machine-readable trajectory to
``BENCH_e19_meas.json`` at the repo root: raw seconds, events/sec,
speedups, digests and gate verdicts.
"""

import argparse
import json
import os
import tempfile
import time

from _tables import print_table

from repro.meas.batch import measure_models
from repro.meas.mtf import MtfReader, MtfWriter
from repro.meas.registry import build_registry
from repro.meas.service import MeasurementService
from repro.sim.trace import Record, jsonl_spill
from repro.units import ms, us
from repro.verify.generator import generate, generate_many
from repro.verify.oracle import build_system

SEED = 7
MTF_SPEEDUP_FLOOR = 3.0
DETACHED_OVERHEAD_CEIL = 1.05
REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_e19_meas.json")


# ----------------------------------------------------------------------
# Determinism (asserted on every run, quick or full)
# ----------------------------------------------------------------------
def _registry_parity(seeds: int) -> list[str]:
    """Registry digests stable across independent rebuilds."""
    digests = []
    for seed in range(seeds):
        first = build_registry(generate(seed, "small")).digest()
        second = build_registry(generate(seed, "small")).digest()
        assert first == second, f"registry digest unstable: seed {seed}"
        digests.append(first)
    assert len(set(digests)) == seeds, "distinct systems, equal digests"
    return digests


def _daq_parity(systems: int, period: int) -> str:
    """jobs=1 and jobs=4 DAQ runs digest byte-identically."""
    population = list(generate_many(SEED, systems, "small"))
    serial = measure_models(population, period=period, horizon=ms(50))
    parallel = measure_models(population, period=period, horizon=ms(50),
                              jobs=4)
    assert serial.digest() == parallel.digest(), \
        "DAQ digest differs between jobs=1 and jobs=4"
    assert serial.sample_count == parallel.sample_count > 0
    return serial.digest()


def _mtf_roundtrip(records: list[Record], path: str) -> None:
    """Write -> seek -> read returns exactly what went in."""
    with MtfWriter(path, chunk_records=1024) as writer:
        writer.write_batch(records)
    with MtfReader(path) as reader:
        assert reader.records == len(records)
        total = sum(len(reader.read(signal))
                    for signal in reader.signals())
        assert total == len(records), "MTF round-trip lost records"
        # A one-chunk time slice must not touch every block.
        signal = reader.signals()[0]
        reader.blocks_read = 0
        reader.read(signal, start=0, end=0)
        assert reader.blocks_read <= 1


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------
def _record_stream(count: int) -> list[Record]:
    """A spill-shaped stream over a handful of hot signals."""
    return [Record(i * 100, "task.complete", f"T{i % 8}",
                   {"response": i % 1000})
            for i in range(count)]


def _time_spill(records: list[Record], repeats: int = 3) -> dict:
    """events/sec of the JSONL spill vs the MTF writer, same stream."""
    def best(write_once) -> float:
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            write_once()
            times.append(time.perf_counter() - start)
        return min(times)

    with tempfile.TemporaryDirectory() as tmp:
        def jsonl_once(counter=[0]):
            counter[0] += 1
            path = os.path.join(tmp, f"spill{counter[0]}.jsonl")
            spill = jsonl_spill(path)
            for offset in range(0, len(records), 4096):
                spill(records[offset:offset + 4096])

        def mtf_once(counter=[0]):
            counter[0] += 1
            path = os.path.join(tmp, f"spill{counter[0]}.mtf")
            with MtfWriter(path, chunk_records=4096) as writer:
                for offset in range(0, len(records), 4096):
                    writer.write_batch(records[offset:offset + 4096])

        jsonl_s = best(jsonl_once)
        mtf_s = best(mtf_once)
    count = len(records)
    return {
        "events": count,
        "jsonl_s": round(jsonl_s, 6),
        "mtf_s": round(mtf_s, 6),
        "jsonl_events_per_s": round(count / jsonl_s, 0),
        "mtf_events_per_s": round(count / mtf_s, 0),
        "speedup": round(jsonl_s / mtf_s, 2),
    }


def _time_detached_overhead(horizon: int, repeats: int = 3) -> dict:
    """Wall time of a run with an attached-but-idle service vs bare."""
    def bare() -> float:
        system = generate(SEED, "small")
        built = build_system(system)
        start = time.perf_counter()
        built.sim.run_until(horizon)
        return time.perf_counter() - start

    def attached() -> float:
        system = generate(SEED, "small")
        built = build_system(system)
        service = MeasurementService.attach(built, system)
        service.connect()  # connected, but no DAQ list started
        start = time.perf_counter()
        built.sim.run_until(horizon)
        elapsed = time.perf_counter() - start
        service.detach()
        return elapsed

    bare_s = min(bare() for _ in range(repeats))
    attached_s = min(attached() for _ in range(repeats))
    return {
        "horizon_ms": horizon // ms(1),
        "bare_s": round(bare_s, 6),
        "attached_s": round(attached_s, 6),
        "overhead": round(attached_s / bare_s, 4),
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run(quick: bool = False) -> list[dict]:
    registry_seeds = 4 if quick else 10
    daq_systems = 2 if quick else 4
    stream_size = 20_000 if quick else 200_000
    horizon = ms(100) if quick else ms(400)

    registry_digests = _registry_parity(registry_seeds)
    daq_digest = _daq_parity(daq_systems, period=us(500))
    records = _record_stream(stream_size)
    with tempfile.TemporaryDirectory() as tmp:
        _mtf_roundtrip(records, os.path.join(tmp, "roundtrip.mtf"))

    spill = _time_spill(records)
    overhead = _time_detached_overhead(horizon)

    trajectory = {
        "bench": "e19_meas",
        "quick": quick,
        "determinism": {
            "registry_seeds": registry_seeds,
            "registry_digest_0": registry_digests[0],
            "daq_systems": daq_systems,
            "daq_digest": daq_digest,
            "mtf_roundtrip_records": stream_size,
            "ok": True,
        },
        "spill": spill,
        "overhead": overhead,
        "gates": {
            "mtf_speedup_floor": MTF_SPEEDUP_FLOOR,
            "detached_overhead_ceil": DETACHED_OVERHEAD_CEIL,
            "enforced": not quick,
            "mtf_ok": spill["speedup"] >= MTF_SPEEDUP_FLOOR,
            "overhead_ok": overhead["overhead"] <= DETACHED_OVERHEAD_CEIL,
        },
    }
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")

    rows = [
        {"row": "determinism: registry digests",
         "value": f"{registry_seeds} seeds stable across rebuilds"},
        {"row": "determinism: daq jobs parity",
         "value": f"{daq_systems} systems identical jobs=1/jobs=4"},
        {"row": "determinism: mtf round-trip",
         "value": f"{stream_size} records write->seek->read identical"},
        {"row": "spill jsonl",
         "value": f"{spill['jsonl_events_per_s']:.0f} events/s"},
        {"row": "spill mtf",
         "value": (f"{spill['mtf_events_per_s']:.0f} events/s "
                   f"({spill['speedup']:.2f}x)")},
        {"row": "detached service overhead",
         "value": f"{(overhead['overhead'] - 1) * 100:+.2f}%"},
        {"row": "trajectory", "value": os.path.basename(TRAJECTORY_PATH)},
        {"row": "_quick", "value": str(quick)},
        {"row": "_mtf_speedup", "value": str(spill["speedup"])},
        {"row": "_overhead", "value": str(overhead["overhead"])},
    ]
    return rows


def check(rows: list[dict]) -> None:
    by_row = {row["row"]: row["value"] for row in rows}
    # Determinism already asserted inside run().  Timing gates apply to
    # full runs only.
    if by_row["_quick"] == "True":
        return
    mtf_speedup = float(by_row["_mtf_speedup"])
    overhead = float(by_row["_overhead"])
    assert mtf_speedup >= MTF_SPEEDUP_FLOOR, (
        f"MTF write throughput {mtf_speedup}x JSONL is below the "
        f"{MTF_SPEEDUP_FLOOR}x acceptance floor")
    assert overhead <= DETACHED_OVERHEAD_CEIL, (
        f"detached measurement service costs {overhead}x bare run time, "
        f"above the {DETACHED_OVERHEAD_CEIL}x ceiling")


TITLE = (f"E19: measurement & calibration plane "
         f"(seed {SEED}, MTF vs JSONL spill)")


def bench_e19_meas(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, [r for r in rows if not r["row"].startswith("_")])


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller populations, determinism asserts "
                             "only (timing measured and recorded, never "
                             "gated)")
    options = parser.parse_args()
    table_rows = run(quick=options.quick)
    check(table_rows)
    print_table(TITLE, [r for r in table_rows
                        if not r["row"].startswith("_")])
