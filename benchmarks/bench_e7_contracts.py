"""E7 — Rich-contract analysis: compatibility, dominance, confidence.

Claim (paper, Section 3): rich component interfaces enable "interface
compatibility analysis beyond pure static checking", dominance analysis
between contracts, and "system-level analysis … up to a degree of
confidence characterized by the collection of vertical assumptions".

Setup: chains of N rich components (each guaranteeing an output range
that must satisfy its successor's assumption), plus deliberately
incompatible variants.  We measure (a) detection: every seeded
incompatibility and failed dominance is found with a counterexample,
(b) the bottom-up vertical compliance verdict, and (c) how the joint
analysis confidence decays with the number of design units — the paper's
"degree of confidence" made concrete.

Expected shape: 100% seeded-defect detection; confidence decays
geometrically with component count, so per-assumption confidence
requirements tighten as systems integrate more suppliers.
"""

from _tables import print_table

from repro.contracts import (CPU, Contract, Predicate, ResourceOffer, Var,
                             VerticalAssumption, check_compliance,
                             check_contract_flow, confidence_report,
                             required_per_assumption)

#: one link variable per connection: stage i reads x_i, writes x_{i+1}.
UNIVERSE = {f"x{i}": Var(f"x{i}", range(0, 256, 8)) for i in range(64)}


def stage_contract(index: int, output_limit: int,
                   input_limit: int) -> Contract:
    """Stage ``index``: assumes its input link x_index stays within
    ``input_limit`` and guarantees its output link x_{index+1} within
    ``output_limit``."""
    in_var, out_var = f"x{index}", f"x{index + 1}"
    return Contract(
        f"stage{index}",
        Predicate(lambda e, v=in_var, lim=input_limit: e[v] <= lim,
                  [in_var], f"{in_var}<={input_limit}"),
        Predicate(lambda e, v=out_var, lim=output_limit: e[v] <= lim,
                  [out_var], f"{out_var}<={output_limit}"))


def chain_compatibility(n: int, break_at: int = -1) -> dict:
    """Check an n-stage chain; optionally seed an incompatibility."""
    contracts = []
    for index in range(n):
        output_limit = 128
        if index == break_at:
            output_limit = 240  # promises more than successor accepts
        contracts.append(stage_contract(index, output_limit, 160))
    found = 0
    checked = 0
    for source, target in zip(contracts, contracts[1:]):
        result = check_contract_flow(source, target, UNIVERSE)
        checked += result.checked_environments
        if not result.ok:
            found += 1
    return {"incompatibilities": found, "environments": checked}


def dominance_detection(n: int) -> dict:
    """Seed n refinement pairs, half of them broken; count detections."""
    spec = stage_contract(0, 128, 160)
    broken_found = 0
    intact_passed = 0
    for index in range(n):
        # All candidates implement stage 0, i.e. speak about the same
        # link variables as the specification.
        if index % 2 == 0:  # valid refinement: tighter guarantee
            impl = stage_contract(0, 96, 200)
            if impl.refines(spec, UNIVERSE):
                intact_passed += 1
        else:  # broken: weaker guarantee
            impl = stage_contract(0, 200, 200)
            if not impl.refines(spec, UNIVERSE):
                broken_found += 1
    return {"broken_found": broken_found, "intact_passed": intact_passed,
            "expected_each": n // 2 + (n % 2)}


def run() -> list[dict]:
    rows = []
    for n in (5, 10, 20, 40):
        clean = chain_compatibility(n)
        seeded = chain_compatibility(n, break_at=n // 2)
        assumptions = [VerticalAssumption(f"unit{i}", CPU, 0.5 / n, 0.99)
                       for i in range(n)]
        offers = [ResourceOffer("ECU", CPU, 1.0)]
        compliance = check_compliance(assumptions, offers,
                                      {f"unit{i}": "ECU"
                                       for i in range(n)})
        report = confidence_report(assumptions, target=0.9)
        rows.append({
            "components": n,
            "clean_chain_flags": clean["incompatibilities"],
            "seeded_defect_found": seeded["incompatibilities"],
            "compliant": compliance.ok,
            "joint_confidence": report["product"],
            "per_unit_needed_for_0.9": required_per_assumption(0.9, n),
        })
    return rows


def check(rows: list[dict]) -> None:
    for row in rows:
        assert row["clean_chain_flags"] == 0
        assert row["seeded_defect_found"] == 1
        assert row["compliant"]
    confidences = [r["joint_confidence"] for r in rows]
    assert all(a > b for a, b in zip(confidences, confidences[1:])), \
        "joint confidence must decay with component count"
    needed = [r["per_unit_needed_for_0.9"] for r in rows]
    assert all(a < b for a, b in zip(needed, needed[1:])), \
        "per-unit confidence requirements tighten with integration scale"
    dominance = dominance_detection(10)
    assert dominance["broken_found"] == 5
    assert dominance["intact_passed"] == 5


TITLE = ("E7: contract compatibility, dominance and confidence vs "
         "integration scale")


def bench_e7_contracts(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
