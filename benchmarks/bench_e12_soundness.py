"""E12 — Differential soundness of the analytic bounds.

Claim (paper, Section 3): the integration of analysable components
rests on the timing analyses being *sound* — for any admissible system,
observed response times and latencies never exceed the analytic bounds.
The differential harness makes that claim testable at scale: seeded
random systems (task sets, CAN layouts, FlexRay traffic, TDMA
partitions, one E2E-protected chain) are run through both the analysis
layer and the simulation stack, and every bound is compared against the
worst observation.

Setup: 25 generated "small" systems from seed 7 (the CI acceptance
batch).  Per analysis layer we report the number of bound/observation
pairs, how many bounds an analysis declined to produce (recurrence
outside its validity region — reported, never silently dropped), the
violation count, and the tightness distribution (bound / observed max;
1.0 means the simulation reached the bound exactly).

Expected shape: zero soundness violations and zero trace-invariant
violations across every layer; tightness medians stay low single-digit
for the contended layers (CPU, CAN, e2e chain) and larger for the
load-independent time-triggered bounds, whose worst case assumes the
maximal phase between producer and slot.
"""

from _tables import print_table

from repro.verify import verify_many

SEED = 7
SYSTEMS = 25
SIZE = "small"


def run() -> list[dict]:
    report = verify_many(SEED, SYSTEMS, SIZE)
    rows = []
    for layer, row in report.layer_summary().items():
        rows.append({
            "layer": layer,
            "checks": row["checks"],
            "measured": row["measured"],
            "declined": row["declined"],
            "violations": row["violations"],
            "tightness_min": (None if row["tightness_min"] is None
                              else round(row["tightness_min"], 2)),
            "tightness_median": (None if row["tightness_median"] is None
                                 else round(row["tightness_median"], 2)),
            "tightness_max": (None if row["tightness_max"] is None
                              else round(row["tightness_max"], 2)),
        })
    rows.append({
        "layer": "invariants",
        "checks": len(report.verdicts),
        "measured": len(report.verdicts),
        "declined": 0,
        "violations": report.invariant_violations,
        "tightness_min": None,
        "tightness_median": None,
        "tightness_max": None,
    })
    return rows


def check(rows: list[dict]) -> None:
    # The acceptance gate: no layer may show a single violation.
    assert sum(r["violations"] for r in rows) == 0
    for row in rows:
        if row["layer"] == "invariants":
            continue
        # Every layer produced bounds and actual measurements.
        assert row["checks"] > 0
        assert row["measured"] > 0
        # Sound bounds mean tightness >= 1 wherever measured.
        assert row["tightness_min"] is None or row["tightness_min"] >= 1.0


TITLE = (f"E12: differential soundness over {SYSTEMS} random systems "
         f"(seed {SEED}, size {SIZE})")


def bench_e12_soundness(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
