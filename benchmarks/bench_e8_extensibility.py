"""E8 — Planning time-triggered schedules for future change.

Claim (paper, Section 1): time-triggered architectures "require careful
planning and tool support to optimize resource availability against
future changes".

Setup: an in-service cluster's schedule has accreted over the years —
modelled by placing 12 periodic TT messages at *random* feasible offsets
(schedules fragment as functions are added release after release).  The
planned variant reserves 10% / 20% / 30% of every 2.5 ms minor cycle as
a contiguous clean window that initial messages must avoid.  Then 200
seeded future-change sets (1-3 new messages each) arrive; a change is
*accommodated* when every new message fits without moving any existing
slot — re-planning an in-service TT cluster is what integrators must
avoid.

Expected shape: acceptance probability rises with the reserved slack;
the price is initial capacity forgone (the efficiency/extensibility
trade-off of the paper's Section 1).
"""

import random

from _tables import print_table

from repro.analysis import TtEntry, TtPlacement, TtSchedule

SEED = 42
INITIAL = [
    # (period, duration) in ticks, ascending period (short-period slots
    # recur most often and must be placed first); ~22% utilization.
    (2_500, 50), (2_500, 50), (5_000, 100), (5_000, 100),
    (10_000, 200), (10_000, 200), (10_000, 150), (10_000, 150),
    (20_000, 400), (20_000, 400), (40_000, 500), (40_000, 500),
]
TRIALS = 200
SLACK_FRACTIONS = [0.0, 0.1, 0.2, 0.3]
MINOR_CYCLE = 2_500
STEP = 50


def place_random(schedule: TtSchedule, entry: TtEntry,
                 rng: random.Random, respect_reservation: bool) -> bool:
    """First fit scanning from a random starting phase (models organic
    schedule growth: each release lands wherever its era's tooling put
    it, not where a global compactor would)."""
    start = rng.randrange(0, entry.period, STEP)
    for k in range(entry.period // STEP):
        offset = (start + k * STEP) % entry.period
        candidate = TtPlacement(entry.name, entry.period, entry.duration,
                                offset)
        if schedule.fits(candidate, respect_reservation):
            schedule.placements.append(candidate)
            return True
    return False


def build_initial(slack_fraction: float,
                  rng: random.Random) -> TtSchedule:
    reserved = None
    if slack_fraction > 0:
        width = round(MINOR_CYCLE * slack_fraction)
        reserved = (MINOR_CYCLE - width, width, MINOR_CYCLE)
    schedule = TtSchedule(reserved)
    for index, (period, duration) in enumerate(INITIAL):
        entry = TtEntry(f"init{index}", period, duration)
        if not place_random(schedule, entry, rng,
                            respect_reservation=True):
            return None
    return schedule


def future_change(rng: random.Random) -> list[TtEntry]:
    count = rng.randint(1, 3)
    entries = []
    for index in range(count):
        period = rng.choice([2_500, 5_000, 10_000, 20_000])
        duration = rng.randint(200, 700)
        entries.append(TtEntry(f"new{index}", period,
                               min(duration, period)))
    return entries


def acceptance_rate(slack_fraction: float) -> dict:
    rng = random.Random(SEED)
    accepted = 0
    infeasible_initial = 0
    for __ in range(TRIALS):
        schedule = build_initial(slack_fraction, rng)
        if schedule is None:
            infeasible_initial += 1
            continue
        ok = True
        for entry in future_change(rng):
            # Future tasks may use the reserved window — that is what it
            # was reserved for.
            if schedule.try_place(entry, respect_reservation=False,
                                  step=STEP) is None:
                ok = False
                break
        if ok:
            accepted += 1
    return {"accepted": accepted / TRIALS,
            "infeasible_initial": infeasible_initial}


def run() -> list[dict]:
    rows = []
    for slack in SLACK_FRACTIONS:
        stats = acceptance_rate(slack)
        rows.append({
            "reserved_slack": f"{slack:.0%}",
            "initial_utilization": sum(d / p for p, d in INITIAL),
            "initial_infeasible": stats["infeasible_initial"],
            "future_change_accepted": stats["accepted"],
        })
    return rows


def check(rows: list[dict]) -> None:
    rates = [r["future_change_accepted"] for r in rows]
    assert rates[-1] > rates[0] + 0.15, \
        "reservation must buy substantial extensibility"
    assert rates[-1] >= 0.85, "30% slack should accommodate most changes"
    assert all(r["initial_infeasible"] == 0 for r in rows), \
        "the initial set must remain placeable at every slack level"


TITLE = ("E8: probability a future change fits without re-planning, "
         "vs reserved TT slack")


def bench_e8_extensibility(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
