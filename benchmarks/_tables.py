"""Shared table rendering for the experiment benchmarks.

Every benchmark builds a list of dict rows; :func:`print_table` renders
them in the aligned form EXPERIMENTS.md quotes.  Benchmarks are runnable
two ways: ``pytest benchmarks/ --benchmark-only`` (timed, assertions
checked) and ``python benchmarks/bench_*.py`` (prints the table).
"""

from __future__ import annotations

from typing import Optional


def print_table(title: str, rows: list[dict],
                columns: Optional[list[str]] = None) -> None:
    """Render rows as an aligned text table."""
    print(f"\n{title}")
    if not rows:
        print("  (no rows)")
        return
    if columns is None:
        columns = list(rows[0].keys())
    widths = {col: max(len(str(col)),
                       *(len(_fmt(row.get(col))) for row in rows))
              for col in columns}
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    print("  " + header)
    print("  " + "-" * len(header))
    for row in rows:
        line = "  ".join(_fmt(row.get(col)).ljust(widths[col])
                         for col in columns)
        print("  " + line)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if value is None:
        return "-"
    return str(value)
