"""E1 — Composability under integration.

Claim (paper, Section 1): "The timing of software tasks depends on the
presence or absence of other tasks" under priority scheduling, so
plug-and-play integration breaks timing; "timing isolation or resource
reservation policies" can prevent that variability — at a cost.

Setup: an ECU runs three supplier tasks.  A fourth supplier's task is
integrated in two variants: *well-behaved* (2 ms every 5 ms, as declared)
and *misbehaving* (demands ~100% CPU).  For each policy we report the
worst response-time shift the existing tasks suffer.

Expected shape:

* fixed priority — a shift for the well-behaved newcomer that *explodes*
  when the newcomer misbehaves (unbounded exposure);
* strict TDMA (window pre-reserved for the newcomer) — zero shift in
  both variants (isolation);
* deferrable-server reservation — a bounded shift that is *identical*
  for the two variants: exposure is capped by the declared budget, not
  by the newcomer's actual behaviour.
"""

from _tables import print_table

from repro.osek import (DeferrableServerScheduler, EcuKernel,
                        FixedPriorityScheduler, ServerSpec, TaskSpec,
                        TdmaScheduler, Window)
from repro.sim import Simulator
from repro.units import ms

HORIZON = ms(1000)

EXISTING = [
    ("brakes", ms(2), ms(10), 3, "P1"),
    ("steering", ms(3), ms(20), 2, "P2"),
    ("suspension", ms(5), ms(50), 1, "P3"),
]
#: newcomer (name, declared wcet, period, fp priority, partition).
NEWCOMER = ("newcomer", ms(2), ms(5), 4, "P4")
SCENARIOS = ("absent", "well-behaved", "misbehaving")


def _fp_scheduler():
    return FixedPriorityScheduler()


def _tdma_scheduler():
    # Four windows planned up front; P4 reserved for future integration.
    return TdmaScheduler(
        [Window(0, ms(1), "P4"), Window(ms(1), ms(1), "P1"),
         Window(ms(2), ms(1), "P2"), Window(ms(3), ms(2), "P3")],
        major_frame=ms(5))


def _server_scheduler():
    return DeferrableServerScheduler([
        ServerSpec("P1", budget=ms(2), period=ms(10), priority=30),
        ServerSpec("P2", budget=ms(3), period=ms(20), priority=20),
        ServerSpec("P3", budget=ms(5), period=ms(50), priority=10),
        ServerSpec("P4", budget=ms(2), period=ms(5), priority=40),
    ])


POLICIES = [
    ("fixed-priority", _fp_scheduler),
    ("tdma", _tdma_scheduler),
    ("reservation", _server_scheduler),
]


def _run(policy_factory, scenario: str) -> dict[str, int]:
    sim = Simulator()
    kernel = EcuKernel(sim, policy_factory())
    for name, wcet, period, priority, partition in EXISTING:
        kernel.add_task(TaskSpec(name, wcet=wcet, period=period,
                                 priority=priority, partition=partition,
                                 deadline=ms(1000)))
    if scenario != "absent":
        name, wcet, period, priority, partition = NEWCOMER
        demand = wcet if scenario == "well-behaved" else period
        kernel.add_task(TaskSpec(name, wcet=period, period=period,
                                 priority=priority, partition=partition,
                                 deadline=ms(1000), max_activations=4),
                        execution_time=lambda d=demand: d)
    sim.run_until(HORIZON)
    out = {}
    for name, *_ in EXISTING:
        worst = max(kernel.response_times(name), default=0)
        # A starved task never completes: count the age of its oldest
        # unfinished job so starvation reads as a huge response, not 0.
        pending = kernel.tasks[name].pending_jobs
        if pending:
            oldest = min(job.activation_time for job in pending)
            worst = max(worst, HORIZON - oldest)
        out[name] = worst
    return out


def run() -> list[dict]:
    rows = []
    for policy_name, factory in POLICIES:
        baseline = _run(factory, "absent")
        for scenario in SCENARIOS[1:]:
            loaded = _run(factory, scenario)
            worst_shift = max(loaded[name] - baseline[name]
                              for name, *_ in EXISTING)
            rows.append({
                "policy": policy_name,
                "newcomer": scenario,
                "worst_existing_wcrt_ms": max(loaded.values()) / ms(1),
                "worst_shift_ms": worst_shift / ms(1),
            })
    return rows


def _shift(rows, policy, scenario):
    return next(r["worst_shift_ms"] for r in rows
                if r["policy"] == policy and r["newcomer"] == scenario)


def check(rows: list[dict]) -> None:
    # FP: visible shift when well-behaved, much larger when misbehaving.
    assert _shift(rows, "fixed-priority", "well-behaved") > 0
    assert _shift(rows, "fixed-priority", "misbehaving") > \
        5 * _shift(rows, "fixed-priority", "well-behaved")
    # TDMA: zero shift in both variants.
    assert _shift(rows, "tdma", "well-behaved") == 0
    assert _shift(rows, "tdma", "misbehaving") == 0
    # Reservation: bounded, behaviour-independent shift.
    reservation_good = _shift(rows, "reservation", "well-behaved")
    reservation_bad = _shift(rows, "reservation", "misbehaving")
    assert reservation_bad == reservation_good
    assert reservation_bad < _shift(rows, "fixed-priority", "misbehaving")


TITLE = ("E1: worst response-time shift of existing tasks when a new "
         "supplier task is integrated")


def bench_e1_composability(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
