"""E9 — Legacy CAN software on a time-triggered platform.

Claim (paper, Section 4): on the integrated architecture, middleware can
expose APIs that "conform with the requirements of existing legacy
applications (e.g., a CAN overlay network) and support the seamless
integration of this existing legacy software".

Setup: a 4-node legacy application (each node publishes one frame every
10 ms and consumes the others') runs twice with byte-identical
application code: against a native 500 kbit/s CAN bus, and against the
CAN overlay riding a TDMA round (4 slots of 500 us).  We compare
delivered frames, latency statistics, and delivery order semantics.

Expected shape: identical frame delivery counts and preserved intra-batch
priority order; latency changes from arbitration-dependent (microseconds
to ~ms under load) to slot-bounded (about one TDMA round) — a constant,
predictable overhead.
"""

from _tables import print_table

from repro.legacy import CanOverlay
from repro.network import CanBus, CanFrameSpec
from repro.sim import Simulator
from repro.units import ms, us

NODES = ["N0", "N1", "N2", "N3"]
PERIOD = ms(10)
HORIZON = ms(500)
SLOT = us(500)


def legacy_application(sim, controllers):
    """The unmodified legacy code: periodic publish + receive counting."""
    received = {node: 0 for node in controllers}
    specs = {node: CanFrameSpec(f"frame_{node}", 0x100 + i, dlc=8,
                                period=PERIOD)
             for i, node in enumerate(controllers)}
    for node, controller in controllers.items():
        controller.on_receive(
            lambda spec, msg, n=node:
            received.__setitem__(n, received[n] + 1))

    def periodic(node):
        def fire():
            controllers[node].send(specs[node])
            sim.schedule(PERIOD, fire)
        fire()

    for node in controllers:
        periodic(node)
    return received


def run_native() -> dict:
    sim = Simulator()
    bus = CanBus(sim, 500_000)
    controllers = {node: bus.attach(node) for node in NODES}
    received = legacy_application(sim, controllers)
    sim.run_until(HORIZON)
    latencies = [lat for node in NODES
                 for lat in bus.latencies(f"frame_{node}")]
    return {"platform": "native CAN",
            "frames_delivered": bus.frames_delivered,
            "rx_per_node": received["N0"],
            "avg_latency_us": sum(latencies) / len(latencies) / us(1),
            "max_latency_us": max(latencies) / us(1)}


def run_overlay() -> dict:
    sim = Simulator()
    overlay = CanOverlay(sim, NODES, slot_length=SLOT,
                         slot_capacity_bytes=32)
    controllers = {node: overlay.attach(node) for node in NODES}
    received = legacy_application(sim, controllers)
    overlay.start()
    sim.run_until(HORIZON)
    latencies = overlay.latencies()
    return {"platform": "TT overlay",
            "frames_delivered": overlay.frames_delivered,
            "rx_per_node": received["N0"],
            "avg_latency_us": sum(latencies) / len(latencies) / us(1),
            "max_latency_us": max(latencies) / us(1)}


def run() -> list[dict]:
    native = run_native()
    overlay = run_overlay()
    rows = [native, overlay]
    rows.append({
        "platform": "overhead (overlay/native)",
        "frames_delivered": None,
        "rx_per_node": None,
        "avg_latency_us": overlay["avg_latency_us"]
        / native["avg_latency_us"],
        "max_latency_us": overlay["max_latency_us"]
        / native["max_latency_us"],
    })
    return rows


def check(rows: list[dict]) -> None:
    native, overlay, __ = rows
    # Seamless integration: every frame still delivered, to everyone
    # (within one horizon-boundary round of slack — the overlay's last
    # slot can land exactly on the horizon while CAN's last frame is
    # still on the wire).
    assert abs(overlay["frames_delivered"]
               - native["frames_delivered"]) <= len(NODES)
    assert abs(overlay["rx_per_node"] - native["rx_per_node"]) <= 1
    # The overhead is real but bounded by roughly one TDMA round.
    assert overlay["max_latency_us"] <= (len(NODES) + 1) * SLOT / us(1)
    assert overlay["avg_latency_us"] > native["avg_latency_us"]


TITLE = "E9: legacy CAN application, native bus vs TT overlay"


def bench_e9_legacy_overlay(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
