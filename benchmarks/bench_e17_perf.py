"""E17 — Memoized analysis + kernel fast path: parity-gated speedups.

Claim (performance, conditional on E12/E15 semantics): the two
fast paths added for large fuzz campaigns — the content-addressed
analysis memo cache (:mod:`repro.perf`) and the bucket-queue
simulation kernel (:class:`repro.sim.kernel.BucketEventQueue`) — are
*pure* speedups: byte-identical verdicts, bounds, declines and
telemetry, measurably faster.

Setup mirrors the canonical fuzz campaign: 200 mutants drawn from the
seed-7 base population (the same ``derive_seed`` stream E15 replays)
are analysed with the memo off, cold, and warm; the kernel dispatches
identical same-timestamp burst workloads through the reference heap
queue and the bucket queue.  Parity is asserted on every run — the
regression corpus verdicts, property-generated bounds, and the full
mutant replay must fingerprint identically in every cache state —
while the timing gates (>= 3x warm-cache analysis speedup, >= 1.5x
kernel event throughput) are enforced only in full mode.  ``--quick``
shrinks the populations and skips the timing gates (CI machines make
timing assertions flaky) but still fails on any parity mismatch.

Every run persists a machine-readable trajectory to
``BENCH_e17_perf.json`` at the repo root: raw seconds, derived
systems/sec and events/sec, speedups, cache stats, and gate verdicts.
"""

import argparse
import hashlib
import json
import os
import random
import time

from _tables import print_table

from repro import perf
from repro.exec.shard import derive_seed
from repro.perf.memo import CacheConfig
from repro.sim.kernel import (BucketEventQueue, HeapEventQueue,
                              Simulator)
from repro.verify.generator import generate, generate_many
from repro.verify.mutate import mutate
from repro.verify.oracle import analyze_bounds, verify_system
from repro.verify.serialize import system_from_dict

SEED = 7
ORACLE_SPEEDUP_FLOOR = 3.0
KERNEL_SPEEDUP_FLOOR = 1.5
REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
CORPUS_DIR = os.path.join(REPO_ROOT, "tests", "corpus")
TRAJECTORY_PATH = os.path.join(REPO_ROOT, "BENCH_e17_perf.json")


def _mutant_population(count: int) -> list:
    """The canonical fuzz-replay population: ``count`` mutants over the
    seed-7 base batch, seeded exactly as the campaign's global
    execution indices derive them."""
    bases = list(generate_many(SEED, 8, "small"))
    mutants = []
    for index in range(count):
        mutant, _ = mutate(bases[index % len(bases)],
                           random.Random(derive_seed(SEED, index)))
        mutants.append(mutant)
    return mutants


def _bounds_fingerprint(system) -> str:
    bounds, declined = analyze_bounds(system)
    body = json.dumps({"bounds": [list(b) for b in bounds],
                       "declined": declined},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode()).hexdigest()


def _verdict_digest(system, horizon=None) -> str:
    verdict = verify_system(system, horizon)
    body = json.dumps(verdict.to_dict(), sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(body.encode()).hexdigest()


# ----------------------------------------------------------------------
# Parity (asserted on every run, quick or full)
# ----------------------------------------------------------------------
def _corpus_parity(limit: int) -> int:
    """Corpus verdicts byte-identical with the memo off, cold and warm."""
    names = sorted(name for name in os.listdir(CORPUS_DIR)
                   if name.endswith(".json")
                   and name != "known_issues.json")[:limit]
    for name in names:
        with open(os.path.join(CORPUS_DIR, name),
                  encoding="utf-8") as handle:
            payload = json.load(handle)
        horizon = payload.get("horizon")
        perf.configure(None)
        baseline = _verdict_digest(
            system_from_dict(payload["system"]), horizon)
        perf.configure(CacheConfig(True, 8192))
        cold = _verdict_digest(
            system_from_dict(payload["system"]), horizon)
        warm = _verdict_digest(
            system_from_dict(payload["system"]), horizon)
        perf.configure(None)
        assert baseline == cold == warm, f"corpus parity broke: {name}"
    return len(names)


def _generated_parity(seeds: int) -> int:
    """Generated-system bounds identical in every cache state."""
    for seed in range(seeds):
        perf.configure(None)
        baseline = _bounds_fingerprint(generate(seed, "small"))
        perf.configure(CacheConfig(True, 8192))
        cold = _bounds_fingerprint(generate(seed, "small"))
        warm = _bounds_fingerprint(generate(seed, "small"))
        perf.configure(None)
        assert baseline == cold == warm, f"generated parity broke: {seed}"
    return seeds


def _replay_parity(mutants: list) -> None:
    """The timed population itself: off == cold == warm, per mutant."""
    perf.configure(None)
    baseline = [_bounds_fingerprint(s) for s in mutants]
    perf.configure(CacheConfig(True, 8192))
    cold = [_bounds_fingerprint(s) for s in mutants]
    warm = [_bounds_fingerprint(s) for s in mutants]
    perf.configure(None)
    assert cold == baseline, "mutant replay parity broke (cold)"
    assert warm == baseline, "mutant replay parity broke (warm)"


# ----------------------------------------------------------------------
# Timing
# ----------------------------------------------------------------------
def _time_oracle(mutants: list, repeats: int = 3) -> dict:
    def sweep():
        for system in mutants:
            analyze_bounds(system)

    def best():
        times = []
        for _ in range(repeats):
            start = time.perf_counter()
            sweep()
            times.append(time.perf_counter() - start)
        return min(times)

    perf.configure(None)
    off = best()
    perf.configure(CacheConfig(True, 8192))
    start = time.perf_counter()
    sweep()
    cold = time.perf_counter() - start
    warm = best()
    stats = perf.stats()
    perf.configure(None)
    count = len(mutants)
    return {
        "systems": count,
        "off_s": round(off, 6), "cold_s": round(cold, 6),
        "warm_s": round(warm, 6),
        "off_sys_per_s": round(count / off, 1),
        "cold_sys_per_s": round(count / cold, 1),
        "warm_sys_per_s": round(count / warm, 1),
        "warm_speedup": round(off / warm, 2),
        "cold_overhead": round(cold / off, 3),
        "cache": stats,
    }


def _time_kernel(times: int, burst: int) -> dict:
    def throughput(queue_cls) -> float:
        sim = Simulator(queue=queue_cls())
        counter = [0]

        def tick():
            counter[0] += 1

        for slot in range(times):
            for _ in range(burst):
                sim.schedule_at(slot * 100, tick)
        start = time.perf_counter()
        sim.run_until(times * 100)
        elapsed = time.perf_counter() - start
        assert sim.executed == times * burst
        return sim.executed / elapsed

    heap = min(throughput(HeapEventQueue) for _ in range(3))
    bucket = min(throughput(BucketEventQueue) for _ in range(3))
    return {
        "events": times * burst,
        "heap_events_per_s": round(heap, 0),
        "bucket_events_per_s": round(bucket, 0),
        "speedup": round(bucket / heap, 2),
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
def run(quick: bool = False) -> list[dict]:
    mutant_count = 40 if quick else 200
    corpus_limit = 12 if quick else 10_000
    generated_seeds = 10 if quick else 30
    kernel_shape = (60, 60) if quick else (300, 300)

    mutants = _mutant_population(mutant_count)
    corpus_checked = _corpus_parity(corpus_limit)
    generated_checked = _generated_parity(generated_seeds)
    _replay_parity(mutants)

    oracle = _time_oracle(mutants)
    kernel = _time_kernel(*kernel_shape)

    trajectory = {
        "bench": "e17_perf",
        "quick": quick,
        "parity": {"corpus_systems": corpus_checked,
                   "generated_seeds": generated_checked,
                   "replay_mutants": mutant_count,
                   "ok": True},
        "oracle": oracle,
        "kernel": kernel,
        "gates": {
            "oracle_warm_speedup_floor": ORACLE_SPEEDUP_FLOOR,
            "kernel_speedup_floor": KERNEL_SPEEDUP_FLOOR,
            "enforced": not quick,
            "oracle_ok": oracle["warm_speedup"] >= ORACLE_SPEEDUP_FLOOR,
            "kernel_ok": kernel["speedup"] >= KERNEL_SPEEDUP_FLOOR,
        },
    }
    with open(TRAJECTORY_PATH, "w", encoding="utf-8") as handle:
        json.dump(trajectory, handle, indent=2, sort_keys=True)
        handle.write("\n")

    rows = [
        {"row": "parity: corpus verdicts",
         "value": f"{corpus_checked} systems identical off/cold/warm"},
        {"row": "parity: generated bounds",
         "value": f"{generated_checked} seeds identical off/cold/warm"},
        {"row": "parity: mutant replay",
         "value": f"{mutant_count} mutants identical off/cold/warm"},
        {"row": "oracle off",
         "value": f"{oracle['off_sys_per_s']:.0f} systems/s"},
        {"row": "oracle cold cache",
         "value": (f"{oracle['cold_sys_per_s']:.0f} systems/s "
                   f"({oracle['cold_overhead']:.2f}x off cost)")},
        {"row": "oracle warm cache",
         "value": (f"{oracle['warm_sys_per_s']:.0f} systems/s "
                   f"({oracle['warm_speedup']:.2f}x)")},
        {"row": "kernel heap queue",
         "value": f"{kernel['heap_events_per_s']:.0f} events/s"},
        {"row": "kernel bucket queue",
         "value": (f"{kernel['bucket_events_per_s']:.0f} events/s "
                   f"({kernel['speedup']:.2f}x)")},
        {"row": "trajectory", "value": os.path.basename(TRAJECTORY_PATH)},
        {"row": "_quick", "value": str(quick)},
        {"row": "_oracle_speedup", "value": str(oracle["warm_speedup"])},
        {"row": "_kernel_speedup", "value": str(kernel["speedup"])},
    ]
    return rows


def check(rows: list[dict]) -> None:
    by_row = {row["row"]: row["value"] for row in rows}
    # Parity already asserted inside run() — reaching here means every
    # fingerprint matched.  Timing gates apply to full runs only.
    if by_row["_quick"] == "True":
        return
    oracle_speedup = float(by_row["_oracle_speedup"])
    kernel_speedup = float(by_row["_kernel_speedup"])
    assert oracle_speedup >= ORACLE_SPEEDUP_FLOOR, (
        f"warm-cache analysis speedup {oracle_speedup}x is below the "
        f"{ORACLE_SPEEDUP_FLOOR}x acceptance floor")
    assert kernel_speedup >= KERNEL_SPEEDUP_FLOOR, (
        f"bucket-queue speedup {kernel_speedup}x is below the "
        f"{KERNEL_SPEEDUP_FLOOR}x acceptance floor")


TITLE = (f"E17: memoized analysis + kernel fast path "
         f"(seed {SEED}, 200-mutant replay)")


def bench_e17_perf(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, [r for r in rows if not r["row"].startswith("_")])


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller populations, parity asserts only "
                             "(timing measured and recorded, never gated)")
    options = parser.parse_args()
    table_rows = run(quick=options.quick)
    check(table_rows)
    print_table(TITLE, [r for r in table_rows
                        if not r["row"].startswith("_")])
