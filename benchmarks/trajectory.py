"""Aggregate every ``BENCH_*.json`` trajectory into one machine-readable
file.

Each gated benchmark (E17, E19, ...) persists its raw numbers to a
``BENCH_<name>.json`` at the repo root.  Those files are written by
different benchmarks at different times with different shapes; anything
tracking the performance trajectory across PRs (plots, regression
dashboards, the EXPERIMENTS tables) has to re-learn every shape.  This
aggregator normalises them into ``BENCH_trajectory.json``:

* one entry per source file, keyed by the benchmark's own ``bench``
  name, carrying the source file's SHA-256 (the sync anchor — the same
  pattern ``repro model testgen`` uses for generated tests);
* every **numeric leaf** flattened to a dotted path
  (``oracle.warm_speedup``, ``spill.mtf_events_per_s``), so a plotter
  reads one flat namespace without knowing any benchmark's layout;
* the ``gates`` block copied verbatim — floors and verdicts stay
  machine-checkable;
* byte-deterministic output: no timestamps, sorted keys, so the
  committed file only changes when a benchmark's numbers change.

Run ``PYTHONPATH=src python benchmarks/trajectory.py`` to rebuild the
committed file after refreshing any ``BENCH_*.json``; ``--check``
rebuilds in memory and exits 1 on drift (the CI gate).
"""

import argparse
import hashlib
import json
import os
import sys

TRAJECTORY_FORMAT = "repro.bench.trajectory"
TRAJECTORY_VERSION = 1
OUTPUT_NAME = "BENCH_trajectory.json"
REPO_ROOT = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))


def discover(root: str = REPO_ROOT) -> list[str]:
    """Every ``BENCH_*.json`` at the repo root except the aggregate."""
    return sorted(
        os.path.join(root, name) for name in os.listdir(root)
        if name.startswith("BENCH_") and name.endswith(".json")
        and name != OUTPUT_NAME)


def flatten_numeric(node, prefix: str = "") -> dict:
    """Every numeric leaf of a nested dict as ``dotted.path: value``.

    Booleans are verdicts, not measurements, and strings are digests or
    labels — both are excluded so the metric namespace stays plottable.
    """
    out: dict = {}
    if isinstance(node, dict):
        for key in sorted(node):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(node[key], path))
    elif isinstance(node, (int, float)) and not isinstance(node, bool):
        out[prefix] = node
    return out


def _entry(path: str) -> dict:
    with open(path, "rb") as handle:
        blob = handle.read()
    try:
        doc = json.loads(blob)
    except ValueError as exc:
        raise ValueError(f"{path}: not valid JSON ({exc})")
    if not isinstance(doc, dict):
        raise ValueError(f"{path}: expected a JSON object, "
                         f"got {type(doc).__name__}")
    bench = doc.get("bench")
    if not isinstance(bench, str) or not bench:
        raise ValueError(f"{path}: missing its 'bench' name")
    metrics = flatten_numeric(
        {k: v for k, v in doc.items() if k not in ("bench", "gates")})
    return {
        "bench": bench,
        "file": os.path.basename(path),
        "sha256": hashlib.sha256(blob).hexdigest(),
        "quick": bool(doc.get("quick", False)),
        "gates": doc.get("gates", {}),
        "metrics": metrics,
    }


def build_trajectory(root: str = REPO_ROOT) -> dict:
    entries = [_entry(path) for path in discover(root)]
    names = [entry["bench"] for entry in entries]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate bench names in {root}: {names}")
    return {
        "format": TRAJECTORY_FORMAT,
        "format_version": TRAJECTORY_VERSION,
        "benchmarks": len(entries),
        "entries": sorted(entries, key=lambda e: e["bench"]),
    }


def trajectory_json(trajectory: dict) -> str:
    return json.dumps(trajectory, indent=2, sort_keys=True) + "\n"


def validate_trajectory(trajectory) -> list[str]:
    """Schema problems as readable ``where: what`` rows (empty = ok)."""
    problems: list[str] = []
    if not isinstance(trajectory, dict):
        return [f"document: expected an object, "
                f"got {type(trajectory).__name__}"]
    if trajectory.get("format") != TRAJECTORY_FORMAT:
        problems.append(f"format: expected {TRAJECTORY_FORMAT!r}, "
                        f"got {trajectory.get('format')!r}")
    if trajectory.get("format_version") != TRAJECTORY_VERSION:
        problems.append(f"format_version: expected "
                        f"{TRAJECTORY_VERSION}, "
                        f"got {trajectory.get('format_version')!r}")
    entries = trajectory.get("entries")
    if not isinstance(entries, list):
        problems.append("entries: expected a list, "
                        f"got {type(entries).__name__}")
        return problems
    if trajectory.get("benchmarks") != len(entries):
        problems.append(f"benchmarks: says "
                        f"{trajectory.get('benchmarks')!r}, "
                        f"entries has {len(entries)}")
    for index, entry in enumerate(entries):
        where = f"entries[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: expected an object")
            continue
        where = f"entries[{index}] ({entry.get('bench', '?')})"
        for key, kind in (("bench", str), ("file", str),
                          ("sha256", str), ("quick", bool),
                          ("gates", dict), ("metrics", dict)):
            if not isinstance(entry.get(key), kind):
                problems.append(f"{where}: '{key}' must be a "
                                f"{kind.__name__}")
        sha = entry.get("sha256")
        if isinstance(sha, str) and len(sha) != 64:
            problems.append(f"{where}: sha256 must be 64 hex chars")
        metrics = entry.get("metrics")
        if isinstance(metrics, dict):
            for name, value in metrics.items():
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    problems.append(f"{where}: metric {name!r} is not "
                                    f"numeric")
    names = [e.get("bench") for e in entries if isinstance(e, dict)]
    if names != sorted(names):
        problems.append("entries: not sorted by bench name")
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/trajectory.py",
        description="aggregate BENCH_*.json into BENCH_trajectory.json")
    parser.add_argument("--root", default=REPO_ROOT,
                        help="directory holding the BENCH_*.json files")
    parser.add_argument("--check", action="store_true",
                        help="rebuild in memory and fail on drift "
                             "against the committed aggregate")
    options = parser.parse_args(argv)
    output = os.path.join(options.root, OUTPUT_NAME)
    try:
        text = trajectory_json(build_trajectory(options.root))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if options.check:
        try:
            with open(output, encoding="utf-8") as handle:
                committed = handle.read()
        except OSError:
            print(f"{output}: missing — run "
                  f"benchmarks/trajectory.py to create it",
                  file=sys.stderr)
            return 1
        if committed != text:
            print(f"{output}: DRIFT — a BENCH_*.json changed without "
                  f"re-aggregation; rerun benchmarks/trajectory.py")
            return 1
        print(f"{output}: IN SYNC "
              f"({json.loads(text)['benchmarks']} benchmark(s))")
        return 0
    with open(output, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {output} "
          f"({json.loads(text)['benchmarks']} benchmark(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
