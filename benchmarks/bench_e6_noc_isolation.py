"""E6 — Temporal interference on the on-chip interconnect.

Claim (paper, Section 4): the NoC of an integrated MPSoC must provide
"non-interfering interactions: there may be no temporal interference
among the messages exchanged by the NoC" and error containment for
faulty cores.

Setup: a 3x3 mesh hosts a victim flow (core 0 -> core 8, one 32-byte
message every 50 us).  An aggressor (core 4 -> core 5) sweeps its
injection rate from idle to saturation.  We measure the victim's worst
latency on a priority-arbitrated shared bus and on the TDMA NoC, plus the
TDMA NoC's analytic bound.

Expected shape: shared-bus victim latency grows with aggressor rate
(temporal interference); TDMA NoC latency is exactly constant and within
the analytic bound.
"""

from _tables import print_table

from repro.noc import MeshTopology, Mpsoc, SharedBusInterconnect, TdmaNoc
from repro.sim import Simulator
from repro.units import ms, us

VICTIM_PERIOD = us(50)
HORIZON = ms(5)
AGGRESSOR_PERIODS = [None, us(500), us(200), us(100), us(60)]


def victim_latency(kind: str, aggressor_period) -> float:
    sim = Simulator()
    mesh = MeshTopology(3, 3)
    if kind == "tdma":
        interconnect = TdmaNoc(sim, mesh, slot_length=us(1),
                               hop_latency=100)
    else:
        interconnect = SharedBusInterconnect(
            sim, mesh, bandwidth_bps=100_000_000)
    mpsoc = Mpsoc(sim, interconnect)
    mpsoc.start()
    mpsoc.cores[0].send_periodic(mpsoc.cores[8], period=VICTIM_PERIOD,
                                 size_bytes=32)
    if aggressor_period is not None:
        mpsoc.cores[4].send_periodic(mpsoc.cores[5],
                                     period=aggressor_period,
                                     size_bytes=1500, priority=9)
    sim.run_until(HORIZON)
    category = "noc.rx_tt" if kind == "tdma" else "noc.rx_bus"
    lats = [r.data["latency"]
            for r in interconnect.trace.records(category, "core0->core8")]
    expected = HORIZON // VICTIM_PERIOD
    # A starved flow (deliveries missing at the horizon) is reported at
    # the horizon value: "never arrived" dominates any finite latency.
    effective = max(lats) if len(lats) >= expected else HORIZON
    return effective / us(1), len(lats)


def run() -> list[dict]:
    sim = Simulator()
    tt = TdmaNoc(sim, MeshTopology(3, 3), slot_length=us(1),
                 hop_latency=100)
    bound_us = tt.worst_case_latency(0, 8) / us(1)
    rows = []
    for period in AGGRESSOR_PERIODS:
        label = "idle" if period is None else f"1/{period // us(1)}us"
        bus_max, bus_count = victim_latency("bus", period)
        tdma_max, tdma_count = victim_latency("tdma", period)
        rows.append({
            "aggressor_rate": label,
            "shared_bus_max_us": bus_max,
            "bus_delivered": bus_count,
            "tdma_noc_max_us": tdma_max,
            "tdma_delivered": tdma_count,
            "tdma_bound_us": bound_us,
        })
    return rows


def check(rows: list[dict]) -> None:
    bus = [r["shared_bus_max_us"] for r in rows]
    tdma = [r["tdma_noc_max_us"] for r in rows]
    assert bus[-1] > 5 * bus[0], "shared bus should interfere visibly"
    assert all(a <= b for a, b in zip(bus, bus[1:])), \
        "shared-bus latency should grow with aggressor rate"
    assert len(set(tdma)) == 1, "TDMA NoC latency must be load-invariant"
    assert len({r["tdma_delivered"] for r in rows}) == 1
    assert all(r["tdma_noc_max_us"] <= r["tdma_bound_us"] for r in rows)


TITLE = ("E6: victim message latency vs aggressor injection rate "
         "(3x3 MPSoC)")


def bench_e6_noc_isolation(benchmark):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    check(rows)
    print_table(TITLE, rows)


if __name__ == "__main__":
    rows = run()
    check(rows)
    print_table(TITLE, rows)
