"""Setup shim.

The execution environment has no network and no ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build an editable wheel.
``python setup.py develop`` (or ``pip install -e . --no-build-isolation``
once ``wheel`` is available) installs the package from ``pyproject.toml``
metadata.
"""

from setuptools import setup

setup()
